"""Tracing-off must stay a no-op on the exploration hot path.

The engines instrument at layer granularity behind ``tracer.enabled``
checks, so a run with the disabled default tracer should do no event
work at all.  This smoke test asserts the structural half (nothing is
recorded, no memo-counting shim is installed) and a generous timing
half: the tracing-off run must not be slower than the traced run by
more than the stated margin (min-of-N timings; the no-op path does
strictly less work, so this only trips when someone puts real work on
the disabled path).
"""

from __future__ import annotations

import time

from repro.obs import MemorySink, current_tracer, tracing

REPEATS = 5
MARGIN = 1.10  # tracing-off may not exceed traced time by >10%


def build():
    from repro.analysis.model_check import build_closed_system
    from repro.protocols import alternating_bit_protocol

    composition, invariant, _ = build_closed_system(
        alternating_bit_protocol(), messages=2, capacity=2
    )
    return composition, invariant


def best_time(run):
    timings = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        run()
        timings.append(time.perf_counter() - started)
    return min(timings)


class TestNoOpOverhead:
    def test_disabled_run_records_nothing(self):
        from repro.ioa import explore

        composition, invariant = build()
        tracer = current_tracer()
        assert not tracer.enabled
        before = dict(tracer.counters)
        explore(composition, invariant=invariant)
        assert tracer.counters == before

    def test_disabled_run_installs_no_memo_shim(self):
        from repro.analysis.model_check import build_closed_system
        from repro.ioa.engine.core import _CompositionSearch
        from repro.protocols import alternating_bit_protocol

        composition, invariant, _ = build_closed_system(
            alternating_bit_protocol(), messages=1, capacity=1
        )
        search = _CompositionSearch(composition)
        search.run(None, invariant, 50_000, 10_000)
        assert not hasattr(search, "_step_queries")

    def test_tracing_off_not_slower_than_traced(self):
        from repro.ioa import explore

        composition, invariant = build()

        def run_off():
            explore(composition, invariant=invariant)

        def run_on():
            with tracing(MemorySink()):
                explore(composition, invariant=invariant)

        # Warm both paths once before timing.
        run_off()
        run_on()
        off = best_time(run_off)
        on = best_time(run_on)
        assert off <= on * MARGIN, (
            f"tracing-off explore took {off:.6f}s vs traced {on:.6f}s; "
            "the disabled path is doing real work"
        )
