"""Every CLI subcommand speaks the same --json envelope; --trace
produces a replayable JSONL stream closed by a manifest."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import MANIFEST, RunManifest, read_events

from .test_report import assert_envelope


def run_json(capsys, argv):
    code = main(argv + ["--json"])
    return code, json.loads(capsys.readouterr().out)


class TestEnvelope:
    @pytest.mark.parametrize(
        "argv, command",
        [
            (["check", "abp"], "check"),
            (
                ["simulate", "abp", "--messages", "2", "--loss", "0.1"],
                "simulate",
            ),
            (
                ["verify", "abp", "--messages", "1", "--capacity", "1"],
                "verify",
            ),
            (["refute-crash", "abp"], "refute-crash"),
            (["refute-headers", "mod-stenning:2"], "refute-headers"),
            (["lint", "abp"], "lint"),
        ],
    )
    def test_six_subcommands_share_the_envelope(
        self, capsys, argv, command
    ):
        code, payload = run_json(capsys, argv)
        assert_envelope(payload, command)
        assert code == 0
        assert payload["status"] == "ok"

    def test_violation_status_and_exit(self, capsys):
        code, payload = run_json(
            capsys, ["verify", "abp", "--reorder-depth", "2"]
        )
        assert code == 1
        assert payload["status"] == "violation"
        assert payload["details"]["counterexample"]

    def test_engine_error_status_and_exit(self, capsys):
        code, payload = run_json(capsys, ["refute-crash", "baratz-segall"])
        assert code == 2
        assert_envelope(payload, "refute-crash")
        assert payload["status"] == "error"
        assert "error" in payload["details"]

    def test_auxiliary_commands_speak_it_too(self, capsys):
        for argv, command in [
            (["list"], "list"),
            (["growth", "stenning", "--checkpoints", "1", "2"], "growth"),
            (["lint", "--list-codes"], "lint"),
        ]:
            code, payload = run_json(capsys, argv)
            assert_envelope(payload, command)
            assert code == 0


class TestTraceFlag:
    def test_simulate_trace_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "sim.jsonl")
        code, payload = run_json(
            capsys,
            [
                "simulate",
                "abp",
                "--messages",
                "3",
                "--seed",
                "4",
                "--trace",
                path,
            ],
        )
        assert code == 0
        assert payload["details"]["artifacts"]["trace"] == path
        events = read_events(path)
        assert events  # replayable stream
        assert events[-1].kind == MANIFEST
        manifest = RunManifest.find(events)
        assert manifest.command == "simulate"
        assert manifest.protocol == "alternating-bit"
        assert manifest.seed == 4
        assert manifest.status == "ok"
        # envelope counters include the tracer's totals
        for name, total in manifest.counters.items():
            assert payload["counters"][name] == total

    def test_verify_trace_has_explore_spans(self, capsys, tmp_path):
        path = str(tmp_path / "verify.jsonl")
        code, _ = run_json(
            capsys,
            [
                "verify",
                "abp",
                "--messages",
                "1",
                "--capacity",
                "1",
                "--trace",
                path,
            ],
        )
        assert code == 0
        events = read_events(path)
        assert any(
            e.kind == "span_start" and e.name == "explore.layer"
            for e in events
        )

    def test_refute_crash_trace(self, capsys, tmp_path):
        path = str(tmp_path / "crash.jsonl")
        code, payload = run_json(
            capsys, ["refute-crash", "abp", "--trace", path]
        )
        assert code == 0
        events = read_events(path)
        assert any(
            e.kind == "span_start" and e.name == "refute.crash"
            for e in events
        )
        assert payload["counters"]["refute.crash_injections"] >= 1

    def test_trace_subcommand_summarizes(self, capsys, tmp_path):
        path = str(tmp_path / "sim.jsonl")
        assert (
            main(["simulate", "abp", "--messages", "2", "--trace", path])
            == 0
        )
        capsys.readouterr()
        code, payload = run_json(capsys, ["trace", path])
        assert code == 0
        assert_envelope(payload, "trace")
        assert payload["details"]["manifest"]["command"] == "simulate"
        assert payload["details"]["events"] == len(read_events(path))

    def test_trace_subcommand_text_output(self, capsys, tmp_path):
        path = str(tmp_path / "sim.jsonl")
        main(["simulate", "abp", "--messages", "2", "--trace", path])
        capsys.readouterr()
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "manifest:" in out
        assert "sim.steps" in out

    def test_trace_subcommand_missing_file(self, capsys):
        code = main(["trace", "/nonexistent/trace.jsonl"])
        out = capsys.readouterr().out
        assert code == 2
        assert "cannot read trace" in out
