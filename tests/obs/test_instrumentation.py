"""The engines' instrumentation agrees with their results."""

from __future__ import annotations

from repro.obs import MemorySink, tracing


def abp_closed_system(messages=2, capacity=2):
    from repro.analysis.model_check import build_closed_system
    from repro.protocols import alternating_bit_protocol

    composition, invariant, _ = build_closed_system(
        alternating_bit_protocol(), messages=messages, capacity=capacity
    )
    return composition, invariant


class TestExploreInstrumentation:
    def test_state_counter_matches_result(self):
        from repro.ioa import explore

        composition, invariant = abp_closed_system()
        with tracing(MemorySink()) as tracer:
            result = explore(composition, invariant=invariant)
        totals = tracer.snapshot_counters()
        assert totals["explore.states"] == len(result.states)
        assert totals["explore.transitions"] >= len(result.states) - 1

    def test_layer_spans_and_frontier_gauge(self):
        from repro.ioa import explore

        composition, invariant = abp_closed_system()
        sink = MemorySink()
        with tracing(sink) as tracer:
            explore(composition, invariant=invariant)
        spans = [
            e for e in sink.events
            if e.kind == "span_start" and e.name == "explore.layer"
        ]
        assert spans
        assert spans[0].fields["depth"] == 0
        assert spans[0].fields["width"] == 1
        assert "explore.frontier" in tracer.gauges

    def test_memo_statistics_emitted_for_compositions(self):
        from repro.ioa import explore

        composition, invariant = abp_closed_system()
        with tracing(MemorySink()) as tracer:
            explore(composition, invariant=invariant)
        totals = tracer.snapshot_counters()
        assert totals["explore.memo_queries"] > 0
        assert totals["explore.memo_hits"] <= totals["explore.memo_queries"]
        assert 0.0 <= tracer.gauges["explore.memo_hit_rate"] <= 1.0
        assert totals["explore.slices_interned"] > 0

    def test_reference_engine_also_counts_states(self):
        from repro.ioa import explore

        composition, invariant = abp_closed_system(messages=1, capacity=1)
        with tracing(MemorySink()) as tracer:
            result = explore(
                composition, invariant=invariant, engine="reference"
            )
        totals = tracer.snapshot_counters()
        assert totals["explore.states"] == len(result.states)


class TestSimInstrumentation:
    def test_step_counter_matches_result(self):
        from repro.protocols import alternating_bit_protocol
        from repro.sim import FaultPlan, fifo_system, generate_script
        from repro.sim.runner import run_scenario

        system = fifo_system(alternating_bit_protocol())
        script = generate_script(system, FaultPlan(messages=3, seed=2))
        sink = MemorySink()
        with tracing(sink) as tracer:
            result = run_scenario(system, script.actions, seed=2)
        totals = tracer.snapshot_counters()
        assert totals["sim.steps"] == result.steps
        assert totals["sim.messages_delivered"] == 3
        assert any(
            e.kind == "span_start" and e.name == "sim.scenario"
            for e in sink.events
        )
        assert any(
            e.kind == "span_start" and e.name == "sim.step"
            for e in sink.events
        )

    def test_crash_injections_counted(self):
        from repro.protocols import alternating_bit_protocol
        from repro.sim import FaultPlan, fifo_system, generate_script
        from repro.sim.runner import run_scenario

        system = fifo_system(alternating_bit_protocol())
        plan = FaultPlan(messages=6, crash_probability=0.9, seed=1)
        script = generate_script(system, plan)
        with tracing(MemorySink()) as tracer:
            run_scenario(system, script.actions, seed=1)
        assert tracer.snapshot_counters().get("sim.crash_injections", 0) > 0


class TestRefuteInstrumentation:
    def test_crash_engine_spans_and_counters(self):
        from repro.impossibility import refute_crash_tolerance
        from repro.protocols import alternating_bit_protocol

        sink = MemorySink()
        with tracing(sink) as tracer:
            refute_crash_tolerance(alternating_bit_protocol())
        totals = tracer.snapshot_counters()
        assert totals["refute.crash_injections"] >= 1
        assert totals["refute.replayed_steps"] >= 1
        names = {
            e.name for e in sink.events if e.kind == "span_start"
        }
        assert "refute.crash" in names
        assert "refute.round" in names

    def test_header_engine_spans_and_counters(self):
        from repro.impossibility import refute_bounded_headers
        from repro.protocols import modulo_stenning_protocol

        sink = MemorySink()
        with tracing(sink) as tracer:
            refute_bounded_headers(modulo_stenning_protocol(2))
        totals = tracer.snapshot_counters()
        assert totals["refute.pump_rounds"] >= 1
        names = {
            e.name for e in sink.events if e.kind == "span_start"
        }
        assert "refute.headers" in names
        assert "refute.round" in names
