"""Tracer semantics: spans, counters, gauges, and the disabled default."""

from __future__ import annotations

import pytest

from repro.obs import (
    COUNTER,
    SPAN_END,
    SPAN_START,
    MemorySink,
    Tracer,
    current_tracer,
    set_tracer,
    tracing,
)
from repro.obs.tracer import _NOOP_SPAN


class TestDisabledDefault:
    def test_process_default_is_disabled(self):
        assert current_tracer().enabled is False

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is _NOOP_SPAN
        assert tracer.span("y", depth=3) is _NOOP_SPAN
        with tracer.span("x"):
            pass  # enters and exits cleanly

    def test_disabled_tracer_records_nothing(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink], enabled=False)
        tracer.count("a", 3)
        tracer.gauge("b", 1.5)
        tracer.point("c")
        assert sink.events == ()
        assert tracer.counters == {}
        assert tracer.gauges == {}


class TestSpans:
    def test_span_events_pair_and_nest(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer", depth=0):
            with tracer.span("inner"):
                pass
        kinds = [(event.kind, event.name) for event in sink.events]
        assert kinds == [
            (SPAN_START, "outer"),
            (SPAN_START, "inner"),
            (SPAN_END, "inner"),
            (SPAN_END, "outer"),
        ]
        outer_start, inner_start, inner_end, outer_end = sink.events
        assert inner_start.parent == outer_start.span
        assert inner_end.span == inner_start.span
        assert outer_start.fields == {"depth": 0}
        assert outer_end.value >= inner_end.value >= 0

    def test_end_span_requires_innermost(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("inner")
        with pytest.raises(RuntimeError):
            tracer.end_span(outer)

    def test_counter_inside_span_links_to_it(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("work") as span_id:
            tracer.count("items", 2)
        counter = next(e for e in sink.events if e.kind == COUNTER)
        assert counter.parent == span_id


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("x")
        tracer.count("x", 4)
        tracer.count("y", 2.5)
        assert tracer.counters == {"x": 5, "y": 2.5}

    def test_zero_increment_is_a_noop(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        tracer.count("x", 0)
        assert sink.events == ()
        assert "x" not in tracer.counters

    def test_gauges_keep_last_value(self):
        tracer = Tracer()
        tracer.gauge("frontier", 10)
        tracer.gauge("frontier", 3)
        assert tracer.gauges == {"frontier": 3}

    def test_snapshot_counters_sorted_and_integral(self):
        tracer = Tracer()
        tracer.count("b", 2.0)
        tracer.count("a", 1.5)
        snapshot = tracer.snapshot_counters()
        assert list(snapshot) == ["a", "b"]
        assert snapshot["b"] == 2 and isinstance(snapshot["b"], int)
        assert snapshot["a"] == 1.5


class TestInstallation:
    def test_set_tracer_returns_previous(self):
        mine = Tracer()
        previous = set_tracer(mine)
        try:
            assert current_tracer() is mine
        finally:
            set_tracer(previous)
        assert current_tracer() is previous

    def test_set_tracer_none_restores_disabled_default(self):
        previous = set_tracer(Tracer())
        set_tracer(None)
        assert current_tracer().enabled is False
        set_tracer(previous)

    def test_tracing_installs_and_restores(self):
        before = current_tracer()
        with tracing(MemorySink()) as tracer:
            assert current_tracer() is tracer
            assert tracer.enabled
        assert current_tracer() is before

    def test_tracing_restores_on_exception(self):
        before = current_tracer()
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert current_tracer() is before


class TestAbsorb:
    """Replaying captured event chunks into another tracer."""

    def _capture(self):
        sink = MemorySink()
        with tracing(sink) as tracer:
            with tracer.span("work", step=1):
                tracer.count("items", 3)
            tracer.gauge("level", 0.5)
        return sink.events

    def test_absorb_remaps_span_ids_onto_own_counter(self):
        events = self._capture()
        sink = MemorySink()
        master = Tracer(sinks=[sink])
        master.start_span("warmup")  # claims span id 0
        master.end_span(0)
        master.absorb(events)
        replayed = [e for e in sink.events if e.name == "work"]
        assert [e.span for e in replayed] == [1, 1]
        assert master._next_span == 2

    def test_absorb_rehomes_top_level_parents_to_open_span(self):
        events = self._capture()
        sink = MemorySink()
        master = Tracer(sinks=[sink])
        with master.span("fuzz.run"):
            master.absorb(events)
        work_start = next(
            e for e in sink.events
            if e.kind == SPAN_START and e.name == "work"
        )
        counter = next(e for e in sink.events if e.name == "items")
        assert work_start.parent == 0  # the open fuzz.run span
        assert counter.parent == work_start.span  # nesting preserved

    def test_absorb_folds_counter_and_gauge_totals(self):
        events = self._capture()
        master = Tracer(sinks=[MemorySink()])
        master.count("items", 1)
        master.absorb(events)
        assert master.counters["items"] == 4
        assert master.gauges["level"] == 0.5

    def test_absorb_on_disabled_tracer_is_a_noop(self):
        events = self._capture()
        sink = MemorySink()
        tracer = Tracer(sinks=[sink], enabled=False)
        tracer.absorb(events)
        assert sink.events == ()
        assert tracer.counters == {}
