"""Run manifests, config hashing, and the trace_run entry point."""

from __future__ import annotations

import pytest

from repro.obs import (
    MANIFEST,
    RunManifest,
    config_hash,
    read_events,
    trace_run,
)


class TestConfigHash:
    def test_stable_and_short(self):
        first = config_hash({"messages": 4, "loss": 0.2})
        second = config_hash({"messages": 4, "loss": 0.2})
        assert first == second
        assert len(first) == 12

    def test_key_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash(
            {"b": 2, "a": 1}
        )

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_non_json_values_stringified(self):
        config_hash({"proto": object()})  # must not raise


class TestTraceRun:
    def test_manifest_closes_the_stream(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with trace_run(
            path,
            command="simulate",
            protocol="abp",
            seed=7,
            config={"messages": 3},
        ) as tracer:
            with tracer.span("sim.step"):
                tracer.count("sim.steps", 3)
        events = read_events(path)
        assert events[-1].kind == MANIFEST
        manifest = RunManifest.find(events)
        assert manifest is not None
        assert manifest.command == "simulate"
        assert manifest.protocol == "abp"
        assert manifest.seed == 7
        assert manifest.config == {"messages": 3}
        assert manifest.config_hash == config_hash({"messages": 3})
        assert manifest.status == "ok"
        assert manifest.counters == {"sim.steps": 3}
        assert manifest.wall_s >= 0 and manifest.cpu_s >= 0
        # the manifest counts every event that precedes it
        assert manifest.events == len(events) - 1

    def test_exception_marks_status_error(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with pytest.raises(ValueError):
            with trace_run(path, command="verify") as tracer:
                tracer.count("explore.states", 1)
                raise ValueError("boom")
        manifest = RunManifest.find(read_events(path))
        assert manifest is not None
        assert manifest.status == "error"
        assert manifest.counters == {"explore.states": 1}

    def test_manifest_round_trips_through_event(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with trace_run(path, command="x", config={"k": 1}):
            pass
        events = read_events(path)
        manifest = RunManifest.from_event(events[-1])
        assert manifest.to_dict() == events[-1].fields

    def test_find_returns_none_without_manifest(self):
        assert RunManifest.find(()) is None
