"""Event model and sink tests, centered on JSONL round-trip identity."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    COUNTER,
    GAUGE,
    MANIFEST,
    POINT,
    SPAN_END,
    SPAN_START,
    JSONLSink,
    MemorySink,
    TextSink,
    read_events,
)
from repro.obs.events import Event
from repro.obs.sinks import render_text

SAMPLE = (
    Event(SPAN_START, "explore.layer", 0.0, span=0, fields={"depth": 0}),
    Event(COUNTER, "explore.states", 0.001, value=7, parent=0),
    Event(GAUGE, "explore.frontier", 0.002, value=7.0, parent=0),
    Event(POINT, "note", 0.003, parent=0, fields={"why": "test"}),
    Event(SPAN_END, "explore.layer", 0.004, value=0.004, span=0),
    Event(
        MANIFEST,
        "run",
        0.005,
        fields={"command": "simulate", "status": "ok"},
    ),
)


class TestEvent:
    def test_to_dict_omits_unset_optionals(self):
        record = Event(COUNTER, "x", 1.0, value=2).to_dict()
        assert record == {
            "kind": "counter",
            "name": "x",
            "at": 1.0,
            "value": 2,
        }

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Event.from_dict({"kind": "nope", "name": "x", "at": 0.0})

    def test_dict_round_trip(self):
        for event in SAMPLE:
            assert Event.from_dict(event.to_dict()) == event


class TestJSONLRoundTrip:
    def test_file_round_trip_identity(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JSONLSink(path)
        for event in SAMPLE:
            sink.emit(event)
        sink.close()
        assert read_events(path) == SAMPLE

    def test_handle_round_trip_identity(self):
        buffer = io.StringIO()
        sink = JSONLSink(buffer)
        for event in SAMPLE:
            sink.emit(event)
        sink.close()  # handle sink: flush but leave open
        buffer.seek(0)
        assert read_events(buffer) == SAMPLE

    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JSONLSink(path)
        for event in SAMPLE:
            sink.emit(event)
        sink.close()
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == len(SAMPLE)
        for line in lines:
            json.loads(line)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"kind":"counter","name":"x","at":0.0,"value":1}\n'
            "\n"
            '{"kind":"point","name":"y","at":0.1}\n'
        )
        events = read_events(str(path))
        assert [event.name for event in events] == ["x", "y"]


class TestMemorySink:
    def test_unbounded_keeps_everything(self):
        sink = MemorySink()
        for event in SAMPLE:
            sink.emit(event)
        assert sink.events == SAMPLE

    def test_ring_buffer_keeps_most_recent(self):
        sink = MemorySink(capacity=2)
        for event in SAMPLE:
            sink.emit(event)
        assert sink.events == SAMPLE[-2:]

    def test_clear(self):
        sink = MemorySink()
        sink.emit(SAMPLE[0])
        sink.clear()
        assert sink.events == ()


class TestTextSink:
    def test_spans_indent_and_nest(self):
        buffer = io.StringIO()
        sink = TextSink(buffer)
        for event in SAMPLE:
            sink.emit(event)
        text = buffer.getvalue()
        assert "> explore.layer" in text
        assert "+ explore.states += 7" in text
        assert "= explore.frontier = 7" in text
        assert "< explore.layer" in text
        assert "# manifest" in text
        # counter emitted inside the span is indented one level deeper
        start_line = next(
            line for line in text.splitlines() if "> explore.layer" in line
        )
        counter_line = next(
            line for line in text.splitlines() if "+ explore.states" in line
        )
        assert counter_line.index("+") > start_line.index(">")

    def test_render_text_matches_sink(self):
        buffer = io.StringIO()
        sink = TextSink(buffer)
        for event in SAMPLE:
            sink.emit(event)
        assert render_text(SAMPLE) == buffer.getvalue()
