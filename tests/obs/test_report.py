"""RunReport envelope tests, unit-level and on each result object."""

from __future__ import annotations

from repro.obs import (
    STATUS_ERROR,
    STATUS_FINDINGS,
    STATUS_OK,
    STATUS_VIOLATION,
    RunReport,
)

ENVELOPE_KEYS = ["command", "counters", "details", "duration_s", "status"]


def assert_envelope(record, command):
    assert sorted(record) == ENVELOPE_KEYS
    assert record["command"] == command
    assert record["status"] in (
        STATUS_OK,
        STATUS_VIOLATION,
        STATUS_FINDINGS,
        STATUS_ERROR,
    )
    assert isinstance(record["counters"], dict)
    assert isinstance(record["duration_s"], (int, float))
    assert isinstance(record["details"], dict)


class TestRunReport:
    def test_five_key_envelope(self):
        report = RunReport(command="x", status=STATUS_OK)
        assert_envelope(report.to_dict(), "x")

    def test_artifacts_folded_into_details(self):
        report = RunReport(
            command="x",
            status=STATUS_OK,
            details={"a": 1},
            artifacts={"trace": "out.jsonl"},
        )
        record = report.to_dict()
        assert sorted(record) == ENVELOPE_KEYS
        assert record["details"]["artifacts"] == {"trace": "out.jsonl"}
        assert record["details"]["a"] == 1

    def test_exit_codes(self):
        codes = {
            STATUS_OK: 0,
            STATUS_VIOLATION: 1,
            STATUS_FINDINGS: 1,
            STATUS_ERROR: 2,
        }
        for status, code in codes.items():
            assert RunReport(command="x", status=status).exit_code == code
        assert RunReport(command="x", status="weird").exit_code == 2

    def test_ok_property(self):
        assert RunReport(command="x", status=STATUS_OK).ok
        assert not RunReport(command="x", status=STATUS_VIOLATION).ok

    def test_counters_sorted_and_duration_rounded(self):
        report = RunReport(
            command="x",
            status=STATUS_OK,
            counters={"b": 2, "a": 1},
            duration_s=0.123456789,
        )
        record = report.to_dict()
        assert list(record["counters"]) == ["a", "b"]
        assert record["duration_s"] == 0.123457


class TestResultObjectReports:
    def test_exploration_result(self):
        from repro.analysis.model_check import build_closed_system
        from repro.ioa import explore
        from repro.protocols import alternating_bit_protocol

        composition, invariant, _ = build_closed_system(
            alternating_bit_protocol(), messages=1, capacity=1
        )
        result = explore(composition, invariant=invariant)
        report = result.report(duration_s=0.5)
        assert_envelope(report.to_dict(), "explore")
        assert report.counters["explore.states"] == len(result.states)
        assert report.status == STATUS_OK

    def test_model_check_result(self):
        from repro.analysis import verify_delivery_order
        from repro.protocols import alternating_bit_protocol

        result = verify_delivery_order(
            alternating_bit_protocol(), messages=1, capacity=1
        )
        report = result.report()
        assert_envelope(report.to_dict(), "verify")
        assert report.status == STATUS_OK
        assert report.counters["explore.states"] == result.states_explored

    def test_model_check_violation(self):
        from repro.analysis import verify_delivery_order
        from repro.protocols import alternating_bit_protocol

        result = verify_delivery_order(
            alternating_bit_protocol(),
            messages=2,
            capacity=2,
            reorder_depth=2,
        )
        report = result.report()
        assert report.status == STATUS_VIOLATION
        assert report.exit_code == 1
        assert report.details["counterexample"]

    def test_scenario_result(self):
        from repro.protocols import alternating_bit_protocol
        from repro.sim import FaultPlan, fifo_system, generate_script
        from repro.sim.runner import run_scenario

        system = fifo_system(alternating_bit_protocol())
        script = generate_script(system, FaultPlan(messages=2, seed=0))
        result = run_scenario(system, script.actions, seed=0)
        report = result.report()
        assert_envelope(report.to_dict(), "simulate")
        assert report.counters["sim.steps"] == result.steps
        assert report.counters["sim.messages_delivered"] == 2

    def test_crash_certificate(self):
        from repro.impossibility import refute_crash_tolerance
        from repro.protocols import alternating_bit_protocol

        certificate = refute_crash_tolerance(alternating_bit_protocol())
        report = certificate.report(duration_s=0.1)
        assert_envelope(report.to_dict(), "refute-crash")
        assert report.status == STATUS_OK  # validated: the job succeeded
        assert report.counters["refute.behavior_length"] > 0

    def test_headers_certificate(self):
        from repro.impossibility import refute_bounded_headers
        from repro.protocols import modulo_stenning_protocol

        certificate = refute_bounded_headers(modulo_stenning_protocol(2))
        report = certificate.report()
        assert_envelope(report.to_dict(), "refute-headers")
        assert report.status == STATUS_OK

    def test_lint_report(self):
        from repro.lint import lint_targets, target_from
        from repro.protocols import alternating_bit_protocol

        lint = lint_targets([target_from(alternating_bit_protocol())])
        report = lint.report()
        assert_envelope(report.to_dict(), "lint")
        assert report.counters["lint.targets"] == 1
