"""Smoke tests: every example script runs to completion and prints the
headline it promises.  Keeps the examples honest as the library evolves."""

from __future__ import annotations

import importlib.util
import io
from contextlib import redirect_stdout
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart")
        assert "delivered 5/5" in out
        assert "certificate independently validated: True" in out

    def test_crash_impossibility(self):
        out = run_example("crash_impossibility")
        assert out.count("True") >= 8  # every victim validated
        assert "rejected" in out  # the non-volatile boundary

    def test_bounded_headers(self):
        out = run_example("bounded_headers")
        assert "duplicate-delivery" in out
        assert "rejected" in out
        assert "slopes" in out

    def test_noisy_link_transfer(self):
        out = run_example("noisy_link_transfer")
        assert out.count("True") >= 8  # every run DL-conformant
        assert "20/20" in out

    def test_crash_recovery_session(self):
        out = run_example("crash_recovery_session")
        assert "total safety violations" not in out  # table per run
        assert "rejected" in out

    def test_exhaustive_verification(self):
        out = run_example("exhaustive_verification")
        assert "VERIFIED" in out and "COUNTEREXAMPLE" in out
        assert "t station" in out  # the rendered chart

    def test_two_hop_relay(self):
        out = run_example("two_hop_relay")
        assert "delivered 8/8" in out
        assert "in order: True" in out
