"""Tests for the exhaustive bounded model checker (experiment E9)."""

from __future__ import annotations

import pytest

from repro.alphabets import MessageFactory
from repro.analysis import verify_delivery_order
from repro.analysis.model_check import EnvState, ScriptedEnvironment
from repro.channels import NondetLossyFifoChannel, send_pkt, receive_pkt
from repro.alphabets import Packet
from repro.protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    direct_protocol,
    eager_protocol,
    fragmenting_protocol,
    sliding_window_protocol,
    stenning_protocol,
)


class TestNondetChannel:
    def setup_method(self):
        self.channel = NondetLossyFifoChannel("t", "r", capacity=2)
        self.p1 = Packet("a", (), None)
        self.p2 = Packet("b", (), None)

    def test_fifo_delivery(self):
        state = self.channel.step(
            self.channel.initial_state(), send_pkt("t", "r", self.p1)
        )
        state = self.channel.step(state, send_pkt("t", "r", self.p2))
        enabled = list(self.channel.enabled_local_actions(state))
        delivers = [a for a in enabled if a.name == "receive_pkt"]
        assert [a.payload for a in delivers] == [self.p1]  # head only

    def test_loss_of_any_position(self):
        state = self.channel.step(
            self.channel.initial_state(), send_pkt("t", "r", self.p1)
        )
        state = self.channel.step(state, send_pkt("t", "r", self.p2))
        enabled = list(self.channel.enabled_local_actions(state))
        losses = [a for a in enabled if a.name == "lose"]
        assert {a.payload for a in losses} == {0, 1}
        dropped = self.channel.step(state, losses[0])
        assert len(dropped) == 1

    def test_capacity_drops_overflow(self):
        state = self.channel.initial_state()
        for packet in (self.p1, self.p2, Packet("c", (), None)):
            state = self.channel.step(state, send_pkt("t", "r", packet))
        assert len(state) == 2  # third send lost at the full buffer

    def test_wrong_head_not_deliverable(self):
        state = self.channel.step(
            self.channel.initial_state(), send_pkt("t", "r", self.p1)
        )
        assert (
            self.channel.transitions(state, receive_pkt("t", "r", self.p2))
            == ()
        )


class TestScriptedEnvironment:
    def test_wake_then_send_order(self):
        factory = MessageFactory()
        batch = factory.fresh_many(2)
        env = ScriptedEnvironment("t", "r", batch)
        state = env.initial_state()
        enabled = {a.name for a in env.enabled_local_actions(state)}
        assert enabled == {"wake"}
        state = EnvState(True, True, 0, ())
        (action,) = list(env.enabled_local_actions(state))
        assert action.name == "send_msg" and action.payload == batch[0]

    def test_records_deliveries(self):
        factory = MessageFactory()
        batch = factory.fresh_many(1)
        env = ScriptedEnvironment("t", "r", batch)
        from repro.datalink import receive_msg

        state = env.step(env.initial_state(), receive_msg("t", "r", batch[0]))
        assert state.delivered == (batch[0],)


class TestExhaustiveVerification:
    """E9: full state-space proofs at small bounds."""

    @pytest.mark.parametrize(
        "factory,messages,capacity",
        [
            (alternating_bit_protocol, 2, 2),
            (stenning_protocol, 2, 2),
            (
                lambda: fragmenting_protocol(chunk=1, max_fragments=2),
                2,
                2,
            ),
        ],
    )
    def test_correct_protocols_verified(self, factory, messages, capacity):
        result = verify_delivery_order(
            factory(), messages=messages, capacity=capacity
        )
        assert result.ok
        assert result.exhaustive
        assert result.states_explored > 100

    def test_sliding_window_verified(self):
        result = verify_delivery_order(
            sliding_window_protocol(2), messages=2, capacity=2
        )
        assert result.ok and result.exhaustive

    def test_baratz_segall_verified_small(self):
        result = verify_delivery_order(
            baratz_segall_protocol(True), messages=1, capacity=2
        )
        assert result.ok and result.exhaustive

    def test_eager_counterexample_found(self):
        result = verify_delivery_order(
            eager_protocol(), messages=1, capacity=2
        )
        assert not result.ok
        # The counterexample is a concrete action trace ending in the
        # second (duplicate) delivery.
        assert result.counterexample[-1].name == "receive_msg"

    def test_direct_counterexample_found(self):
        # Fire-and-forget: lose the first message, deliver the second --
        # the delivered sequence is not a prefix of the sent one.
        result = verify_delivery_order(
            direct_protocol(), messages=2, capacity=2
        )
        assert not result.ok

    def test_counterexample_is_short(self):
        result = verify_delivery_order(
            eager_protocol(), messages=1, capacity=2
        )
        # BFS exploration returns a minimal-depth violation.
        assert len(result.counterexample) <= 12


class TestReorderingBoundary:
    """Footnote 1, exhaustively: bounded displacement vs. header modulus.

    With reordering displacement bounded, bounded headers become
    possible again -- the complement of Theorem 8.5's *arbitrary*
    reordering hypothesis.  These are full state-space results at the
    stated bounds, not samples.
    """

    def test_abp_safe_at_fifo_depth(self):
        result = verify_delivery_order(
            alternating_bit_protocol(),
            messages=2,
            capacity=3,
            reorder_depth=1,
        )
        assert result.ok and result.exhaustive

    def test_abp_breaks_at_depth_two(self):
        result = verify_delivery_order(
            alternating_bit_protocol(),
            messages=2,
            capacity=3,
            reorder_depth=2,
        )
        assert not result.ok
        assert result.counterexample[-1].name == "receive_msg"

    def test_larger_modulus_tolerates_depth_two(self):
        from repro.protocols import modulo_stenning_protocol

        result = verify_delivery_order(
            modulo_stenning_protocol(4),
            messages=2,
            capacity=3,
            reorder_depth=2,
        )
        assert result.ok and result.exhaustive

    def test_unbounded_headers_tolerate_depth_three(self):
        result = verify_delivery_order(
            stenning_protocol(), messages=2, capacity=3, reorder_depth=3
        )
        assert result.ok and result.exhaustive

    def test_depth_validation(self):
        from repro.channels import NondetLossyFifoChannel

        with pytest.raises(ValueError):
            NondetLossyFifoChannel("t", "r", reorder_depth=0)
