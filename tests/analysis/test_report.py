"""Tests for the structured experiment report generator."""

from __future__ import annotations


from repro.analysis import Table, run_all, to_markdown, to_text
from repro.analysis.report import (
    e1_crash_table,
    e2_header_table,
    e6_kbound_table,
)


class TestTable:
    def test_add_and_render_text(self):
        table = Table("EX", "demo", ("a", "bb"))
        table.add(1, "x")
        table.add(22, "yy")
        text = table.to_text()
        assert "[EX] demo" in text
        assert "22" in text and "yy" in text

    def test_render_markdown(self):
        table = Table("EX", "demo", ("a", "b"), notes=("a note",))
        table.add("1", "2")
        md = table.to_markdown()
        assert md.startswith("### EX")
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md
        assert "*a note*" in md

    def test_empty_table_renders(self):
        assert "demo" in Table("EX", "demo", ("a",)).to_text()


class TestExperimentTables:
    def test_e1_all_defeated(self):
        table = e1_crash_table()
        # Every row except the non-volatile control shows a verdict.
        defeated = [r for r in table.rows if "rejected" not in r[1]]
        assert all(
            r[1] in ("liveness", "duplicate-delivery", "unsent-delivery")
            for r in defeated
        )
        rejected = [r for r in table.rows if "rejected" in r[1]]
        assert len(rejected) == 1

    def test_e2_rounds_below_bound(self):
        table = e2_header_table()
        for row in table.rows:
            if row[3] in ("-", ""):
                continue
            assert int(row[3]) <= int(row[4])

    def test_e6_all_one_bounded(self):
        table = e6_kbound_table()
        assert all(row[1] == "1" for row in table.rows)

    def test_run_all_subset(self):
        tables = run_all(only=["E6"])
        assert len(tables) == 1
        assert tables[0].ident == "E6"

    def test_renderers_compose(self):
        tables = run_all(only=["E6"])
        assert "E6" in to_text(tables)
        assert "### E6" in to_markdown(tables)
