"""Tests for trace auditing and header-growth measurement."""

from __future__ import annotations


from repro.alphabets import Message
from repro.analysis import (
    check_datalink_trace,
    check_physical_trace,
    measure_header_growth,
)
from repro.channels import receive_pkt, send_pkt, wake
from repro.datalink import receive_msg, send_msg
from repro.protocols import (
    alternating_bit_protocol,
    modulo_stenning_protocol,
    sliding_window_protocol,
    stenning_protocol,
)

T, R = "t", "r"
M1, M2 = Message(1), Message(2)


class TestDatalinkReport:
    def test_clean_trace_ok(self):
        trace = [
            wake(T, R),
            wake(R, T),
            send_msg(T, R, M1),
            receive_msg(T, R, M1),
        ]
        report = check_datalink_trace(trace)
        assert report.ok
        assert report.holds("DL4")
        assert report.holds("valid")

    def test_violations_enumerated(self):
        trace = [
            wake(T, R),
            wake(R, T),
            send_msg(T, R, M1),
            receive_msg(T, R, M1),
            receive_msg(T, R, M1),
            receive_msg(T, R, M2),
        ]
        report = check_datalink_trace(trace)
        names = {r.name for r in report.violations}
        assert "DL4" in names and "DL5" in names

    def test_describe_renders(self):
        report = check_datalink_trace([wake(T, R), wake(R, T)])
        text = report.describe()
        assert "DL1" in text and "ok" in text


class TestPhysicalReport:
    def test_clean_channel_trace(self):
        from repro.alphabets import Packet

        p = Packet("h", (), uid=1)
        trace = [wake(T, R), send_pkt(T, R, p), receive_pkt(T, R, p)]
        report = check_physical_trace(trace, T, R)
        assert report.ok

    def test_reorder_flagged(self):
        from repro.alphabets import Packet

        p1, p2 = Packet("a", (), uid=1), Packet("b", (), uid=2)
        trace = [
            wake(T, R),
            send_pkt(T, R, p1),
            send_pkt(T, R, p2),
            receive_pkt(T, R, p2),
            receive_pkt(T, R, p1),
        ]
        report = check_physical_trace(trace, T, R)
        assert not report.holds("PL5")


class TestHeaderGrowth:
    def test_stenning_linear(self):
        series = measure_header_growth(
            stenning_protocol(), checkpoints=(1, 2, 4, 8)
        )
        counts = [p.total_distinct for p in series.points]
        assert counts == [2, 4, 8, 16]  # data + ack header per message
        assert series.slope_estimate() == 2.0
        assert not series.is_bounded()

    def test_sliding_window_bounded(self):
        series = measure_header_growth(
            sliding_window_protocol(2), checkpoints=(1, 2, 4, 8, 16)
        )
        assert series.is_bounded()
        assert series.points[-1].total_distinct <= 6

    def test_modulo_stenning_bounded_by_modulus(self):
        series = measure_header_growth(
            modulo_stenning_protocol(4), checkpoints=(1, 4, 8, 16)
        )
        assert series.is_bounded(bound=8)

    def test_abp_uses_four_headers(self):
        series = measure_header_growth(
            alternating_bit_protocol(), checkpoints=(4, 8)
        )
        assert series.points[-1].total_distinct == 4

    def test_non_fifo_measurement(self):
        series = measure_header_growth(
            stenning_protocol(), checkpoints=(1, 2), fifo=False
        )
        assert series.points[-1].messages == 2
