"""Tests for the reordering-tolerance ablation (experiment E8)."""

from __future__ import annotations

import pytest

from repro.analysis import reordering_tolerance_grid
from repro.impossibility import refute_bounded_headers
from repro.protocols import modulo_stenning_protocol, stenning_protocol


def family(modulus):
    if modulus is None:
        return stenning_protocol()
    return modulo_stenning_protocol(modulus)


@pytest.fixture(scope="module")
def grid():
    return reordering_tolerance_grid(
        family,
        moduli=[2, 8, None],
        displacements=[1, 4],
        seeds=range(5),
        messages=10,
    )


class TestGridShape:
    def test_no_reordering_no_violations(self, grid):
        """Displacement 1 is FIFO: every modulus is safe."""
        for modulus in (2, 8, None):
            assert grid.cell(modulus, 1).violations == 0

    def test_small_modulus_breaks_under_reordering(self, grid):
        assert grid.cell(2, 4).violations > 0

    def test_large_modulus_resists_random_adversaries(self, grid):
        assert grid.cell(8, 4).violations == 0

    def test_unbounded_headers_never_fail(self, grid):
        assert grid.cell(None, 4).violations == 0

    def test_render_contains_all_cells(self, grid):
        text = grid.render()
        assert "N=2" in text and "unbounded" in text and "W=4" in text

    def test_failing_seeds_recorded(self, grid):
        cell = grid.cell(2, 4)
        assert len(cell.failing_seeds) == cell.violations
        assert cell.violation_ratio == cell.violations / cell.runs

    def test_cell_lookup_missing(self, grid):
        with pytest.raises(KeyError):
            grid.cell(3, 1)


class TestConstructiveAdversaryContrast:
    """The headline of E8: random adversaries miss what the Lemma 8.3
    pumping construction finds deterministically."""

    def test_engine_defeats_what_random_cannot(self, grid):
        # Random window-4 adversaries never broke N=8 ...
        assert grid.cell(8, 4).violations == 0
        # ... but the constructive engine does, in bounded rounds.
        certificate = refute_bounded_headers(modulo_stenning_protocol(8))
        assert certificate.validate()
        assert certificate.stats["pump_rounds"] <= 2 * 2 * 16
