"""Tests for refinement mappings and the reliable-link proofs."""

from __future__ import annotations


from repro.alphabets import Message
from repro.analysis import (
    ReliableLinkSpec,
    abp_mapping,
    verify_abp_refinement,
    verify_refinement,
)
from repro.analysis.refinement_proofs import eager_mapping
from repro.datalink import receive_msg, send_msg
from repro.ioa import check_refinement
from repro.protocols import eager_protocol

M1, M2 = Message(1), Message(2)


class TestReliableLinkSpec:
    def setup_method(self):
        self.spec = ReliableLinkSpec()

    def test_send_appends(self):
        state = self.spec.step((), send_msg("t", "r", M1))
        assert state == (M1,)

    def test_receive_pops_head_only(self):
        state = (M1, M2)
        assert self.spec.transitions(state, receive_msg("t", "r", M1))
        assert not self.spec.transitions(state, receive_msg("t", "r", M2))

    def test_enabled_delivery_is_head(self):
        (action,) = list(self.spec.enabled_local_actions((M1, M2)))
        assert action.payload == M1

    def test_empty_queue_quiescent(self):
        assert self.spec.is_quiescent(())


class TestCheckRefinement:
    def test_identity_refines_itself(self):
        spec = ReliableLinkSpec()

        def environment(state):
            if len(state) < 2:
                return [send_msg("t", "r", Message(len(state) + 10))]
            return []

        result = check_refinement(
            spec, ReliableLinkSpec(), lambda s: s, environment=environment
        )
        assert result.holds and result.exhaustive

    def test_wrong_start_mapping_rejected(self):
        spec = ReliableLinkSpec()
        result = check_refinement(spec, ReliableLinkSpec(), lambda s: (M1,))
        assert not result.holds
        assert "start state" in result.failure


class TestAbpRefinement:
    """The structural proof that ABP solves the reliable link."""

    def test_abp_refines_reliable_link(self):
        result = verify_abp_refinement(messages=2, capacity=2)
        assert result.holds
        assert result.exhaustive
        assert result.states_checked > 500

    def test_abp_refines_at_larger_bounds(self):
        result = verify_abp_refinement(messages=3, capacity=2)
        assert result.holds and result.exhaustive

    def test_mapping_shape(self):
        # Spot-check the mapping on a hand-built composed state.
        from repro.datalink.protocol import HostState
        from repro.protocols.alternating_bit import (
            AbpReceiverCore,
            AbpTransmitterCore,
        )

        tx = HostState(AbpTransmitterCore(bit=0, queue=(M1, M2)))
        # Receiver accepted M1 (expected flipped) but tx not yet acked.
        rx = HostState(AbpReceiverCore(expected=1, inbox=(M1,)))
        state = (tx, rx, (), (), None)
        assert abp_mapping(state) == (M1, M2)

    def test_eager_fails_refinement(self):
        result = verify_refinement(
            eager_protocol(), eager_mapping, messages=1, capacity=2
        )
        assert not result.holds
        assert result.failing_trace
        assert "not a specification step" in result.failure
