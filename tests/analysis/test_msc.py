"""Tests for the message-sequence-chart renderer."""

from __future__ import annotations

from repro.alphabets import Message, MessageFactory, Packet
from repro.analysis import render_fragment, render_msc
from repro.channels import (
    crash,
    fail,
    lossy_fifo_channel,
    receive_pkt,
    send_pkt,
    wake,
)
from repro.datalink import receive_msg, send_msg
from repro.protocols import alternating_bit_protocol
from repro.sim import DataLinkSystem

M1 = Message(1)


class TestRenderMsc:
    def test_columns(self):
        trace = [
            wake("t", "r"),
            wake("r", "t"),
            send_msg("t", "r", M1),
            receive_msg("t", "r", M1),
        ]
        text = render_msc(trace)
        lines = text.splitlines()
        assert "t station" in lines[0] and "r station" in lines[0]
        wake_t = next(l for l in lines if l.strip() == "wake")
        assert wake_t.startswith("wake")  # left column
        recv = next(l for l in lines if "receive_msg" in l)
        assert recv.startswith(" " * 40)  # right column

    def test_packet_arrows(self):
        p = Packet(("DATA", 0), (M1,), uid=1)
        a = Packet(("ACK", 0), (), uid=1)
        trace = [
            wake("t", "r"),
            send_pkt("t", "r", p),
            receive_pkt("t", "r", p),
            send_pkt("r", "t", a),
            receive_pkt("r", "t", a),
        ]
        text = render_msc(trace)
        assert "->" in text  # t->r arrow
        assert "<-" in text  # r->t arrow
        assert "(lost)" not in text

    def test_lost_packet_marked(self):
        p = Packet(("DATA", 0), (M1,), uid=1)
        trace = [wake("t", "r"), send_pkt("t", "r", p)]
        assert "(lost)" in render_msc(trace)

    def test_crash_and_fail_rendered(self):
        trace = [wake("t", "r"), fail("t", "r"), crash("r", "t")]
        text = render_msc(trace)
        assert "fail" in text and "CRASH" in text

    def test_full_run_renders(self):
        system = DataLinkSystem.build(
            alternating_bit_protocol(),
            lossy_fifo_channel("t", "r", seed=1, loss_rate=0.4),
            lossy_fifo_channel("r", "t", seed=2, loss_rate=0.4),
        )
        factory = MessageFactory()
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[
                system.wake_t(),
                system.wake_r(),
                system.send(factory.fresh()),
            ],
        )
        text = render_fragment(fragment)
        assert "receive_msg" in text
        assert text.count("\n") >= 5


class TestCliMsc:
    def test_simulate_msc_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "simulate",
                    "abp",
                    "--messages",
                    "2",
                    "--loss",
                    "0.0",
                    "--msc",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "t station" in out and "-->" in out
