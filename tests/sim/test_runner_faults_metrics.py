"""Tests for the simulation runner, fault scripts and metrics."""

from __future__ import annotations

import pytest

from repro.alphabets import MessageFactory
from repro.datalink import dl2, dl3, dl_well_formed
from repro.protocols import (
    alternating_bit_protocol,
    stenning_protocol,
)
from repro.sim import (
    FaultPlan,
    channel_stats,
    crash_storm,
    delivery_stats,
    distinct_headers_used,
    fifo_system,
    generate_script,
    run_batch,
    run_scenario,
)

from ..conftest import deliver_all


class TestFaultScripts:
    def test_script_starts_with_wakes(self):
        system = fifo_system(alternating_bit_protocol())
        script = generate_script(system, FaultPlan(messages=5, seed=1))
        assert script.actions[0] == system.wake_t()
        assert script.actions[1] == system.wake_r()
        assert len(script.messages) == 5

    def test_plain_script_has_no_faults(self):
        system = fifo_system(alternating_bit_protocol())
        script = generate_script(system, FaultPlan(messages=5, seed=1))
        assert not script.has_faults

    @pytest.mark.parametrize("seed", range(5))
    def test_scripts_satisfy_environment_obligations(self, seed):
        system = fifo_system(alternating_bit_protocol())
        plan = FaultPlan(
            messages=8,
            fail_probability=0.2,
            crash_probability=0.1,
            seed=seed,
        )
        script = generate_script(system, plan)
        assert dl_well_formed(script.actions, "t", "r").holds
        assert dl2(script.actions, "t", "r").holds
        assert dl3(script.actions, "t", "r").holds

    def test_scripts_deterministic_in_seed(self):
        system = fifo_system(alternating_bit_protocol())
        plan = FaultPlan(messages=5, fail_probability=0.3, seed=9)
        factory_a = MessageFactory()
        factory_b = MessageFactory()
        a = generate_script(system, plan, factory_a)
        b = generate_script(system, plan, factory_b)
        assert a.actions == b.actions

    @pytest.mark.parametrize("seed", range(3))
    def test_receiver_outages_stay_well_formed(self, seed):
        system = fifo_system(alternating_bit_protocol())
        plan = FaultPlan(
            messages=6,
            fail_probability=0.15,
            receiver_fail_probability=0.15,
            seed=seed,
        )
        script = generate_script(system, plan)
        assert dl_well_formed(script.actions, "t", "r").holds
        assert dl2(script.actions, "t", "r").holds

    def test_crash_storm_counts(self):
        system = fifo_system(alternating_bit_protocol())
        script = crash_storm(system, crashes=4, messages_between=2)
        assert script.crash_count == 4
        assert len(script.messages) == 10  # initial burst + 4 more
        assert dl_well_formed(script.actions, "t", "r").holds

    @pytest.mark.parametrize("seed", range(5))
    def test_dynamic_link_scripts_stay_well_formed(self, seed):
        system = fifo_system(alternating_bit_protocol())
        plan = FaultPlan(
            messages=8,
            link_flap_probability=0.3,
            link_partition_probability=0.2,
            seed=seed,
        )
        script = generate_script(system, plan)
        assert dl_well_formed(script.actions, "t", "r").holds
        assert dl2(script.actions, "t", "r").holds
        assert dl3(script.actions, "t", "r").holds

    def test_dynamic_link_events_are_counted_as_faults(self):
        system = fifo_system(alternating_bit_protocol())
        plan = FaultPlan(
            messages=12,
            link_flap_probability=0.4,
            link_partition_probability=0.3,
            seed=3,
        )
        script = generate_script(system, plan)
        assert script.link_flaps > 0
        assert script.link_partitions > 0
        assert script.crash_count == 0
        assert script.has_faults

    def test_zero_link_probabilities_are_byte_compatible(self):
        # The dynamic-link windows sit after the legacy crash/fail
        # windows, so a plan that never exercises them must consume the
        # RNG identically to the pre-dynamic-link generator.
        system = fifo_system(alternating_bit_protocol())
        legacy = generate_script(
            system,
            FaultPlan(messages=10, fail_probability=0.3, seed=123),
            MessageFactory(),
        )
        extended = generate_script(
            system,
            FaultPlan(
                messages=10,
                fail_probability=0.3,
                link_flap_probability=0.0,
                link_partition_probability=0.0,
                seed=123,
            ),
            MessageFactory(),
        )
        assert legacy.actions == extended.actions
        assert extended.link_flaps == extended.link_partitions == 0

    def test_link_mixes_are_registered_fault_mixes(self):
        from repro.conformance import FuzzConfig
        from repro.conformance.harness import FAULT_MIXES, with_mix

        for mix in ("link-flap", "link-partition"):
            assert mix in FAULT_MIXES
        assert with_mix(FuzzConfig(), "link-flap").link_flap_probability > 0
        assert (
            with_mix(FuzzConfig(), "link-partition").link_partition_probability
            > 0
        )


class TestRunner:
    def test_scenario_quiesces(self):
        system = fifo_system(alternating_bit_protocol())
        script = generate_script(system, FaultPlan(messages=5, seed=2))
        result = run_scenario(system, script.actions, seed=2)
        assert result.quiescent
        assert result.steps >= len(script.actions)

    def test_interleaving_differs_across_seeds(self):
        system_a = fifo_system(alternating_bit_protocol())
        system_b = fifo_system(alternating_bit_protocol())
        script = generate_script(system_a, FaultPlan(messages=6, seed=3))
        a = run_scenario(system_a, script.actions, seed=1)
        b = run_scenario(system_b, script.actions, seed=2)
        # Same inputs, different interleavings (almost surely).
        assert a.fragment.actions != b.fragment.actions

    def test_run_batch(self):
        results = run_batch(
            lambda seed: fifo_system(alternating_bit_protocol()),
            lambda system, seed: generate_script(
                system, FaultPlan(messages=3, seed=seed)
            ).actions,
            seeds=range(3),
        )
        assert len(results) == 3
        assert all(r.quiescent for r in results)


class TestMetrics:
    def test_delivery_stats(self, factory):
        system = fifo_system(alternating_bit_protocol())
        messages = factory.fresh_many(5)
        fragment = deliver_all(system, messages)
        stats = delivery_stats(fragment)
        assert stats.sent == 5
        assert stats.delivered == 5
        assert stats.duplicates == 0
        assert stats.delivery_ratio == 1.0
        assert stats.mean_latency > 0
        assert len(stats.latencies) == 5

    def test_channel_stats(self, factory):
        system = fifo_system(alternating_bit_protocol())
        fragment = deliver_all(system, factory.fresh_many(4))
        tr = channel_stats(fragment, "t", "r")
        rt = channel_stats(fragment, "r", "t")
        assert tr.packets_sent >= 4
        assert tr.packets_received >= 4
        assert tr.loss_ratio == 0.0  # perfect channels
        assert tr.distinct_headers == 2  # (DATA,0) and (DATA,1)
        assert rt.distinct_headers == 2  # (ACK,0) and (ACK,1)

    def test_distinct_headers_stenning_grows(self, factory):
        system = fifo_system(stenning_protocol())
        fragment = deliver_all(system, factory.fresh_many(6))
        assert distinct_headers_used(fragment) == 6

    def test_empty_fragment_stats(self):
        from repro.ioa import ExecutionFragment

        stats = delivery_stats(ExecutionFragment.initial(()))
        assert stats.sent == 0 and stats.delivery_ratio == 1.0
        assert stats.mean_latency == 0.0

    def test_delivery_without_send_is_anomalous_not_perfect(self, factory):
        # A fragment sliced after its sends: deliveries with sent == 0
        # must report ratio 0.0 (never "vacuously perfect") and flag
        # the anomaly on the event stream.
        from repro.datalink.actions import receive_msg
        from repro.ioa import ExecutionFragment
        from repro.obs import MemorySink, tracing

        message = factory.fresh()
        fragment = ExecutionFragment(
            states=((), ()), actions=(receive_msg("t", "r", message),)
        )
        with tracing(MemorySink()) as tracer:
            stats = delivery_stats(fragment)
        assert stats.sent == 0 and stats.delivered == 1
        assert stats.delivery_ratio == 0.0
        totals = tracer.snapshot_counters()
        assert totals["sim.anomaly.unsent_delivery"] == 1
