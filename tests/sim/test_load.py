"""Tests for the multi-session load generator and its percentile math."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.sim import percentile, percentile_summary
from repro.sim.load import (
    LoadConfig,
    SessionOutcome,
    LoadResult,
    normalized_report,
    run_load,
    run_session_batch,
    with_load_mix,
)


class TestPercentile:
    def test_nearest_rank_exact_small_sample(self):
        values = [10, 20, 30, 40]
        assert percentile(values, 25) == 10
        assert percentile(values, 50) == 20
        assert percentile(values, 75) == 30
        assert percentile(values, 100) == 40

    def test_exact_ranks_on_1_to_100(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_order_independent(self):
        assert percentile([40, 10, 30, 20], 50) == 20

    def test_empty_sample_reports_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile_summary([]) == {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_single_value_is_every_percentile(self):
        assert percentile([7], 1) == 7
        assert percentile([7], 50) == 7
        assert percentile([7], 99) == 7

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 0)
        with pytest.raises(ValueError):
            percentile([1, 2], 101)

    def test_summary_keys(self):
        summary = percentile_summary(list(range(1, 101)))
        assert summary == {"p50": 50, "p95": 95, "p99": 99}


class TestLoadConfig:
    def test_with_load_mix_applies_overrides(self):
        config = with_load_mix(LoadConfig(), "drop-flood")
        assert config.mix == "drop-flood"
        assert config.loss_rate == 0.5

    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError):
            with_load_mix(LoadConfig(), "nope")


class TestRunLoad:
    def test_unknown_protocol_rejected_eagerly(self):
        with pytest.raises(KeyError):
            run_load("nope", "fifo", 0, LoadConfig(sessions=2))

    def test_sessions_merge_in_index_order(self):
        result = run_load(
            "alternating_bit", "fifo", 3, LoadConfig(sessions=9, messages=2)
        )
        assert [s.index for s in result.sessions] == list(range(9))

    def test_report_counters_and_percentiles(self):
        result = run_load(
            "alternating_bit", "fifo", 3, LoadConfig(sessions=6, messages=2)
        )
        report = result.report()
        assert report.status == "ok"
        assert report.counters["load.sessions"] == 6
        assert report.counters["load.messages_sent"] == 12
        latency = report.details["latency"]
        for key in ("p50", "p95", "p99", "mean", "max"):
            assert key in latency
        ratio = report.details["delivery_ratio"]
        for key in ("p50", "p95", "p99", "min", "mean"):
            assert key in ratio

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_workers_identity_across_seeds(self, seed):
        config = LoadConfig(sessions=10, messages=2)
        serial = run_load(
            "alternating_bit", "nonfifo", seed, config, workers=1
        )
        pooled = run_load(
            "alternating_bit", "nonfifo", seed, config, workers=2
        )
        assert normalized_report(
            serial.report().to_dict()
        ) == normalized_report(pooled.report().to_dict())

    def test_session_failure_is_contained(self, monkeypatch):
        from repro.sim import load as load_module

        original = load_module.Session.from_spec
        calls = {"n": 0}

        def flaky(cls, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("injected session failure")
            return original(*args, **kwargs)

        monkeypatch.setattr(
            load_module.Session, "from_spec", classmethod(flaky)
        )
        result = run_load(
            "alternating_bit", "fifo", 3, LoadConfig(sessions=4, messages=2)
        )
        assert result.failed_sessions == 1
        assert "injected session failure" in result.sessions[1].error
        assert [s.index for s in result.sessions] == [0, 1, 2, 3]
        assert result.report().status == "ok"

    def test_all_sessions_failing_is_an_error(self):
        outcome = SessionOutcome(index=0, error="boom")
        result = LoadResult(
            protocol="alternating_bit",
            channel="fifo",
            seed=0,
            config=LoadConfig(sessions=1),
            sessions=[outcome],
        )
        assert result.report().status == "error"

    def test_empty_run_reports_zero_percentiles(self):
        result = LoadResult(
            protocol="alternating_bit",
            channel="fifo",
            seed=0,
            config=LoadConfig(sessions=0),
            sessions=[],
        )
        report = result.report()
        assert report.status == "ok"
        assert report.details["latency"]["p99"] == 0.0
        assert report.details["delivery_ratio"]["p50"] == 0.0

    def test_batch_budget_times_out_remaining_sessions(self):
        from repro.conformance.harness import SubSeeds
        import random

        master = random.Random(0)
        schedule = [SubSeeds.derive(master) for _ in range(3)]
        ticks = iter([0.0, 0.0, 100.0, 100.0, 100.0, 100.0])
        batch = run_session_batch(
            "alternating_bit",
            "fifo",
            0,
            schedule,
            LoadConfig(sessions=3, messages=1),
            run_timeout=1.0,
            clock=lambda: next(ticks),
        )
        assert batch.outcomes[0].error is None
        assert all(o.timed_out for o in batch.outcomes[1:])


class TestLoadCli:
    def test_load_json_envelope(self, capsys):
        exit_code = main(
            [
                "load",
                "--sessions",
                "8",
                "--steps",
                "2",
                "--seed",
                "5",
                "--json",
            ]
        )
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["command"] == "load"
        assert report["counters"]["load.sessions"] == 8
        assert "p99" in report["details"]["latency"]
        assert "shards" in report["details"]["pool"]

    def test_load_text_rendering(self, capsys):
        exit_code = main(
            ["load", "--sessions", "6", "--steps", "2", "--fault-mix", "clean"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "6 sessions x 2 messages" in out
        assert "latency (steps)" in out
        assert "delivery ratio" in out

    def test_load_trace_counters_merged(self, capsys, tmp_path):
        trace = tmp_path / "load.jsonl"
        exit_code = main(
            [
                "load",
                "--sessions",
                "4",
                "--steps",
                "2",
                "--trace",
                str(trace),
                "--json",
            ]
        )
        assert exit_code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["details"]["artifacts"]["trace"] == str(trace)
        assert report["counters"]["load.sessions"] == 4
        assert trace.exists()

    def test_load_unknown_mix_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["load", "--sessions", "2", "--fault-mix", "nope"])
