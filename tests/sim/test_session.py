"""Tests for the :class:`~repro.sim.session.Session` façade and the
redesigned :meth:`ScenarioResult.report` signature."""

from __future__ import annotations

import warnings

import pytest

from repro.protocols import alternating_bit_protocol
from repro.sim import (
    FaultPlan,
    Session,
    fifo_system,
    generate_script,
    run_scenario,
)


def _session(seed=3, messages=4):
    system = fifo_system(alternating_bit_protocol())
    script = generate_script(system, FaultPlan(messages=messages, seed=seed))
    return Session(system=system, script=tuple(script.actions), seed=seed)


class TestSessionFacade:
    def test_run_quiesces_and_delivers(self):
        result = _session().run()
        assert result.quiescent
        assert result.steps > 0

    def test_run_is_rerunnable_bit_identically(self):
        session = _session()
        first = session.run()
        second = session.run()
        assert first.behavior == second.behavior
        assert first.steps == second.steps

    def test_from_spec_builds_from_master_seed(self):
        session = Session.from_spec("alternating_bit", "fifo", 42)
        result = session.run()
        assert result.quiescent

    def test_from_spec_deterministic_in_seed(self):
        a = Session.from_spec("alternating_bit", "fifo", 42).run()
        b = Session.from_spec("alternating_bit", "fifo", 42).run()
        assert a.behavior == b.behavior
        assert Session.from_spec(
            "alternating_bit", "fifo", 42
        ).script == Session.from_spec("alternating_bit", "fifo", 42).script

    def test_from_spec_distinct_seeds_diverge(self):
        a = Session.from_spec("alternating_bit", "nonfifo", 1).run()
        b = Session.from_spec("alternating_bit", "nonfifo", 2).run()
        assert a.behavior != b.behavior

    def test_run_scenario_is_a_thin_wrapper(self):
        system = fifo_system(alternating_bit_protocol())
        script = generate_script(system, FaultPlan(messages=4, seed=3))
        via_wrapper = run_scenario(system, script.actions, seed=3)
        via_facade = _session().run()
        assert via_wrapper.behavior == via_facade.behavior
        assert via_wrapper.steps == via_facade.steps
        assert via_wrapper.quiescent == via_facade.quiescent


class TestScenarioReportSignature:
    def test_stations_keyword(self):
        result = _session().run()
        report = result.report(0.5, stations=("t", "r"))
        assert report.command == "simulate"
        assert report.duration_s == 0.5
        assert report.counters["sim.steps"] == result.steps

    def test_legacy_keyword_form_warns_and_matches(self):
        result = _session().run()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = result.report(0.5, t="t", r="r")
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        modern = result.report(0.5, stations=("t", "r"))
        assert legacy.to_dict() == modern.to_dict()

    def test_legacy_positional_form_warns_and_matches(self):
        result = _session().run()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = result.report(0.5, "t", "r")
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert legacy.to_dict() == result.report(
            0.5, stations=("t", "r")
        ).to_dict()

    def test_modern_form_does_not_warn(self):
        result = _session().run()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result.report(0.5, stations=("t", "r"))
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_unknown_keyword_rejected(self):
        result = _session().run()
        with pytest.raises(TypeError):
            result.report(0.5, station="t")
