"""Tests for the scheduling strategies."""

from __future__ import annotations


from repro.alphabets import MessageFactory
from repro.datalink import dl_module
from repro.protocols import sliding_window_protocol
from repro.sim import (
    behaviors_under_schedules,
    deterministic_tie_break,
    fifo_system,
    seeded_tie_break,
)


class TestTieBreakers:
    def test_deterministic_picks_first(self):
        from repro.ioa import Action

        actions = [Action("a"), Action("b")]
        assert deterministic_tie_break(actions) == Action("a")

    def test_seeded_is_reproducible(self):
        from repro.ioa import Action

        actions = [Action(f"x{i}") for i in range(10)]
        picks_a = [seeded_tie_break(5)(list(actions)) for _ in range(5)]
        picks_b = [seeded_tie_break(5)(list(actions)) for _ in range(5)]
        # Each call constructs a fresh rng stream with the same seed.
        assert picks_a == picks_b


class TestScheduleExploration:
    def test_every_schedule_correct(self):
        """ABP satisfies DL under many fair schedules, not just one."""
        system = fifo_system(sliding_window_protocol(3))
        factory = MessageFactory()
        state = system.run_inputs(
            system.initial_state(),
            [system.wake_t(), system.wake_r()]
            + [system.send(m) for m in factory.fresh_many(5)],
        ).final_state
        module = dl_module("t", "r")
        for behavior in behaviors_under_schedules(
            system.automaton, state, seeds=range(8)
        ):
            # The inputs happened before this fragment; reattach them
            # for the module check.
            full = tuple(
                a
                for a in system.run_inputs(
                    system.initial_state(),
                    [system.wake_t(), system.wake_r()],
                ).actions
            )
            # Simpler: check no duplicates/unsent among deliveries.
            delivered = [a.payload for a in behavior]
            assert len(delivered) == len(set(delivered))

    def test_schedules_can_differ(self):
        system = fifo_system(sliding_window_protocol(4))
        factory = MessageFactory()
        state = system.run_inputs(
            system.initial_state(),
            [system.wake_t(), system.wake_r()]
            + [system.send(m) for m in factory.fresh_many(4)],
        ).final_state
        from repro.ioa import run_to_quiescence

        runs = {
            run_to_quiescence(
                system.automaton,
                state,
                tie_break=seeded_tie_break(seed),
            ).actions
            for seed in range(6)
        }
        assert len(runs) > 1  # genuinely different interleavings
