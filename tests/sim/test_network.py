"""Tests for the composed data-link systems (D-hat', D-bar')."""

from __future__ import annotations

import pytest

from repro.alphabets import MessageFactory
from repro.channels import (
    PermissiveChannel,
    PermissiveFifoChannel,
    receive_pkt,
    send_pkt,
)
from repro.protocols import alternating_bit_protocol
from repro.sim import custom_system, fifo_system, permissive_system


@pytest.fixture
def system():
    return fifo_system(alternating_bit_protocol())


class TestConstruction:
    def test_fifo_system_uses_fifo_channels(self, system):
        assert isinstance(system.channel_tr, PermissiveFifoChannel)
        assert isinstance(system.channel_rt, PermissiveFifoChannel)

    def test_permissive_system_uses_cbar(self):
        system = permissive_system(alternating_bit_protocol())
        assert type(system.channel_tr) is PermissiveChannel

    def test_custom_system(self):
        system = custom_system(
            alternating_bit_protocol(),
            PermissiveChannel("t", "r"),
            PermissiveChannel("r", "t"),
        )
        assert system.t == "t" and system.r == "r"

    def test_packet_actions_hidden(self, system):
        from repro.alphabets import Packet

        sig = system.automaton.signature
        assert sig.is_internal(send_pkt("t", "r", Packet("x")))
        assert sig.is_internal(receive_pkt("t", "r", Packet("x")))
        assert sig.is_input(system.send(MessageFactory().fresh()))
        assert sig.is_output(system.receive(MessageFactory().fresh()))

    def test_external_signature_is_dl_signature(self, system):
        from repro.datalink import data_link_signature

        expected = data_link_signature("t", "r")
        actual = system.automaton.signature
        assert actual.inputs == expected.inputs
        assert actual.outputs == expected.outputs


class TestStateAccess:
    def test_host_and_channel_views(self, system):
        state = system.initial_state()
        assert system.host_state(state, "t").core.queue == ()
        assert system.channel_state(state, "t").counter1 == 0
        assert system.channel_state(state, "r").counter1 == 0

    def test_with_channel_state(self, system):
        state = system.initial_state()
        channel_state = system.channel_state(state, "t")
        patched = system.with_channel_state(state, "t", channel_state)
        assert patched == state

    def test_clean_channels(self, system, factory):
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[
                system.wake_t(),
                system.wake_r(),
                system.send(factory.fresh()),
            ],
        )
        cleaned = system.clean_channels(fragment.final_state)
        assert system.channels_clean(cleaned)


class TestDriving:
    def test_run_fair_delivers(self, system, factory):
        message = factory.fresh()
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[
                system.wake_t(),
                system.wake_r(),
                system.send(message),
            ],
        )
        behavior = system.behavior(fragment)
        assert behavior[-1] == system.receive(message)

    def test_stop_when(self, system, factory):
        message = factory.fresh()
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[
                system.wake_t(),
                system.wake_r(),
                system.send(message),
            ],
            stop_when=lambda a: a.name == "receive_msg",
        )
        assert fragment.actions[-1].name == "receive_msg"

    def test_set_waiting_then_deliver(self, system, factory):
        # Send a message, then use surgery to keep only the data packet.
        message = factory.fresh()
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[
                system.wake_t(),
                system.wake_r(),
                system.send(message),
            ],
            stop_when=lambda a: a.name == "send_pkt",
        )
        state = system.set_waiting(fragment.final_state, "t", [1])
        waiting = system.channel_state(state, "t").waiting_sequence()
        assert len(waiting) == 1
        assert waiting[0].body == (message,)
