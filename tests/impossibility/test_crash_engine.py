"""Tests for the Theorem 7.5 crash-impossibility engine."""

from __future__ import annotations

import pytest

from repro.datalink import dl3, dl_well_formed, wdl_module
from repro.impossibility import (
    DUPLICATE_DELIVERY,
    LIVENESS,
    UNSENT_DELIVERY,
    EngineError,
    refute_crash_tolerance,
)
from repro.protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    eager_protocol,
    fragmenting_protocol,
    modulo_stenning_protocol,
    selective_repeat_protocol,
    sliding_window_protocol,
    stenning_protocol,
)

ALL_CRASHING = [
    ("abp", alternating_bit_protocol),
    ("sw1", lambda: sliding_window_protocol(1)),
    ("sw2", lambda: sliding_window_protocol(2)),
    ("sw4", lambda: sliding_window_protocol(4)),
    ("sw8", lambda: sliding_window_protocol(8)),
    ("stenning", stenning_protocol),
    ("mod-stenning4", lambda: modulo_stenning_protocol(4)),
    ("bs-volatile", lambda: baratz_segall_protocol(nonvolatile=False)),
    ("eager", eager_protocol),
    ("selective-repeat-2", lambda: selective_repeat_protocol(2)),
    ("fragmenting", lambda: fragmenting_protocol(chunk=1, max_fragments=2)),
]


class TestTheorem75:
    """Every crashing, message-independent protocol is defeated."""

    @pytest.mark.parametrize(
        "name,factory", ALL_CRASHING, ids=[n for n, _ in ALL_CRASHING]
    )
    def test_certificate_found_and_validates(self, name, factory):
        certificate = refute_crash_tolerance(factory())
        assert certificate.theorem == "theorem-7.5"
        assert certificate.validate()
        assert certificate.kind in (
            LIVENESS,
            DUPLICATE_DELIVERY,
            UNSENT_DELIVERY,
        )

    @pytest.mark.parametrize(
        "name,factory", ALL_CRASHING, ids=[n for n, _ in ALL_CRASHING]
    )
    def test_certificate_behavior_meets_assumptions(self, name, factory):
        """The violation must not be vacuous: the environment behaved."""
        certificate = refute_crash_tolerance(factory())
        verdict = wdl_module("t", "r").check(certificate.behavior)
        assert not verdict.vacuous
        assert not verdict.in_module
        assert dl_well_formed(certificate.behavior, "t", "r").holds
        assert dl3(certificate.behavior, "t", "r").holds

    def test_reported_violations_rederivable(self):
        certificate = refute_crash_tolerance(alternating_bit_protocol())
        assert set(certificate.violated) <= set(
            certificate.violated_properties()
        )

    def test_abp_loses_a_message(self):
        """For ABP the crash desynchronizes the alternating bit and the
        fresh message is silently dropped: a (DL8) violation."""
        certificate = refute_crash_tolerance(alternating_bit_protocol())
        assert certificate.kind == LIVENESS
        assert certificate.violated == ("DL8",)

    def test_eager_protocol_duplicates(self):
        """A non-deduplicating receiver exercises the Lemma 7.1 branch:
        the replayed extension delivers a duplicate."""
        certificate = refute_crash_tolerance(eager_protocol())
        assert certificate.kind in (DUPLICATE_DELIVERY, UNSENT_DELIVERY)

    def test_narrative_mentions_lemmas(self):
        certificate = refute_crash_tolerance(alternating_bit_protocol())
        text = "\n".join(certificate.narrative)
        assert "Lemma 7.3" in text or "alternation chain" in text
        assert "Lemma 7.4" in text

    def test_stats_recorded(self):
        certificate = refute_crash_tolerance(alternating_bit_protocol())
        assert certificate.stats["pump_levels"] >= 2
        assert certificate.stats["alpha_steps"] >= 4


class TestHypothesisBoundary:
    """Protocols outside the theorem's hypotheses are not defeated."""

    def test_nonvolatile_protocol_rejected(self):
        with pytest.raises(EngineError, match="not crashing"):
            refute_crash_tolerance(
                baratz_segall_protocol(nonvolatile=True)
            )


class TestDeterminism:
    def test_engine_is_deterministic(self):
        a = refute_crash_tolerance(alternating_bit_protocol())
        b = refute_crash_tolerance(alternating_bit_protocol())
        assert a.behavior == b.behavior
        assert a.kind == b.kind
