"""Tests for the Theorem 8.5 bounded-header engine."""

from __future__ import annotations

import pytest

from repro.datalink import dl3, dl_well_formed, wdl_module
from repro.impossibility import (
    DUPLICATE_DELIVERY,
    UNSENT_DELIVERY,
    EngineError,
    refute_bounded_headers,
)
from repro.protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    modulo_stenning_protocol,
    selective_repeat_protocol,
    sliding_window_protocol,
    stenning_protocol,
)

BOUNDED_HEADER_VICTIMS = [
    ("abp", alternating_bit_protocol),
    ("sw1", lambda: sliding_window_protocol(1)),
    ("sw2", lambda: sliding_window_protocol(2)),
    ("sw4", lambda: sliding_window_protocol(4)),
    ("mod-stenning2", lambda: modulo_stenning_protocol(2)),
    ("mod-stenning4", lambda: modulo_stenning_protocol(4)),
    ("mod-stenning8", lambda: modulo_stenning_protocol(8)),
    ("selective-repeat-2", lambda: selective_repeat_protocol(2)),
]


class TestTheorem85:
    @pytest.mark.parametrize(
        "name,factory",
        BOUNDED_HEADER_VICTIMS,
        ids=[n for n, _ in BOUNDED_HEADER_VICTIMS],
    )
    def test_certificate_found_and_validates(self, name, factory):
        certificate = refute_bounded_headers(factory())
        assert certificate.theorem == "theorem-8.5"
        assert certificate.validate()
        assert certificate.kind in (DUPLICATE_DELIVERY, UNSENT_DELIVERY)

    @pytest.mark.parametrize(
        "name,factory",
        BOUNDED_HEADER_VICTIMS,
        ids=[n for n, _ in BOUNDED_HEADER_VICTIMS],
    )
    def test_violation_not_vacuous(self, name, factory):
        certificate = refute_bounded_headers(factory())
        verdict = wdl_module("t", "r").check(certificate.behavior)
        assert not verdict.vacuous and not verdict.in_module
        assert dl_well_formed(certificate.behavior, "t", "r").holds
        assert dl3(certificate.behavior, "t", "r").holds

    def test_no_crash_or_fail_used(self):
        """Section 8's construction uses no fail/crash events at all."""
        certificate = refute_bounded_headers(alternating_bit_protocol())
        assert all(
            a.name not in ("fail", "crash")
            for a in certificate.behavior
        )

    def test_pump_rounds_grow_with_header_count(self):
        """The T-chain bound is k * |headers|: more headers, more rounds."""
        rounds = {}
        for modulus in (2, 4, 8):
            certificate = refute_bounded_headers(
                modulo_stenning_protocol(modulus)
            )
            rounds[modulus] = certificate.stats["pump_rounds"]
        assert rounds[2] < rounds[4] < rounds[8]

    def test_stats_and_narrative(self):
        certificate = refute_bounded_headers(alternating_bit_protocol())
        assert certificate.stats["transit_packets"] >= 1
        assert certificate.stats["k"] >= 1
        assert any(
            "Theorem 8.5" in line for line in certificate.narrative
        )


class TestHypothesisBoundary:
    def test_stenning_rejected_up_front(self):
        """Unbounded headers escape the theorem -- and the engine."""
        with pytest.raises(EngineError, match="bounded"):
            refute_bounded_headers(stenning_protocol())

    def test_baratz_segall_rejected_up_front(self):
        # Unbounded incarnation/sequence headers.
        with pytest.raises(EngineError, match="bounded"):
            refute_bounded_headers(baratz_segall_protocol())

    def test_declared_k_too_small_detected(self):
        with pytest.raises(EngineError, match="exceeding the declared"):
            refute_bounded_headers(sliding_window_protocol(4), k=0)


class TestDeterminism:
    def test_engine_is_deterministic(self):
        a = refute_bounded_headers(alternating_bit_protocol())
        b = refute_bounded_headers(alternating_bit_protocol())
        assert a.behavior == b.behavior
        assert a.stats == b.stats
