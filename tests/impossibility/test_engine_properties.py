"""Property-based sweeps of the impossibility engines.

Both engines must succeed -- and their certificates must validate --
for *every* member of the parameterized protocol families inside their
hypothesis classes.  Hypothesis chooses the parameters.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.impossibility import (
    refute_bounded_headers,
    refute_crash_tolerance,
)
from repro.protocols import (
    fragmenting_protocol,
    modulo_stenning_protocol,
    selective_repeat_protocol,
    sliding_window_protocol,
)


class TestCrashEngineSweep:
    @given(window=st.integers(1, 6), slack=st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_every_go_back_n_falls(self, window, slack):
        protocol = sliding_window_protocol(window, window + 1 + slack)
        certificate = refute_crash_tolerance(protocol)
        assert certificate.validate()

    @given(window=st.integers(1, 4))
    @settings(max_examples=6, deadline=None)
    def test_every_selective_repeat_falls(self, window):
        certificate = refute_crash_tolerance(
            selective_repeat_protocol(window)
        )
        assert certificate.validate()

    @given(modulus=st.integers(2, 12))
    @settings(max_examples=8, deadline=None)
    def test_every_modulo_stenning_falls(self, modulus):
        certificate = refute_crash_tolerance(
            modulo_stenning_protocol(modulus)
        )
        assert certificate.validate()

    @given(chunk=st.integers(1, 3), size=st.integers(0, 4))
    @settings(max_examples=8, deadline=None)
    def test_every_fragmenting_size_class_falls(self, chunk, size):
        certificate = refute_crash_tolerance(
            fragmenting_protocol(chunk=chunk, max_fragments=3),
            message_size=size,
        )
        assert certificate.validate()


class TestHeaderEngineSweep:
    @given(modulus=st.integers(2, 12))
    @settings(max_examples=8, deadline=None)
    def test_every_modulo_stenning_falls(self, modulus):
        certificate = refute_bounded_headers(
            modulo_stenning_protocol(modulus)
        )
        assert certificate.validate()
        # Lemma 8.4's chain bound holds for every modulus.
        assert (
            certificate.stats["pump_rounds"]
            <= certificate.stats["k"] * 4 * modulus
        )

    @given(window=st.integers(1, 4), slack=st.integers(0, 2))
    @settings(max_examples=8, deadline=None)
    def test_every_go_back_n_falls(self, window, slack):
        certificate = refute_bounded_headers(
            sliding_window_protocol(window, window + 1 + slack)
        )
        assert certificate.validate()

    @given(window=st.integers(1, 3))
    @settings(max_examples=5, deadline=None)
    def test_every_selective_repeat_falls(self, window):
        certificate = refute_bounded_headers(
            selective_repeat_protocol(window)
        )
        assert certificate.validate()
