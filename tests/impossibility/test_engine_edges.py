"""Edge paths of the impossibility engines.

The engines must fail *informatively* on protocols violating the
hypotheses they cannot verify up front: protocols that never quiesce,
never deliver, or sneak message-dependence past the empirical checker.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Tuple

import pytest

from repro.alphabets import Message, Packet
from repro.datalink import DataLinkProtocol, TransmitterLogic
from repro.impossibility import (
    LIVENESS,
    EngineError,
    refute_bounded_headers,
    refute_crash_tolerance,
)
from repro.protocols.naive import DirectReceiver, _WakeMixin


@dataclass(frozen=True)
class _Core:
    queue: Tuple[Message, ...] = ()
    awake: bool = False


class MuteTransmitter(_WakeMixin, TransmitterLogic):
    """Accepts messages and never sends a single packet."""

    def initial_core(self):
        return _Core()

    def on_send_msg(self, core, message):
        return replace(core, queue=core.queue + (message,))

    def on_packet(self, core, packet):
        return core

    def enabled_sends(self, core) -> Iterable[Packet]:
        return ()

    def after_send(self, core, packet):
        return core

    def header_space(self):
        return frozenset()


class BabblingTransmitter(MuteTransmitter):
    """Sends a heartbeat forever: the composition never quiesces."""

    def enabled_sends(self, core) -> Iterable[Packet]:
        if core.awake:
            yield Packet("HEARTBEAT")

    def header_space(self):
        return frozenset({"HEARTBEAT"})


def mute_protocol() -> DataLinkProtocol:
    return DataLinkProtocol(
        name="mute",
        transmitter_factory=MuteTransmitter,
        receiver_factory=DirectReceiver,
        description="never transmits anything",
    )


def babbling_protocol() -> DataLinkProtocol:
    return DataLinkProtocol(
        name="babbling",
        transmitter_factory=BabblingTransmitter,
        receiver_factory=DirectReceiver,
        description="transmits heartbeats forever",
    )


class TestCrashEngineEdges:
    def test_mute_protocol_yields_liveness_certificate(self):
        """A protocol that cannot deliver even over ideal channels is
        refuted at the reference-execution phase."""
        certificate = refute_crash_tolerance(mute_protocol())
        assert certificate.kind == LIVENESS
        assert certificate.validate()
        # No pumping was needed.
        assert "pump_levels" not in certificate.stats

    def test_babbling_protocol_rejected_informatively(self):
        with pytest.raises(EngineError, match="does not quiesce"):
            refute_crash_tolerance(babbling_protocol(), max_steps=5_000)


class TestHeaderEngineEdges:
    def test_mute_protocol_rejected(self):
        """The probe cannot find any delivery: the protocol is not
        k-bounded for any k (and not weakly correct)."""
        with pytest.raises(EngineError, match="DL8|k-bounded"):
            refute_bounded_headers(mute_protocol(), max_steps=5_000)

    def test_babbling_protocol_rejected(self):
        with pytest.raises(EngineError):
            refute_bounded_headers(babbling_protocol(), max_steps=5_000)
