"""Tests for violation certificates and their independent validation."""

from __future__ import annotations


from repro.alphabets import Message
from repro.channels import wake
from repro.datalink import receive_msg, send_msg
from repro.impossibility import (
    DUPLICATE_DELIVERY,
    LIVENESS,
    UNSENT_DELIVERY,
    ViolationCertificate,
)

T, R = "t", "r"
M1, M2 = Message(1), Message(2)


def make_certificate(behavior, kind=DUPLICATE_DELIVERY, violated=("DL4",)):
    return ViolationCertificate(
        protocol_name="test-protocol",
        theorem="theorem-7.5",
        kind=kind,
        behavior=tuple(behavior),
        violated=violated,
        narrative=("step one", "step two"),
        stats={"x": 1},
    )


class TestValidation:
    def test_duplicate_delivery_validates(self):
        behavior = [
            wake(T, R),
            wake(R, T),
            send_msg(T, R, M1),
            receive_msg(T, R, M1),
            receive_msg(T, R, M1),
        ]
        assert make_certificate(behavior).validate()

    def test_unsent_delivery_validates(self):
        behavior = [
            wake(T, R),
            wake(R, T),
            receive_msg(T, R, M2),
        ]
        certificate = make_certificate(
            behavior, UNSENT_DELIVERY, ("DL5",)
        )
        assert certificate.validate()

    def test_liveness_validates(self):
        behavior = [wake(T, R), wake(R, T), send_msg(T, R, M1)]
        assert make_certificate(behavior, LIVENESS, ("DL8",)).validate()

    def test_clean_behavior_does_not_validate(self):
        behavior = [
            wake(T, R),
            wake(R, T),
            send_msg(T, R, M1),
            receive_msg(T, R, M1),
        ]
        assert not make_certificate(behavior).validate()

    def test_vacuous_violation_does_not_validate(self):
        # Assumptions broken (send outside working interval): the
        # "violation" proves nothing about the protocol.
        behavior = [
            send_msg(T, R, M1),
            receive_msg(T, R, M1),
            receive_msg(T, R, M1),
        ]
        assert not make_certificate(behavior).validate()

    def test_violated_properties_rederived(self):
        behavior = [
            wake(T, R),
            wake(R, T),
            send_msg(T, R, M1),
            receive_msg(T, R, M1),
            receive_msg(T, R, M1),
        ]
        assert "DL4" in make_certificate(behavior).violated_properties()


class TestDescribe:
    def test_describe_mentions_everything(self):
        behavior = [wake(T, R), wake(R, T), send_msg(T, R, M1)]
        text = make_certificate(behavior, LIVENESS, ("DL8",)).describe()
        assert "theorem-7.5" in text
        assert "test-protocol" in text
        assert "DL8" in text
        assert "step one" in text
        assert "x=1" in text
