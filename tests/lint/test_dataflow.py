"""Unit tests for the abstract-interpretation engine itself."""

from __future__ import annotations

import pytest

from repro.lint.claims import ClaimError, crash_report, parse_claims
from repro.lint.dataflow import (
    Interval,
    Record,
    StrSet,
    TOP,
    TupleVal,
    analyze_station,
    join,
    taint_of,
    value_of_concrete,
    widen,
)
from repro.lint.intervals import header_report, site_covered
from repro.lint.source import build_source_audits


# ----------------------------------------------------------------------
# Value lattice
# ----------------------------------------------------------------------


def test_interval_join_and_widen():
    a = Interval(frozenset(), 0, 3)
    b = Interval(frozenset(), 2, 5)
    joined = join(a, b)
    assert (joined.lo, joined.hi) == (0, 5)
    # Widening jumps moving bounds to infinity instead of crawling.
    widened = widen(a, join(a, Interval(frozenset(), 0, 9)))
    assert widened.hi == float("inf")
    assert widened.lo == 0


def test_join_mismatched_kinds_is_top():
    joined = join(
        Interval(frozenset(), 0, 1),
        StrSet(frozenset(), frozenset({"A"})),
    )
    assert joined == TOP


def test_taint_is_preserved_through_join():
    dirty = Interval(frozenset({("msg", "f.py", 3, "ident")}), 0, 1)
    clean = Interval(frozenset(), 5, 5)
    assert taint_of(join(dirty, clean)) == dirty.taint


def test_value_of_concrete_tuples_and_strings():
    value = value_of_concrete(("DATA", 3))
    assert isinstance(value, TupleVal)
    tag, seq = (item for item in value.items)
    assert isinstance(tag, StrSet) and tag.values == frozenset({"DATA"})
    assert isinstance(seq, Interval) and (seq.lo, seq.hi) == (3, 3)


# ----------------------------------------------------------------------
# Header coverage
# ----------------------------------------------------------------------


def test_site_covered_per_position_projection():
    space = frozenset({("DATA", 0), ("DATA", 1), ("ACK", 0), ("ACK", 1)})
    inside = TupleVal(
        frozenset(),
        (
            StrSet(frozenset(), frozenset({"DATA", "ACK"})),
            Interval(frozenset(), 0, 1),
        ),
    )
    assert site_covered(inside, space)
    escaping = TupleVal(
        frozenset(),
        (
            StrSet(frozenset(), frozenset({"DATA"})),
            Interval(frozenset(), 0, float("inf")),
        ),
    )
    assert not site_covered(escaping, space)


def test_site_covered_scalar_atoms():
    space = frozenset({"DATA", "ACK"})
    assert site_covered(StrSet(frozenset(), frozenset({"DATA"})), space)
    assert not site_covered(TOP, space)


# ----------------------------------------------------------------------
# Whole-station analysis on real protocols
# ----------------------------------------------------------------------


def _station(protocol, station="transmitter"):
    audits = build_source_audits(protocol)
    return next(a for a in audits if a.station == station)


def test_abp_header_sites_are_bounded():
    from repro.protocols import alternating_bit_protocol

    audit = _station(alternating_bit_protocol())
    report = header_report(audit)
    assert report.error is None
    assert report.declared and report.proven
    assert report.sites  # the analysis actually saw Packet sites


def test_stenning_counter_escapes():
    from repro.protocols import modulo_stenning_protocol, stenning_protocol

    # Plain Stenning declares an unbounded space: nothing to prove.
    unbounded = header_report(_station(stenning_protocol()))
    assert not unbounded.declared
    # Modulo-Stenning's outer ``% N`` reduction is provable.
    bounded = header_report(_station(modulo_stenning_protocol(4)))
    assert bounded.declared and bounded.proven


def test_analysis_is_cached_per_audit():
    from repro.protocols import alternating_bit_protocol

    audit = _station(alternating_bit_protocol())
    assert analyze_station(audit) is analyze_station(audit)


def test_crash_report_resolves_mode_flags():
    from repro.protocols import baratz_segall_protocol

    survivor = _station(baratz_segall_protocol(nonvolatile=True))
    report = crash_report(survivor)
    assert report.survivors, "nonvolatile BS must keep state"
    volatile = _station(baratz_segall_protocol(nonvolatile=False))
    report = crash_report(volatile)
    assert report.crashing, "volatile BS must lose everything"


# ----------------------------------------------------------------------
# Claims parsing
# ----------------------------------------------------------------------


def test_parse_claims_accepts_the_documented_shape():
    claims = parse_claims(
        {
            "message_independent": True,
            "bounded_headers": True,
            "crashing": True,
            "k_bounded": 1,
            "weakly_correct_over": ("fifo",),
            "tolerates_crashes": False,
        }
    )
    assert claims.k_bounded == 1
    assert claims.weakly_correct_over == ("fifo",)
    assert parse_claims(None) is None


@pytest.mark.parametrize(
    "raw",
    [
        "not a dict",
        {"unknown_key": True},
        {"message_independent": "yes"},
        {"k_bounded": 0},
        {"weakly_correct_over": ("carrier-pigeon",)},
        {"tolerates_crashes": 1},
    ],
)
def test_parse_claims_rejects_malformed(raw):
    with pytest.raises(ClaimError):
        parse_claims(raw)
