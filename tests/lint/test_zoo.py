"""The real protocol zoo lints clean, and reports are schema-stable."""

from __future__ import annotations

from repro.lint import (
    REPORT_VERSION,
    RULES,
    Diagnostic,
    LintReport,
    lint_targets,
    zoo_targets,
)


def test_zoo_is_clean():
    targets = zoo_targets()
    assert len(targets) >= 5
    report = lint_targets(targets)
    assert report.ok, report.render_text()
    assert report.targets == [target.name for target in targets]


def make_diagnostic(code="REP103", severity="error"):
    return Diagnostic(
        code=code,
        severity=severity,
        target="toy",
        message="example finding",
        file="src/example.py",
        line=7,
        paper="§2.2",
    )


class TestReportShape:
    def test_to_dict_schema(self):
        report = LintReport(
            diagnostics=(make_diagnostic(),), targets=("toy",)
        )
        payload = report.to_dict()
        assert payload["version"] == REPORT_VERSION
        assert payload["tool"] == "repro-lint"
        assert payload["targets"] == ["toy"]
        (finding,) = payload["findings"]
        assert finding == {
            "code": "REP103",
            "severity": "error",
            "target": "toy",
            "message": "example finding",
            "file": "src/example.py",
            "line": 7,
            "paper": "§2.2",
        }
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["by_code"] == {"REP103": 1}
        assert payload["summary"]["by_severity"] == {"error": 1}

    def test_select_filters_by_prefix(self):
        report = LintReport(
            diagnostics=(
                make_diagnostic("REP101"),
                make_diagnostic("REP203"),
            ),
            targets=("toy",),
        )
        semantic = report.select(["REP1"])
        assert [d.code for d in semantic.diagnostics] == ["REP101"]
        both = report.select(["REP101", "REP203"])
        assert len(both.diagnostics) == 2

    def test_render_text_mentions_summary(self):
        empty = LintReport(diagnostics=(), targets=("a", "b"))
        assert "all clean" in empty.render_text()
        dirty = LintReport(
            diagnostics=(make_diagnostic(),), targets=("toy",)
        )
        assert "REP103" in dirty.render_text()
        assert not dirty.ok


def test_registry_is_complete():
    codes = sorted(RULES)
    assert codes == [
        "REP101",
        "REP102",
        "REP103",
        "REP104",
        "REP105",
        "REP106",
        "REP201",
        "REP202",
        "REP203",
        "REP301",
        "REP302",
        "REP303",
        "REP304",
    ]
    for rule in RULES.values():
        assert rule.paper.startswith("§")
        assert rule.severity in ("error", "warning", "info")
        assert rule.family in ("build", "semantic", "source", "deep")
