"""Every mutant in the zoo triggers exactly its one expected code."""

from __future__ import annotations

import importlib

import pytest

from repro.lint import RULES, lint_targets, target_from

from .fixtures import MUTANTS


def lint_module(module_name: str):
    module = importlib.import_module(
        f"tests.lint.fixtures.{module_name}"
    )
    environment = getattr(module, "ENVIRONMENT", None)
    targets = [
        target_from(obj, environment=environment)
        for obj in module.LINT_TARGETS
    ]
    # Deep analysis is always on here: the REP3xx mutants need it, and
    # the REP1xx/REP2xx mutants must stay single-code even under it.
    return module, lint_targets(targets, deep=True)


@pytest.mark.parametrize("module_name", sorted(MUTANTS))
def test_mutant_triggers_exactly_its_code(module_name):
    module, report = lint_module(module_name)
    expected = MUTANTS[module_name]
    assert module.EXPECTED_CODE == expected
    codes = {diagnostic.code for diagnostic in report.diagnostics}
    assert codes == {expected}, report.render_text()


@pytest.mark.parametrize("module_name", sorted(MUTANTS))
def test_mutant_diagnostics_are_well_formed(module_name):
    _, report = lint_module(module_name)
    for diagnostic in report.diagnostics:
        rule = RULES[diagnostic.code]
        assert diagnostic.severity == rule.severity
        assert diagnostic.paper == rule.paper
        # Locations point into the fixture module, not the framework.
        assert "tests/lint/fixtures" in diagnostic.file
        assert diagnostic.line > 0
        assert diagnostic.code in diagnostic.render()


def test_every_code_has_a_mutant():
    assert set(MUTANTS.values()) == set(RULES)


def test_mutant_reports_fail_the_lint():
    for module_name in MUTANTS:
        _, report = lint_module(module_name)
        assert not report.ok
