"""The deep analyses pin the zoo to its §8 taxonomy classification.

The paper's impossibility results hinge on three protocol properties:
message independence (§5.3.1), bounded headers (§8), and crashing
(§5.3.2).  These tests assert that the interprocedural analyses infer
exactly the classification each zoo protocol was written to have --
and that the REP304 contradiction gate finds the zoo's declared claims
consistent with theory, inference, and recorded fuzz evidence.
"""

from __future__ import annotations

import pytest

from repro.conformance import (
    EvidenceRecord,
    FuzzConfig,
    append_evidence,
    evidence_from_campaign,
    fuzz_campaign,
    load_evidence,
)
from repro.lint import lint_targets, zoo_targets

#: target -> (message_independent, bounded_headers proven, crashing),
#: the §8 taxonomy cell each protocol was designed to occupy.
EXPECTED_MATRIX = {
    "abp": (True, True, True),
    "baratz-segall": (True, False, False),
    "baratz-segall-volatile": (True, False, True),
    "fragmenting": (True, True, True),
    "mod-stenning": (True, True, True),
    "naive-direct": (True, True, True),
    "naive-eager": (True, True, True),
    "selective-repeat": (True, True, True),
    "sliding-window": (True, True, True),
    "stenning": (True, False, True),
}


@pytest.fixture(scope="module")
def zoo_report():
    return lint_targets(zoo_targets(), deep=True)


def test_zoo_is_deep_clean(zoo_report):
    assert zoo_report.ok, zoo_report.render_text()


def test_zoo_matrix_matches_taxonomy(zoo_report):
    verdicts = {v["target"]: v for v in zoo_report.verdicts}
    assert set(verdicts) == set(EXPECTED_MATRIX)
    for target, (mi, bounded, crashing) in EXPECTED_MATRIX.items():
        inferred = verdicts[target]["inferred"]
        assert inferred["message_independent"] is mi, target
        assert inferred["bounded_headers"] is bounded, target
        assert inferred["crashing"] is crashing, target


def test_zoo_claims_are_declared_and_consistent(zoo_report):
    # Every zoo protocol declares claims, and REP304 found no
    # static-vs-declared contradiction anywhere (zoo_report.ok already
    # covers it; this pins the claims' presence explicitly).
    for verdict in zoo_report.verdicts:
        assert verdict["claims"] is not None, verdict["target"]
    assert not [
        d for d in zoo_report.diagnostics if d.code == "REP304"
    ]


def test_bounded_verdicts_are_per_station(zoo_report):
    verdicts = {v["target"]: v for v in zoo_report.verdicts}
    stenning = verdicts["stenning"]["stations"]
    # Stenning's transmitter declares an unbounded space; nothing to
    # prove, so the protocol-level bounded verdict is False.
    assert any(not s["bounded_headers_declared"] for s in stenning)
    abp = verdicts["abp"]["stations"]
    assert all(s["bounded_headers_proven"] for s in abp)


def test_stable_fields_only_for_resilient_stations(zoo_report):
    verdicts = {v["target"]: v for v in zoo_report.verdicts}
    for station in verdicts["baratz-segall"]["stations"]:
        # Non-volatile Baratz-Segall keeps its incarnation counter.
        assert not station["crashing"]
    for station in verdicts["baratz-segall-volatile"]["stations"]:
        assert station["crashing"]
        assert station["stable_fields"] == []


# ----------------------------------------------------------------------
# Runtime evidence round-trip into the contradiction gate
# ----------------------------------------------------------------------


def _tiny_config():
    return FuzzConfig(
        runs=2,
        messages=2,
        max_steps=4_000,
        shrink=False,
        fail_probability=0.0,
        receiver_fail_probability=0.0,
    )


@pytest.fixture(scope="module")
def recorded_evidence(tmp_path_factory):
    path = tmp_path_factory.mktemp("evidence") / "evidence.jsonl"
    records = [
        # naive-eager duplicates under retransmission -> violations;
        # it claims correctness over nothing, so no contradiction.
        evidence_from_campaign(
            fuzz_campaign("naive", "fifo", 7, _tiny_config()),
            mix="default",
        ),
        # abp holds over FIFO: a clean record proves nothing and must
        # never count as positive evidence.
        evidence_from_campaign(
            fuzz_campaign("alternating_bit", "fifo", 7, _tiny_config()),
            mix="default",
        ),
    ]
    append_evidence(str(path), records)
    return path, records


def test_evidence_roundtrip(recorded_evidence):
    path, records = recorded_evidence
    loaded = load_evidence(str(path))
    assert loaded == records
    naive, abp = records
    assert naive.protocol == "naive-eager"
    assert naive.channel == "fifo"
    assert naive.violations > 0
    assert abp.protocol == "alternating-bit"
    assert abp.violations == 0


def test_zoo_gate_accepts_recorded_evidence(recorded_evidence):
    path, _ = recorded_evidence
    report = lint_targets(
        zoo_targets(), deep=True, evidence=load_evidence(str(path))
    )
    assert report.ok, report.render_text()


def test_gate_rejects_refuting_evidence():
    # A forged crash-free violation over a claimed channel class is a
    # definitive refutation and must fire REP304.
    forged = EvidenceRecord(
        protocol="alternating-bit",
        registry_name="alternating_bit",
        channel="fifo",
        mix="default",
        crashes=False,
        seed=99,
        runs=5,
        violations=1,
        violated_oracles=("DL4",),
    )
    targets = [t for t in zoo_targets() if t.name == "abp"]
    report = lint_targets(targets, deep=True, evidence=[forged])
    assert [d.code for d in report.diagnostics] == ["REP304"]
    assert "refuted by runtime evidence" in report.diagnostics[0].message


def _arbitrary_record(violations=1):
    return EvidenceRecord(
        protocol="alternating-bit",
        registry_name="alternating_bit",
        channel="fifo",
        mix="default",
        crashes=False,
        seed=5,
        runs=4,
        violations=violations,
        violated_oracles=("SSTAB2",) if violations else (),
        init_mode="arbitrary",
    )


def test_arbitrary_evidence_never_refutes_weak_correctness():
    # abp claims weak correctness over FIFO, and a corrupted-start
    # campaign legitimately convicts it under SSTAB2 -- but that run
    # says nothing about clean-start weak correctness, so REP304 must
    # stay silent (abp also declares self_stabilizing=False, which a
    # violation trivially confirms).
    targets = [t for t in zoo_targets() if t.name == "abp"]
    report = lint_targets(
        targets, deep=True, evidence=[_arbitrary_record()]
    )
    assert report.ok, report.render_text()


def test_gate_rejects_refuted_self_stabilization_claim():
    import dataclasses

    from repro.lint.driver import target_from

    base = next(t for t in zoo_targets() if t.name == "abp").build()
    claimed = dataclasses.replace(
        base, claims={**base.claims, "self_stabilizing": True}
    )
    report = lint_targets(
        [target_from(claimed, name="abp")],
        deep=True,
        evidence=[_arbitrary_record()],
    )
    assert [d.code for d in report.diagnostics] == ["REP304"]
    assert "self-stabilizing" in report.diagnostics[0].message
    assert "SSTAB2" in report.diagnostics[0].message
