"""REP104 mutant: a task partition that misses a local action family."""

from __future__ import annotations

from typing import Hashable, Iterable, Tuple

from repro.ioa import Action, ActionSignature, Automaton

EXPECTED_CODE = "REP104"

LEFT = ("left", None)
RIGHT = ("right", None)


class HalfPartitionedAutomaton(Automaton):
    """``part(A)`` covers ``left`` but forgets ``right``."""

    name = "mutant-half-partitioned"

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(outputs=[LEFT, RIGHT])

    def initial_state(self) -> int:
        return 0

    def transitions(self, state, action) -> Tuple:
        if state == 0 and action.name in ("left", "right"):
            return (1,)
        return ()

    def enabled_local_actions(self, state) -> Iterable[Action]:
        if state == 0:
            yield Action("left")
            yield Action("right")

    def task_of(self, action: Action) -> Hashable:
        if action.name == "left":
            return (self.name, "left")
        raise KeyError(f"no task for {action}")

    def tasks(self) -> Iterable[Hashable]:
        return [(self.name, "left")]


LINT_TARGETS = [HalfPartitionedAutomaton()]
