"""REP101 mutant: a signature classifying one family as input AND output."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.ioa import Action, ActionSignature, Automaton

EXPECTED_CODE = "REP101"

PING = ("ping", None)


class OverlappingSignatureAutomaton(Automaton):
    """Declares ``ping`` as both an input and an output (ill-formed)."""

    name = "mutant-overlapping-signature"

    def __init__(self) -> None:
        # Raises SignatureError(kind="disjointness") at construction.
        self._signature = ActionSignature.make(
            inputs=[PING], outputs=[PING]
        )

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> int:
        return 0

    def transitions(self, state, action) -> Tuple:
        return ()

    def enabled_local_actions(self, state) -> Iterable[Action]:
        return ()


LINT_TARGETS = [OverlappingSignatureAutomaton]
