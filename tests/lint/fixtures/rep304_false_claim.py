"""REP304 mutant: a claim combination Theorem 7.5 forbids outright.

The protocol itself is lint-clean -- the defect is the *declaration*:
it claims to be crashing, message-independent, and crash-tolerant all
at once.  Theorem 7.5 proves no such protocol exists (no crashing,
message-independent protocol is weakly correct under crashes, even
over perfect FIFO channels), so the contradiction gate must reject
the claims without needing any code defect to point at.
"""

from __future__ import annotations

from repro.datalink.protocol import DataLinkProtocol

from ._base import FireAndForgetTransmitter, SilentReceiver

EXPECTED_CODE = "REP304"

PROTOCOL = DataLinkProtocol(
    name="mutant-false-claim",
    transmitter_factory=FireAndForgetTransmitter,
    receiver_factory=SilentReceiver,
    description="claims crashing + message-independent + crash-tolerant",
    claims={
        "message_independent": True,
        "bounded_headers": True,
        "crashing": True,
        "weakly_correct_over": ("fifo",),
        "tolerates_crashes": True,
    },
)

LINT_TARGETS = [PROTOCOL]
