"""REP105 mutant: a receiver declaring headers it never sends."""

from __future__ import annotations

from typing import FrozenSet

from repro.datalink.protocol import DataLinkProtocol

from ._base import FireAndForgetTransmitter, SilentReceiver

EXPECTED_CODE = "REP105"

ACK = "ACK"


class DeadClaimReceiver(SilentReceiver):
    """Claims an ``ACK`` header but ``enabled_sends`` never offers one.

    A genuinely silent receiver should declare an empty header space
    (the honest convention REP105 exempts); declaring ``{ACK}`` leaves
    the ``send_pkt`` family permanently disabled.
    """

    def header_space(self) -> FrozenSet:
        return frozenset({ACK})


PROTOCOL = DataLinkProtocol(
    name="mutant-dead-family",
    transmitter_factory=FireAndForgetTransmitter,
    receiver_factory=DeadClaimReceiver,
    description="receiver declares ACK headers but never sends",
)

LINT_TARGETS = [PROTOCOL]
