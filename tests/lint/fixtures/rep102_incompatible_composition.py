"""REP102 mutant: two components claiming the same output family."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.ioa import Action, ActionSignature, Automaton, Composition

EXPECTED_CODE = "REP102"

BLIP = ("blip", None)


class Blip(Automaton):
    """Emits one ``blip``; two of these are not strongly compatible."""

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(outputs=[BLIP])

    def initial_state(self) -> int:
        return 0

    def transitions(self, state, action) -> Tuple:
        if action.name == "blip" and state == 0:
            return (1,)
        return ()

    def enabled_local_actions(self, state) -> Iterable[Action]:
        if state == 0:
            yield Action("blip")


def clashing_composition() -> Composition:
    # Raises SignatureError(kind="compatibility") naming the family.
    return Composition([Blip("left"), Blip("right")], name="clashing")


LINT_TARGETS = [clashing_composition]
