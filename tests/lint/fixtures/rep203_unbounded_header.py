"""REP203 mutant: arithmetic header growth behind a finite claim."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Tuple

from repro.alphabets import Message, Packet
from repro.datalink.protocol import DataLinkProtocol, TransmitterLogic

from ._base import DATA, InboxCore, SilentReceiver

EXPECTED_CODE = "REP203"


@dataclass(frozen=True)
class CountingCore:
    queue: Tuple[Message, ...] = ()
    seq: int = 0
    awake: bool = False


class EscalatingTransmitter(TransmitterLogic):
    """Stamps each packet with ``seq + 1`` while claiming finite headers.

    The arithmetic in the header expression generates an unbounded
    header set (Section 8), contradicting ``header_space()``.
    """

    def initial_core(self) -> CountingCore:
        return CountingCore()

    def on_wake(self, core: CountingCore) -> CountingCore:
        return replace(core, awake=True)

    def on_fail(self, core: CountingCore) -> CountingCore:
        return replace(core, awake=False)

    def on_send_msg(self, core: CountingCore, message: Message) -> CountingCore:
        return replace(core, queue=core.queue + (message,))

    def on_packet(self, core: CountingCore, packet: Packet) -> CountingCore:
        return core

    def enabled_sends(self, core: CountingCore) -> Iterable[Packet]:
        if core.awake and core.queue:
            yield Packet((DATA, core.seq + 1), (core.queue[0],))
            # Bounded modular arithmetic: the interval analysis proves
            # this header stays inside the declared space, so REP203's
            # syntactic heuristic must stand down here -- only the
            # unreduced ``seq + 1`` site above may fire.
            yield Packet((DATA, core.seq % 2 + 1), (core.queue[0],))

    def after_send(self, core: CountingCore, packet: Packet) -> CountingCore:
        return replace(core, queue=core.queue[1:], seq=core.seq + 1)

    def header_space(self) -> FrozenSet:
        # Covers the modular site; still a lie for the growing one.
        return frozenset({(DATA, 1), (DATA, 2)})


class TupleHeaderReceiver(SilentReceiver):
    """Accepts any packet so deliveries still flow in the corpus."""

    def on_packet(self, core: InboxCore, packet: Packet) -> InboxCore:
        (message,) = packet.body
        return replace(core, inbox=core.inbox + (message,))


PROTOCOL = DataLinkProtocol(
    name="mutant-unbounded-header",
    transmitter_factory=EscalatingTransmitter,
    receiver_factory=TupleHeaderReceiver,
    description="header arithmetic contradicting a finite header_space",
)

LINT_TARGETS = [PROTOCOL]
