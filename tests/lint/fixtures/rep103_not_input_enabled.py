"""REP103 mutant: an automaton that ignores an input in one state."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.ioa import Action, ActionSignature, Automaton

EXPECTED_CODE = "REP103"

POKE = ("poke", None)
ADVANCE = ("advance", None)


class DeafAutomaton(Automaton):
    """Accepts ``poke`` while listening, refuses it once deaf."""

    name = "mutant-deaf"

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(inputs=[POKE], outputs=[ADVANCE])

    def initial_state(self) -> str:
        return "listening"

    def transitions(self, state, action) -> Tuple:
        if action.name == "poke":
            # Input-enabledness violation: no transition when deaf.
            return (state,) if state == "listening" else ()
        if action.name == "advance" and state == "listening":
            return ("deaf",)
        return ()

    def enabled_local_actions(self, state) -> Iterable[Action]:
        if state == "listening":
            yield Action("advance")


def ENVIRONMENT(state) -> Tuple[Action, ...]:
    return (Action("poke"),)


LINT_TARGETS = [DeafAutomaton()]
