"""REP302 mutant: a monotone counter header behind a finite claim.

The header expression itself contains no arithmetic -- the counter is
incremented over in ``after_send`` -- so the syntactic REP203 scan of
the ``Packet(...)`` call stays silent.  Only the interval analysis,
running the core fields to a widened fixpoint, sees ``seq`` grow to
``[0, +inf]`` and refutes the declared finite ``header_space()``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Tuple

from repro.alphabets import Message, Packet
from repro.datalink.protocol import DataLinkProtocol, TransmitterLogic

from ._base import DATA
from .rep203_unbounded_header import TupleHeaderReceiver

EXPECTED_CODE = "REP302"


@dataclass(frozen=True)
class DriftingCore:
    queue: Tuple[Message, ...] = ()
    seq: int = 0
    awake: bool = False


class DriftingTransmitter(TransmitterLogic):
    """Stamps packets with a counter that only ever moves upward."""

    def initial_core(self) -> DriftingCore:
        return DriftingCore()

    def on_wake(self, core: DriftingCore) -> DriftingCore:
        return replace(core, awake=True)

    def on_fail(self, core: DriftingCore) -> DriftingCore:
        return replace(core, awake=False)

    def on_send_msg(self, core: DriftingCore, message: Message) -> DriftingCore:
        return replace(core, queue=core.queue + (message,))

    def on_packet(self, core: DriftingCore, packet: Packet) -> DriftingCore:
        return core

    def enabled_sends(self, core: DriftingCore) -> Iterable[Packet]:
        if core.awake and core.queue:
            # No arithmetic here: the growth happens in after_send.
            yield Packet((DATA, core.seq), (core.queue[0],))

    def after_send(self, core: DriftingCore, packet: Packet) -> DriftingCore:
        return replace(core, queue=core.queue[1:], seq=core.seq + 1)

    def header_space(self) -> FrozenSet:
        return frozenset({(DATA, 0)})  # a lie: seq drifts without bound


PROTOCOL = DataLinkProtocol(
    name="mutant-unproven-interval",
    transmitter_factory=DriftingTransmitter,
    receiver_factory=TupleHeaderReceiver,
    description="counter header refuting a finite header_space claim",
)

LINT_TARGETS = [PROTOCOL]
