"""Clean building blocks shared by the protocol-shaped mutants.

Everything here is lint-clean on its own: the mutant modules subclass
or pair these with one deliberate defect so that exactly one code
fires per fixture.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Tuple

from repro.alphabets import Message, Packet
from repro.datalink.protocol import ReceiverLogic, TransmitterLogic

DATA = "DATA"


@dataclass(frozen=True)
class QueueCore:
    queue: Tuple[Message, ...] = ()
    awake: bool = False


@dataclass(frozen=True)
class InboxCore:
    inbox: Tuple[Message, ...] = ()
    awake: bool = False


class FireAndForgetTransmitter(TransmitterLogic):
    """Queues messages and sends each exactly once (lint-clean)."""

    def initial_core(self) -> QueueCore:
        return QueueCore()

    def on_wake(self, core: QueueCore) -> QueueCore:
        return replace(core, awake=True)

    def on_fail(self, core: QueueCore) -> QueueCore:
        return replace(core, awake=False)

    def on_send_msg(self, core: QueueCore, message: Message) -> QueueCore:
        return replace(core, queue=core.queue + (message,))

    def on_packet(self, core: QueueCore, packet: Packet) -> QueueCore:
        return core

    def enabled_sends(self, core: QueueCore) -> Iterable[Packet]:
        if core.awake and core.queue:
            yield Packet(DATA, (core.queue[0],))

    def after_send(self, core: QueueCore, packet: Packet) -> QueueCore:
        return replace(core, queue=core.queue[1:])

    def header_space(self) -> FrozenSet:
        return frozenset({DATA})


class SilentReceiver(ReceiverLogic):
    """Delivers data packets in order and never sends (lint-clean)."""

    def initial_core(self) -> InboxCore:
        return InboxCore()

    def on_wake(self, core: InboxCore) -> InboxCore:
        return replace(core, awake=True)

    def on_fail(self, core: InboxCore) -> InboxCore:
        return replace(core, awake=False)

    def on_packet(self, core: InboxCore, packet: Packet) -> InboxCore:
        if packet.header == DATA:
            (message,) = packet.body
            return replace(core, inbox=core.inbox + (message,))
        return core

    def enabled_sends(self, core: InboxCore) -> Iterable[Packet]:
        return ()

    def after_send(self, core: InboxCore, packet: Packet) -> InboxCore:
        return core

    def enabled_deliveries(self, core: InboxCore) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]

    def after_delivery(self, core: InboxCore, message: Message) -> InboxCore:
        return replace(core, inbox=core.inbox[1:])

    def header_space(self) -> FrozenSet:
        return frozenset()  # never sends
