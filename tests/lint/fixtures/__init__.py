"""The mutant zoo: deliberately broken automata and protocols.

Each ``rep*.py`` module holds one mutant that triggers *exactly one*
lint code, declared in its ``EXPECTED_CODE``; ``LINT_TARGETS`` lists
the module's lint targets (consumed by ``repro lint --module`` and by
the fixture tests), and an optional ``ENVIRONMENT`` supplies input
actions for bare-automaton targets.
"""

#: Module name -> the single code that module's mutant must trigger.
MUTANTS = {
    "rep101_overlapping_signature": "REP101",
    "rep102_incompatible_composition": "REP102",
    "rep103_not_input_enabled": "REP103",
    "rep104_partial_tasks": "REP104",
    "rep105_dead_family": "REP105",
    "rep106_nondeterministic": "REP106",
    "rep201_message_introspection": "REP201",
    "rep202_stable_storage": "REP202",
    "rep203_unbounded_header": "REP203",
    "rep301_payload_flow": "REP301",
    "rep302_unproven_interval": "REP302",
    "rep303_guarded_survivor": "REP303",
    "rep304_false_claim": "REP304",
}
