"""REP303 mutant: stable storage hiding behind the mode-flag idiom.

REP202 deliberately exempts ``on_crash`` returns guarded by an ``if
self.<flag>:`` test -- that is the legitimate construction-time
mode-switch idiom (one logic class serving volatile and non-volatile
variants).  This mutant abuses the exemption: the flag is hardwired
``True``, so the guarded branch *always* runs and the queue survives
every crash.  Only the escape analysis, resolving ``self.durable``
against the live instance, proves the survival and flags it.
"""

from __future__ import annotations

from dataclasses import replace

from repro.datalink.protocol import DataLinkProtocol

from ._base import FireAndForgetTransmitter, QueueCore, SilentReceiver

EXPECTED_CODE = "REP303"


class SquirrelingTransmitter(FireAndForgetTransmitter):
    """Keeps its queue across crashes while claiming to be crashing."""

    def __init__(self, durable: bool = True):
        self.durable = durable

    def on_crash(self, core: QueueCore) -> QueueCore:
        if self.durable:
            return replace(core, awake=False)
        return self.initial_core()


PROTOCOL = DataLinkProtocol(
    name="mutant-guarded-survivor",
    transmitter_factory=SquirrelingTransmitter,
    receiver_factory=SilentReceiver,
    description="queue surviving on_crash behind a hardwired mode flag",
)

LINT_TARGETS = [PROTOCOL]
