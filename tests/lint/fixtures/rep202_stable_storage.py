"""REP202 mutant: crash handler that keeps state despite claiming crashing."""

from __future__ import annotations

from repro.datalink.protocol import DataLinkProtocol

from ._base import FireAndForgetTransmitter, QueueCore, SilentReceiver

EXPECTED_CODE = "REP202"


class StableStorageTransmitter(FireAndForgetTransmitter):
    """Survives a crash with its queue intact.

    The protocol is declared crashing (``crash_resilient=False``), so
    ``on_crash`` must reset to the initial core; returning ``core``
    unchanged smuggles in stable storage (Sections 5.3.2 and 7).
    """

    def on_crash(self, core: QueueCore) -> QueueCore:
        return core


PROTOCOL = DataLinkProtocol(
    name="mutant-stable-storage",
    transmitter_factory=StableStorageTransmitter,
    receiver_factory=SilentReceiver,
    description="crashing protocol whose transmitter survives crashes",
)

LINT_TARGETS = [PROTOCOL]
