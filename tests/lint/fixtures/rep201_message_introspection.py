"""REP201 mutant: protocol logic branching on a message's identity."""

from __future__ import annotations

from repro.alphabets import Message
from repro.datalink.protocol import DataLinkProtocol

from ._base import FireAndForgetTransmitter, QueueCore, SilentReceiver

EXPECTED_CODE = "REP201"


class IdentSniffingTransmitter(FireAndForgetTransmitter):
    """Silently drops the message whose ``ident`` is zero.

    Inspecting ``message.ident`` breaks message-independence
    (Section 5.3.1): behaviour no longer commutes with renaming the
    message alphabet.
    """

    def on_send_msg(self, core: QueueCore, message: Message) -> QueueCore:
        if message.ident == 0:
            return core
        return super().on_send_msg(core, message)


PROTOCOL = DataLinkProtocol(
    name="mutant-message-introspection",
    transmitter_factory=IdentSniffingTransmitter,
    receiver_factory=SilentReceiver,
    description="transmitter branches on message.ident",
)

LINT_TARGETS = [PROTOCOL]
