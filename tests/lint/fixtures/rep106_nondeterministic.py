"""REP106 mutant: one action with two post-states from one state."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.ioa import Action, ActionSignature, Automaton

EXPECTED_CODE = "REP106"

FLIP = ("flip", None)


class CoinFlip(Automaton):
    """``flip`` lands on either side: a nondeterministic transition."""

    name = "mutant-coin-flip"

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(outputs=[FLIP])

    def initial_state(self) -> str:
        return "ready"

    def transitions(self, state, action) -> Tuple:
        if state == "ready" and action.name == "flip":
            return ("heads", "tails")
        return ()

    def enabled_local_actions(self, state) -> Iterable[Action]:
        if state == "ready":
            yield Action("flip")


LINT_TARGETS = [CoinFlip()]
