"""REP301 mutant: message payload flowing covertly into a branch.

The transmitter never touches ``message.ident`` inside its own class
body -- the read hides in a module-level helper -- so the syntactic
REP201 scan (which only sees the class source) stays silent.  Only the
interprocedural taint analysis follows the payload through the helper
call and into the branch decision.
"""

from __future__ import annotations

from repro.alphabets import Message
from repro.datalink.protocol import DataLinkProtocol

from ._base import FireAndForgetTransmitter, QueueCore, SilentReceiver

EXPECTED_CODE = "REP301"


def _priority(message: Message) -> int:
    """The covert payload read: lives outside any audited class."""
    return message.ident % 4


class CovertPriorityTransmitter(FireAndForgetTransmitter):
    """Silently drops messages whose laundered priority is zero.

    Branching on a value derived from ``message.ident`` breaks
    message-independence (Section 5.3.1) exactly as a direct read
    would: behaviour no longer commutes with renaming the alphabet.
    """

    def on_send_msg(self, core: QueueCore, message: Message) -> QueueCore:
        if _priority(message) == 0:
            return core
        return super().on_send_msg(core, message)


PROTOCOL = DataLinkProtocol(
    name="mutant-payload-flow",
    transmitter_factory=CovertPriorityTransmitter,
    receiver_factory=SilentReceiver,
    description="payload dependence laundered through a module helper",
)

LINT_TARGETS = [PROTOCOL]
