"""End-to-end tests for ``python -m repro lint``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.lint import REPORT_VERSION


def test_lint_zoo_text_clean(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "all clean" in out


def test_lint_single_protocol(capsys):
    assert main(["lint", "abp"]) == 0
    assert "all clean" in capsys.readouterr().out


def test_lint_json_schema(capsys):
    assert main(["lint", "abp", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == REPORT_VERSION
    assert payload["tool"] == "repro-lint"
    assert payload["findings"] == []
    assert payload["summary"]["findings"] == 0


def test_lint_module_finds_mutant(capsys):
    code = main(
        ["lint", "--module", "tests.lint.fixtures.rep103_not_input_enabled"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "REP103" in out


def test_lint_module_json_output(capsys, tmp_path):
    target = tmp_path / "report.json"
    code = main(
        [
            "lint",
            "--module",
            "tests.lint.fixtures.rep203_unbounded_header",
            "--format",
            "json",
            "--output",
            str(target),
        ]
    )
    assert code == 1
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(target.read_text())
    assert [f["code"] for f in payload["findings"]] == ["REP203"]


def test_lint_select_filters(capsys):
    code = main(
        [
            "lint",
            "--module",
            "tests.lint.fixtures.rep106_nondeterministic",
            "--select",
            "REP2",
        ]
    )
    out = capsys.readouterr().out
    # The only finding is REP106; selecting REP2xx leaves a clean report.
    assert code == 0
    assert "all clean" in out


def test_lint_list_codes(capsys):
    assert main(["lint", "--list-codes"]) == 0
    out = capsys.readouterr().out
    for expected in ("REP101", "REP203", "§2.2", "§8"):
        assert expected in out


def test_lint_module_without_targets_rejected(capsys):
    # A clean error envelope (exit 2), never a SystemExit traceback.
    code = main(["lint", "--module", "json", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["status"] == "error"
    assert "LINT_TARGETS" in payload["details"]["error"]


def test_lint_from_module_alias(capsys):
    code = main(
        [
            "lint",
            "--from-module",
            "tests.lint.fixtures.rep103_not_input_enabled",
        ]
    )
    assert code == 1
    assert "REP103" in capsys.readouterr().out


def test_lint_unimportable_module_rejected(capsys):
    code = main(["lint", "--from-module", "no.such.module", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["status"] == "error"
    assert "no.such.module" in payload["details"]["error"]


def test_lint_unknown_select_code_rejected(capsys):
    code = main(["lint", "abp", "--select", "REP999", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["status"] == "error"
    assert "REP999" in payload["details"]["error"]
    assert payload["details"]["flag"] == "--select"


def test_lint_unknown_ignore_code_rejected(capsys):
    # Comma-separated values are split before validation.
    code = main(["lint", "abp", "--ignore", "REP1,BOGUS", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["details"]["unknown"] == ["BOGUS"]


def test_lint_unwritable_output_rejected(capsys, tmp_path):
    target = tmp_path / "no-such-dir" / "report.json"
    code = main(["lint", "abp", "--output", str(target), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["status"] == "error"
    assert "cannot write" in payload["details"]["error"]


def test_lint_ignore_suppresses_findings(capsys):
    code = main(
        [
            "lint",
            "--module",
            "tests.lint.fixtures.rep106_nondeterministic",
            "--ignore",
            "REP106",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "all clean" in out


def test_lint_baseline_suppresses_known_findings(capsys, tmp_path):
    # First run records the findings; the second, given that report as
    # a baseline, comes back clean.
    baseline = tmp_path / "baseline.json"
    code = main(
        [
            "lint",
            "--module",
            "tests.lint.fixtures.rep203_unbounded_header",
            "--format",
            "json",
            "--output",
            str(baseline),
        ]
    )
    capsys.readouterr()
    assert code == 1
    code = main(
        [
            "lint",
            "--module",
            "tests.lint.fixtures.rep203_unbounded_header",
            "--baseline",
            str(baseline),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "all clean" in out


def test_lint_malformed_baseline_rejected(capsys, tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("not json")
    code = main(["lint", "abp", "--baseline", str(bad), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert "baseline" in payload["details"]["error"]


def test_lint_deep_source_renders_verdicts(capsys):
    code = main(["lint", "abp", "--deep-source", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    (verdict,) = payload["verdicts"]
    assert verdict["target"] == "abp"
    assert verdict["inferred"]["message_independent"] is True
    assert verdict["claims"]["tolerates_crashes"] is False


def test_lint_unreadable_evidence_rejected(capsys, tmp_path):
    code = main(
        [
            "lint",
            "abp",
            "--deep-source",
            "--evidence",
            str(tmp_path / "missing.jsonl"),
            "--json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert "evidence" in payload["details"]["error"]
