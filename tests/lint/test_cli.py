"""End-to-end tests for ``python -m repro lint``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.lint import REPORT_VERSION


def test_lint_zoo_text_clean(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "all clean" in out


def test_lint_single_protocol(capsys):
    assert main(["lint", "abp"]) == 0
    assert "all clean" in capsys.readouterr().out


def test_lint_json_schema(capsys):
    assert main(["lint", "abp", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == REPORT_VERSION
    assert payload["tool"] == "repro-lint"
    assert payload["findings"] == []
    assert payload["summary"]["findings"] == 0


def test_lint_module_finds_mutant(capsys):
    code = main(
        ["lint", "--module", "tests.lint.fixtures.rep103_not_input_enabled"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "REP103" in out


def test_lint_module_json_output(capsys, tmp_path):
    target = tmp_path / "report.json"
    code = main(
        [
            "lint",
            "--module",
            "tests.lint.fixtures.rep203_unbounded_header",
            "--format",
            "json",
            "--output",
            str(target),
        ]
    )
    assert code == 1
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(target.read_text())
    assert [f["code"] for f in payload["findings"]] == ["REP203"]


def test_lint_select_filters(capsys):
    code = main(
        [
            "lint",
            "--module",
            "tests.lint.fixtures.rep106_nondeterministic",
            "--select",
            "REP2",
        ]
    )
    out = capsys.readouterr().out
    # The only finding is REP106; selecting REP2xx leaves a clean report.
    assert code == 0
    assert "all clean" in out


def test_lint_list_codes(capsys):
    assert main(["lint", "--list-codes"]) == 0
    out = capsys.readouterr().out
    for expected in ("REP101", "REP203", "§2.2", "§8"):
        assert expected in out


def test_lint_module_without_targets_rejected(tmp_path):
    import pytest

    with pytest.raises(SystemExit):
        main(["lint", "--module", "json"])
