"""Tests for the message/packet alphabets and renaming machinery."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


from repro.alphabets import (
    Message,
    MessageFactory,
    Packet,
    messages_in,
    rename_messages,
    strip_uids,
)


class TestMessageFactory:
    def test_fresh_messages_are_distinct(self):
        factory = MessageFactory()
        batch = factory.fresh_many(100)
        assert len(set(batch)) == 100

    def test_fresh_across_calls(self):
        factory = MessageFactory()
        first = factory.fresh()
        second = factory.fresh()
        assert first != second

    def test_label_is_carried(self):
        factory = MessageFactory(label="x")
        assert factory.fresh().label == "x"

    def test_start_offset(self):
        factory = MessageFactory(start=10)
        assert factory.fresh().ident == 10

    def test_distinct_factories_same_labels_collide_intentionally(self):
        # Two factories with the same label produce equal messages; the
        # engines always use distinct labels per construction phase.
        a = MessageFactory(label="m")
        b = MessageFactory(label="m")
        assert a.fresh() == b.fresh()

    def test_messages_are_ordered(self):
        factory = MessageFactory()
        a, b = factory.fresh_many(2)
        assert a < b


class TestPacket:
    def test_with_uid_round_trip(self):
        packet = Packet("H", (Message(1),))
        stamped = packet.with_uid(7)
        assert stamped.uid == 7
        assert stamped.strip_uid() == packet

    def test_header_class_ignores_message_identity(self):
        p1 = Packet("H", (Message(1),), uid=1)
        p2 = Packet("H", (Message(2),), uid=2)
        assert p1.header_class == p2.header_class

    def test_header_class_distinguishes_arity(self):
        assert Packet("H").header_class != Packet("H", (Message(1),)).header_class

    def test_header_class_distinguishes_headers(self):
        assert Packet("A").header_class != Packet("B").header_class

    def test_packets_hashable(self):
        assert len({Packet("H", (), 1), Packet("H", (), 1)}) == 1


@dataclass(frozen=True)
class _Core:
    items: Tuple[Message, ...]
    label: str = "core"


class TestRenaming:
    def test_rename_message(self):
        m1, m2 = Message(1), Message(2)
        assert rename_messages(m1, {m1: m2}) == m2

    def test_rename_leaves_unmapped_fixed(self):
        m1, m2 = Message(1), Message(2)
        assert rename_messages(m2, {m1: Message(3)}) == m2

    def test_rename_tuple(self):
        m1, m2 = Message(1), Message(2)
        assert rename_messages((m1, "x", 3), {m1: m2}) == (m2, "x", 3)

    def test_rename_packet_body(self):
        m1, m2 = Message(1), Message(2)
        packet = Packet("H", (m1,), uid=5)
        renamed = rename_messages(packet, {m1: m2})
        assert renamed.body == (m2,)
        assert renamed.uid == 5  # uid untouched by renaming

    def test_rename_dataclass(self):
        m1, m2 = Message(1), Message(2)
        core = _Core((m1,))
        renamed = rename_messages(core, {m1: m2})
        assert renamed == _Core((m2,))

    def test_rename_frozenset(self):
        m1, m2 = Message(1), Message(2)
        assert rename_messages(frozenset({m1}), {m1: m2}) == frozenset({m2})

    def test_rename_dict(self):
        m1, m2 = Message(1), Message(2)
        assert rename_messages({m1: "v"}, {m1: m2}) == {m2: "v"}

    def test_rename_scalars_pass_through(self):
        assert rename_messages(42, {}) == 42
        assert rename_messages("s", {}) == "s"
        assert rename_messages(None, {}) is None


class TestStripUids:
    def test_strip_packet(self):
        packet = Packet("H", (Message(1),), uid=9)
        assert strip_uids(packet).uid is None

    def test_strip_nested(self):
        packet = Packet("H", (), uid=9)
        core = _Core(())
        value = (core, (packet,))
        stripped = strip_uids(value)
        assert stripped[1][0].uid is None

    def test_strip_is_idempotent(self):
        packet = Packet("H", (Message(1),), uid=9)
        assert strip_uids(strip_uids(packet)) == strip_uids(packet)


class TestMessagesIn:
    def test_finds_in_packet(self):
        m = Message(3)
        assert messages_in(Packet("H", (m,))) == (m,)

    def test_finds_in_dataclass(self):
        m1, m2 = Message(1), Message(2)
        assert set(messages_in(_Core((m1, m2)))) == {m1, m2}

    def test_empty_for_scalars(self):
        assert messages_in(("a", 1, None)) == ()

    def test_traversal_order_in_tuples(self):
        m1, m2 = Message(1), Message(2)
        assert messages_in((m2, m1)) == (m2, m1)
