"""Tests for action values and the Automaton base conveniences."""

from __future__ import annotations

import pytest

from repro.ioa import Action, TransitionError, action_family, directed
from .toys import Counter, Echo, ping, pong


class TestAction:
    def test_equality_by_value(self):
        assert Action("a", ("t", "r"), 1) == Action("a", ("t", "r"), 1)
        assert Action("a") != Action("b")
        assert Action("a", ("t", "r")) != Action("a", ("r", "t"))
        assert Action("a", None, 1) != Action("a", None, 2)

    def test_hashable(self):
        assert len({Action("a", None, 1), Action("a", None, 1)}) == 1

    def test_key_ignores_payload(self):
        assert Action("a", ("t", "r"), 1).key == Action("a", ("t", "r"), 2).key

    def test_with_payload(self):
        action = Action("a", ("t", "r"))
        assert action.with_payload(5).payload == 5
        assert action.with_payload(5).key == action.key

    def test_directed_constructor(self):
        action = directed("send", "t", "r", "x")
        assert action.direction == ("t", "r")
        assert action.payload == "x"

    def test_action_family(self):
        assert action_family("send", "t", "r") == ("send", ("t", "r"))

    def test_str_rendering(self):
        assert "send" in str(directed("send", "t", "r", 1))
        assert "t,r" in str(directed("send", "t", "r"))


class TestAutomatonBase:
    def test_step_returns_post_state(self):
        echo = Echo()
        assert echo.step((), ping(3)) == (3,)

    def test_step_raises_when_disabled(self):
        echo = Echo()
        with pytest.raises(TransitionError) as info:
            echo.step((), pong(3))
        assert "not enabled" in str(info.value)

    def test_is_enabled(self):
        echo = Echo()
        assert echo.is_enabled((3,), pong(3))
        assert not echo.is_enabled((3,), pong(4))

    def test_is_quiescent(self):
        echo = Echo()
        assert echo.is_quiescent(())
        assert not echo.is_quiescent((1,))

    def test_default_single_task(self):
        counter = Counter(1)
        (task,) = list(counter.tasks())
        from repro.ioa import Action as A

        assert counter.task_of(A(counter.tag)) == task

    def test_check_input_enabled(self):
        echo = Echo()
        assert echo.check_input_enabled((), [ping(1), ping(2)])
