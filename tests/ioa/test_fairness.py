"""Tests for fair execution and the executable Lemma 2.1."""

from __future__ import annotations

import pytest

from repro.ioa import (
    Action,
    ActionSignature,
    Automaton,
    ExecutionFragment,
    FairnessTimeout,
    apply_inputs,
    fair_extension,
    is_fair_finite,
    run_to_quiescence,
)
from .toys import Counter, Echo, ping, pong


class Perpetual(Automaton):
    """An output enabled forever: never quiesces."""

    name = "perpetual"

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(outputs=[("spin", None)])

    def initial_state(self):
        return 0

    def transitions(self, state, action):
        if action.name == "spin":
            return (state + 1,)
        return ()

    def enabled_local_actions(self, state):
        yield Action("spin")


class TwoTask(Automaton):
    """Two independent tasks, each needing service to drain."""

    name = "twotask"

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(
            outputs=[("left", None), ("right", None)]
        )

    def initial_state(self):
        return (3, 3)

    def transitions(self, state, action):
        left, right = state
        if action.name == "left" and left > 0:
            return ((left - 1, right),)
        if action.name == "right" and right > 0:
            return ((left, right - 1),)
        return ()

    def enabled_local_actions(self, state):
        left, right = state
        if left > 0:
            yield Action("left")
        if right > 0:
            yield Action("right")

    def task_of(self, action):
        return (self.name, action.name)

    def tasks(self):
        return [(self.name, "left"), (self.name, "right")]


class TestApplyInputs:
    def test_inputs_applied_in_order(self):
        echo = Echo()
        fragment = apply_inputs(echo, (), [ping(1), ping(2)])
        assert fragment.final_state == (1, 2)

    def test_non_input_rejected(self):
        echo = Echo()
        with pytest.raises(ValueError):
            apply_inputs(echo, (), [pong(1)])


class TestRunToQuiescence:
    def test_counter_drains(self):
        counter = Counter(4)
        fragment = run_to_quiescence(counter, counter.initial_state())
        assert fragment.final_state == 0
        assert len(fragment) == 4

    def test_quiescent_start_is_noop(self):
        counter = Counter(0)
        fragment = run_to_quiescence(counter, counter.initial_state())
        assert len(fragment) == 0

    def test_round_robin_serves_both_tasks(self):
        automaton = TwoTask()
        fragment = run_to_quiescence(automaton, automaton.initial_state())
        names = [a.name for a in fragment.actions]
        # Strict alternation: neither task waits more than one turn.
        assert names[:4] in (["left", "right"] * 2, ["right", "left"] * 2)
        assert fragment.final_state == (0, 0)

    def test_timeout_raises_with_fragment(self):
        automaton = Perpetual()
        with pytest.raises(FairnessTimeout) as info:
            run_to_quiescence(automaton, 0, max_steps=10)
        assert len(info.value.fragment) == 10

    def test_stop_when_truncates(self):
        counter = Counter(10)
        fragment = run_to_quiescence(
            counter,
            counter.initial_state(),
            stop_when=lambda a: True,
        )
        assert len(fragment) == 1

    def test_tie_break_override(self):
        automaton = TwoTask()
        fragment = run_to_quiescence(
            automaton,
            automaton.initial_state(),
            tie_break=lambda actions: actions[-1],
        )
        assert fragment.final_state == (0, 0)


class TestFairness:
    def test_quiescent_finite_execution_is_fair(self):
        counter = Counter(2)
        fragment = run_to_quiescence(counter, counter.initial_state())
        assert is_fair_finite(counter, fragment)

    def test_non_quiescent_finite_execution_not_fair(self):
        counter = Counter(2)
        fragment = ExecutionFragment.initial(counter.initial_state())
        assert not is_fair_finite(counter, fragment)


class TestFairExtension:
    """Lemma 2.1: any finite execution extends to a fair one, with any
    further inputs."""

    def test_extends_with_inputs_then_drains(self):
        echo = Echo()
        start = ExecutionFragment.initial(())
        fragment = fair_extension(echo, start, inputs=[ping(1), ping(2)])
        assert is_fair_finite(echo, fragment)
        outputs = [a for a in fragment.actions if a.name == "pong"]
        assert [a.payload for a in outputs] == [1, 2]

    def test_extension_preserves_prefix(self):
        echo = Echo()
        prefix = apply_inputs(echo, (), [ping(9)])
        fragment = fair_extension(echo, prefix)
        assert fragment.actions[: len(prefix)] == prefix.actions
