"""Tests for the output-hiding operator (paper 2.6)."""

from __future__ import annotations

import pytest

from repro.ioa import Composition, Hidden, SignatureError, hide
from .toys import Echo, Forwarder, ping, pong


@pytest.fixture
def hidden_pipeline():
    composed = Composition([Echo(), Forwarder()])
    return hide(composed, [("pong", None)])


class TestHiding:
    def test_hidden_action_becomes_internal(self, hidden_pipeline):
        assert hidden_pipeline.signature.is_internal(pong(1))
        assert hidden_pipeline.signature.is_input(ping(1))

    def test_behavior_excludes_hidden(self, hidden_pipeline):
        from repro.ioa import fair_extension, ExecutionFragment

        fragment = fair_extension(
            hidden_pipeline,
            ExecutionFragment.initial(hidden_pipeline.initial_state()),
            inputs=[ping(1)],
        )
        behavior = fragment.behavior(hidden_pipeline.signature)
        names = [a.name for a in behavior]
        assert names == ["ping", "ack"]
        # The hidden pong still occurs in the schedule.
        assert "pong" in [a.name for a in fragment.actions]

    def test_transitions_delegate(self, hidden_pipeline):
        state = hidden_pipeline.initial_state()
        assert hidden_pipeline.transitions(state, ping(1))

    def test_hiding_non_output_rejected(self):
        with pytest.raises(SignatureError):
            hide(Echo(), [("ping", None)])

    def test_inner_accessible(self, hidden_pipeline):
        assert isinstance(hidden_pipeline, Hidden)
        assert hidden_pipeline.inner.name == "composition"
        assert hidden_pipeline.hidden_families == {("pong", None)}

    def test_tasks_delegate(self, hidden_pipeline):
        assert list(hidden_pipeline.tasks())
