"""Property tests for the state encoder.

The encoder is the engine's load-bearing abstraction: every backend
(pure-Python, compiled, disk-backed, parallel) trusts that encoding is
a bijection on the states it has seen.  Hypothesis drives the check
over *arbitrary* composed states -- each slice drawn independently from
its component's locally-reachable pool, so most samples are jointly
unreachable, exactly like the self-stabilization corrupted starts.
"""

from __future__ import annotations

import copy
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance.arbitrary import component_state_pools
from repro.conformance.harness import FuzzConfig, SubSeeds, build_system
from repro.ioa.engine.encoding import (
    EncodingOverflow,
    StateEncoder,
    StreamEncoder,
)

_SYSTEM = build_system(
    "alternating_bit",
    "nonfifo",
    SubSeeds.derive(random.Random(1011)),
    FuzzConfig(messages=2, capacity=2, horizon=16),
)
_COMPOSITION = _SYSTEM.automaton.inner
_POOLS = component_state_pools(_SYSTEM)

#: A strategy over composed states: one locally-reachable slice per
#: slot, combined freely (the product is generally unreachable).
composed_states = st.tuples(
    *(st.sampled_from(pool) for pool in _POOLS)
)


class TestRoundTrip:
    @given(state=composed_states)
    @settings(max_examples=50, deadline=None)
    def test_decode_inverts_encode(self, state):
        encoder = StateEncoder(_COMPOSITION)
        assert encoder.decode(encoder.encode(state)) == state

    @given(state=composed_states)
    @settings(max_examples=50, deadline=None)
    def test_packed_round_trip(self, state):
        encoder = StateEncoder(_COMPOSITION)
        key = encoder.encode_packed(state)
        assert encoder.unpack(key) == encoder.encode(state)
        assert encoder.decode_packed(key) == state

    @given(state=composed_states)
    @settings(max_examples=50, deadline=None)
    def test_equal_states_encode_equal(self, state):
        # A structurally equal but freshly built state must intern to
        # the same ids -- interning keys on value, not identity.
        encoder = StateEncoder(_COMPOSITION)
        first = encoder.encode(state)
        second = encoder.encode(copy.deepcopy(state))
        assert first == second

    @given(left=composed_states, right=composed_states)
    @settings(max_examples=50, deadline=None)
    def test_distinct_states_encode_distinct(self, left, right):
        encoder = StateEncoder(_COMPOSITION)
        left_code = encoder.encode(left)
        right_code = encoder.encode(right)
        assert (left_code == right_code) == (left == right)

    def test_decoded_slices_are_canonical(self):
        # Decoding shares slice objects with the intern tables, so two
        # decodes of the same code are element-identical (the equality
        # fast path the engine relies on).
        encoder = StateEncoder(_COMPOSITION)
        state = _COMPOSITION.initial_state()
        code = encoder.encode(state)
        first = encoder.decode(code)
        second = encoder.decode(code)
        assert all(a is b for a, b in zip(first, second))


class TestOverflow:
    def test_pack_overflow_is_signalled(self):
        # A 4-bit budget over 4 slots leaves 1 bit per slot: the third
        # distinct slice in any slot cannot be addressed.
        encoder = StateEncoder(_COMPOSITION, pack_bits=4)
        assert encoder.bits_per_slot == 1
        seen = []
        for pool in _POOLS:
            seen.append(pool[: min(3, len(pool))])
        for slice_state in seen[0]:
            encoder.intern_slice(0, slice_state)
        overflowing = (2,) + (0,) * (encoder.n - 1)
        try:
            encoder.pack(overflowing)
        except EncodingOverflow:
            pass
        else:  # pragma: no cover - property failure
            raise AssertionError("pack accepted an id past the budget")

    def test_tuple_encoding_has_no_width_limit(self):
        # The tuple form must keep working where the packed form
        # overflows -- that is the fallback contract.
        encoder = StateEncoder(_COMPOSITION, pack_bits=4)
        for state in (
            tuple(pool[0] for pool in _POOLS),
            tuple(pool[-1] for pool in _POOLS),
        ):
            assert encoder.decode(encoder.encode(state)) == state


class TestStreamEncoder:
    @given(
        picks=st.lists(
            st.tuples(
                *(
                    st.integers(0, len(pool) - 1)
                    for pool in _POOLS
                )
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_distinct_matches_order_preserving_dedup(self, picks):
        states = [
            tuple(pool[i] for pool, i in zip(_POOLS, pick))
            for pick in picks
        ]
        expected = []
        for state in states:
            if state not in expected:
                expected.append(state)
        assert StreamEncoder().distinct(states) == expected
