"""Three-way engine differential over the fuzz zoo x channel matrix.

Every exploration backend -- the reference BFS kept as the oracle, the
interned engine, the compiled packed-key core and the disk-backed
store -- must report the same reachable set, the same ``truncated``
flag and the same counterexamples on the same closed system.  The
systems come from the fuzz harness (seeded channel adversaries over
the protocol zoo), including corrupted ``initial_state=`` starts from
the self-stabilization workload, so the matrix covers exactly what the
campaigns explore.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabets import MessageFactory
from repro.analysis.model_check import build_closed_system
from repro.conformance.arbitrary import corrupt_initial_state
from repro.conformance.harness import FuzzConfig, SubSeeds, build_system
from repro.ioa.engine.accel import accel_backend_id
from repro.ioa.engine.diskstore import explore_disk
from repro.ioa.explorer import explore
from repro.protocols import alternating_bit_protocol

PROTOCOLS = ("alternating_bit", "stenning", "sliding_window")
CHANNELS = ("fifo", "nonfifo", "bounded_nonfifo")

#: Small adversaries keep each exploration in the low thousands of
#: states; ``max_states`` below guarantees termination regardless.
CONFIG = FuzzConfig(messages=2, capacity=2, horizon=16, reorder_window=2)
MAX_STATES = 1500

ENGINES = ("auto", "reference", "disk") + (
    ("accel",) if accel_backend_id() else ()
)


def _composition(protocol: str, channel: str, seed: int):
    subseeds = SubSeeds.derive(random.Random(seed))
    system = build_system(protocol, channel, subseeds, CONFIG)
    return system, subseeds, system.automaton.inner


def _started_state(system):
    """A state with both stations awake and two messages submitted.

    The fuzz compositions take their inputs from scripts, not from an
    environment automaton, so the clean initial state is quiescent;
    applying the canonical script prefix first gives the engines a real
    state space (retransmissions, deliveries, acks) to disagree over.
    """
    factory = MessageFactory(label="s")
    automaton = system.automaton
    state = system.initial_state()
    for action in (
        system.wake_t(),
        system.wake_r(),
        system.send(factory.fresh()),
        system.send(factory.fresh()),
    ):
        state = automaton.step(state, action)
    return state


def _assert_agree(composition, initial_state=None, expect_progress=True):
    results = {
        engine: explore(
            composition,
            max_states=MAX_STATES,
            engine=engine,
            initial_state=initial_state,
        )
        for engine in ENGINES
    }
    oracle = results["reference"]
    if expect_progress:
        assert len(oracle.states) > 1
    for engine, result in results.items():
        assert result.truncated == oracle.truncated, engine
        assert len(result.states) == len(oracle.states), engine
        assert result.states == oracle.states, engine
        assert result.violation is None, engine
    return oracle


@pytest.mark.parametrize("channel", CHANNELS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_engines_agree_on_clean_starts(protocol, channel):
    system, _, composition = _composition(protocol, channel, seed=2024)
    _assert_agree(composition, initial_state=_started_state(system))


@pytest.mark.parametrize("channel", CHANNELS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_engines_agree_on_corrupted_starts(protocol, channel):
    system, subseeds, composition = _composition(
        protocol, channel, seed=2025
    )
    corrupted = corrupt_initial_state(system, subseeds)
    _assert_agree(
        composition, initial_state=corrupted, expect_progress=False
    )


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=5, deadline=None)
def test_engines_agree_on_fuzzed_seeds(seed):
    # Hypothesis fuzzes the harness seed itself: fresh channel
    # adversaries and a fresh corruption each example.
    system, subseeds, composition = _composition(
        "alternating_bit", "bounded_nonfifo", seed=seed
    )
    _assert_agree(composition, initial_state=_started_state(system))
    _assert_agree(
        composition,
        initial_state=corrupt_initial_state(system, subseeds),
        expect_progress=False,
    )


def test_engines_agree_on_violation_traces():
    # reorder_depth=2 breaks the alternating-bit protocol; every
    # backend must convict the same state through the same
    # layer-minimal trace.
    violations = {}
    for engine in ENGINES:
        composition, invariant, _ = build_closed_system(
            alternating_bit_protocol(),
            messages=2,
            capacity=2,
            reorder_depth=2,
        )
        result = explore(
            composition, invariant=invariant, engine=engine
        )
        assert result.violation is not None, engine
        state, trace = result.violation
        violations[engine] = (state, tuple(trace))
    oracle = violations["reference"]
    for engine, violation in violations.items():
        assert violation == oracle, engine


def test_engines_agree_under_truncation():
    # The budget contract (count, then drop the overflow entry, then
    # stop the whole search) must leave every backend holding the same
    # prefix of the BFS order.
    system, _, composition = _composition(
        "sliding_window", "bounded_nonfifo", seed=7
    )
    started = _started_state(system)
    results = {
        engine: explore(
            composition,
            max_states=300,
            engine=engine,
            initial_state=started,
        )
        for engine in ENGINES
    }
    oracle = results["reference"]
    assert oracle.truncated
    assert len(oracle.states) == 300
    for engine, result in results.items():
        assert result.truncated, engine
        assert result.states == oracle.states, engine


def test_disk_store_matches_engine_under_tiny_ram_cap():
    # Force the sharded visited set to spill: a 64-entry RAM cap on a
    # multi-thousand-state system flushes sorted runs repeatedly, and
    # the result must still match the all-in-RAM engine exactly.
    system, _, composition = _composition("stenning", "nonfifo", seed=11)
    started = _started_state(system)
    spilled = explore_disk(
        composition,
        max_states=MAX_STATES,
        ram_cap=64,
        initial_state=started,
    )
    in_ram = explore(
        composition, max_states=MAX_STATES, initial_state=started
    )
    assert spilled.truncated == in_ram.truncated
    assert spilled.states == in_ram.states
