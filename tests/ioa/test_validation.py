"""Input-enabledness validation wired into the exploration engine."""

from __future__ import annotations

import pytest

from repro.ioa import (
    Action,
    ActionSignature,
    Automaton,
    Composition,
    InputEnablednessError,
    explore,
)

from .toys import Echo, ping


class Deaf(Automaton):
    """Accepts ``poke`` initially, refuses it after one ``advance``."""

    name = "deaf"

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(
            inputs=[("poke", None)], outputs=[("advance", None)]
        )

    def initial_state(self):
        return "listening"

    def transitions(self, state, action):
        if action.name == "poke":
            return (state,) if state == "listening" else ()
        if action.name == "advance" and state == "listening":
            return ("deaf",)
        return ()

    def enabled_local_actions(self, state):
        if state == "listening":
            yield Action("advance")


def offer_poke(state):
    return (Action("poke"),)


class TestValidateGeneric:
    def test_violation_raises(self):
        automaton = Deaf()
        with pytest.raises(InputEnablednessError) as excinfo:
            explore(automaton, environment=offer_poke, validate=True)
        error = excinfo.value
        assert error.automaton is automaton
        assert error.state == "deaf"
        assert error.action.name == "poke"
        assert "not input-enabled" in str(error)

    def test_silent_without_validate(self):
        result = explore(Deaf(), environment=offer_poke)
        assert "deaf" in result.states

    def test_input_enabled_automaton_passes(self):
        result = explore(
            Echo(), environment=lambda _: (ping(1),), max_depth=4,
            validate=True,
        )
        assert result.states

    def test_validate_ignores_workers(self):
        # validate forces the serial engine; workers must be a no-op.
        with pytest.raises(InputEnablednessError):
            explore(
                Deaf(),
                environment=offer_poke,
                validate=True,
                workers=4,
            )


class TestValidateComposition:
    def test_violation_raises_in_composition(self):
        composition = Composition([Deaf()], name="wrapped")
        with pytest.raises(InputEnablednessError) as excinfo:
            explore(
                composition, environment=offer_poke, validate=True
            )
        assert excinfo.value.action.name == "poke"

    def test_clean_composition_passes(self):
        composition = Composition([Echo()], name="wrapped-echo")
        result = explore(
            composition,
            environment=lambda _: (ping(0),),
            max_depth=4,
            validate=True,
        )
        assert result.states
