"""Tests for composition of automata (paper 2.5.2, Lemmas 2.2-2.4)."""

from __future__ import annotations

import pytest

from repro.ioa import (
    Action,
    Composition,
    SignatureError,
    replay_schedule,
    run_to_quiescence,
)
from .toys import Counter, Echo, Forwarder, Nondet, ping, pong


@pytest.fixture
def pipeline():
    return Composition([Echo(), Forwarder()], name="pipeline")


class TestConstruction:
    def test_composed_signature(self, pipeline):
        # pong is Echo's output and Forwarder's input -> output of the
        # composition; ping stays an input; ack is an output.
        assert pipeline.signature.is_input(ping(1))
        assert pipeline.signature.is_output(pong(1))
        assert pipeline.signature.is_output(Action("ack", None, 1))

    def test_incompatible_components_rejected(self):
        with pytest.raises(SignatureError):
            Composition([Echo(), Echo()])

    def test_incompatible_error_names_components_and_family(self):
        with pytest.raises(SignatureError) as excinfo:
            Composition([Echo(), Echo()])
        error = excinfo.value
        assert error.kind == "compatibility"
        assert "not strongly compatible" in str(error)
        # The clashing family and both owning components are spelled out.
        assert "('pong', None)" in str(error)
        assert "'echo'" in str(error)

    def test_initial_state_is_vector(self, pipeline):
        assert pipeline.initial_state() == ((), ())

    def test_component_lookup(self, pipeline):
        assert pipeline.component_index("echo") == 0
        assert pipeline.component_index("forwarder") == 1
        with pytest.raises(KeyError):
            pipeline.component_index("nope")

    def test_component_state_access(self, pipeline):
        state = ((1,), (2,))
        assert pipeline.component_state(state, "echo") == (1,)
        patched = pipeline.with_component_state(state, "echo", (9,))
        assert patched == ((9,), (2,))


class TestSteps:
    def test_shared_action_steps_both(self, pipeline):
        state = pipeline.initial_state()
        state = pipeline.step(state, ping(1))
        assert state == ((1,), ())
        # pong(1): output of echo, input of forwarder -- both move.
        state = pipeline.step(state, pong(1))
        assert state == ((), (1,))

    def test_unknown_action_not_enabled(self, pipeline):
        assert pipeline.transitions(pipeline.initial_state(), Action("zzz")) == ()

    def test_disabled_in_one_owner_blocks(self, pipeline):
        # pong(1) requires echo to have 1 queued.
        assert pipeline.transitions(pipeline.initial_state(), pong(1)) == ()

    def test_nondeterministic_component_product(self):
        composed = Composition([Nondet()])
        posts = composed.transitions(
            composed.initial_state(), Action("flip")
        )
        assert set(posts) == {("heads",), ("tails",)}

    def test_enabled_locals_union(self, pipeline):
        state = ((1,), (2,))
        enabled = set(pipeline.enabled_local_actions(state))
        assert enabled == {pong(1), Action("ack", None, 2)}

    def test_task_of_owned_actions(self, pipeline):
        assert pipeline.task_of(pong(1))[0] == 0
        assert pipeline.task_of(Action("ack", None, 3))[0] == 1
        with pytest.raises(KeyError):
            pipeline.task_of(ping(1))

    def test_tasks_enumeration(self, pipeline):
        tasks = list(pipeline.tasks())
        assert len(tasks) == 2


class TestProjection:
    """Lemma 2.2: projections of executions are component executions."""

    def test_projection_is_component_execution(self, pipeline):
        fragment = replay_schedule(
            pipeline,
            pipeline.initial_state(),
            [ping(1), ping(2), pong(1), Action("ack", None, 1), pong(2)],
        )
        echo_part = pipeline.project_execution(fragment, 0)
        forwarder_part = pipeline.project_execution(fragment, 1)
        assert echo_part.is_valid_for(pipeline.components[0])
        assert forwarder_part.is_valid_for(pipeline.components[1])
        # Echo does not see ack actions.
        assert all(a.name != "ack" for a in echo_part.actions)

    def test_project_schedule(self, pipeline):
        schedule = (ping(1), pong(1), Action("ack", None, 1))
        assert pipeline.project_schedule(schedule, 0) == (ping(1), pong(1))
        assert pipeline.project_schedule(schedule, 1) == (
            pong(1),
            Action("ack", None, 1),
        )


class TestFairRuns:
    def test_pipeline_drains_fairly(self, pipeline):
        state = pipeline.step(pipeline.initial_state(), ping(7))
        fragment = run_to_quiescence(pipeline, state)
        names = [a.name for a in fragment.actions]
        assert names == ["pong", "ack"]

    def test_independent_counters_both_progress(self):
        # Fairness must serve both components' tasks.
        c1, c2 = Counter(3, tag="tick1"), Counter(5, tag="tick2")
        composed = Composition([c1, c2])
        fragment = run_to_quiescence(composed, composed.initial_state())
        assert fragment.final_state == (0, 0)
        assert len(fragment) == 8
