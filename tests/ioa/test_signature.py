"""Tests for action signatures and their composition (paper 2.1, 2.5.1)."""

from __future__ import annotations

import pytest

from repro.ioa import (
    Action,
    ActionSignature,
    SignatureError,
    compatibility_conflicts,
    compose_signatures,
    strongly_compatible,
)

A = ("a", None)
B = ("b", None)
C = ("c", None)
D = ("d", None)


def sig(inputs=(), outputs=(), internals=()):
    return ActionSignature.make(inputs, outputs, internals)


class TestClassification:
    def test_disjointness_enforced(self):
        with pytest.raises(SignatureError):
            sig(inputs=[A], outputs=[A])
        with pytest.raises(SignatureError):
            sig(inputs=[A], internals=[A])
        with pytest.raises(SignatureError):
            sig(outputs=[A], internals=[A])

    def test_classify(self):
        signature = sig(inputs=[A], outputs=[B], internals=[C])
        assert signature.classify(Action("a")) == "input"
        assert signature.classify(Action("b")) == "output"
        assert signature.classify(Action("c")) == "internal"
        assert signature.classify(Action("d")) is None

    def test_classification_ignores_payload(self):
        signature = sig(inputs=[A])
        assert signature.is_input(Action("a", None, 1))
        assert signature.is_input(Action("a", None, "anything"))

    def test_classification_respects_direction(self):
        directed = ("a", ("t", "r"))
        signature = sig(inputs=[directed])
        assert signature.is_input(Action("a", ("t", "r")))
        assert not signature.is_input(Action("a", ("r", "t")))
        assert not signature.is_input(Action("a"))

    def test_external_and_local(self):
        signature = sig(inputs=[A], outputs=[B], internals=[C])
        assert signature.is_external(Action("a"))
        assert signature.is_external(Action("b"))
        assert not signature.is_external(Action("c"))
        assert signature.is_local(Action("b"))
        assert signature.is_local(Action("c"))
        assert not signature.is_local(Action("a"))

    def test_derived_sets(self):
        signature = sig(inputs=[A], outputs=[B], internals=[C])
        assert signature.external == {A, B}
        assert signature.local == {B, C}
        assert signature.all_families == {A, B, C}

    def test_external_signature(self):
        signature = sig(inputs=[A], outputs=[B], internals=[C])
        assert not signature.is_external_signature()
        external = signature.external_signature()
        assert external.is_external_signature()
        assert external.inputs == {A}
        assert external.outputs == {B}


class TestHiding:
    def test_hide_moves_outputs_to_internal(self):
        signature = sig(outputs=[A, B]).hide([A])
        assert signature.is_internal(Action("a"))
        assert signature.is_output(Action("b"))

    def test_hide_rejects_non_outputs(self):
        with pytest.raises(SignatureError):
            sig(inputs=[A]).hide([A])


class TestCompatibility:
    def test_shared_output_incompatible(self):
        assert not strongly_compatible([sig(outputs=[A]), sig(outputs=[A])])

    def test_internal_leak_incompatible(self):
        assert not strongly_compatible([sig(internals=[A]), sig(inputs=[A])])

    def test_input_sharing_is_fine(self):
        assert strongly_compatible([sig(inputs=[A]), sig(inputs=[A])])

    def test_output_to_input_is_fine(self):
        assert strongly_compatible([sig(outputs=[A]), sig(inputs=[A])])

    def test_empty_collection_compatible(self):
        assert strongly_compatible([])


class TestComposition:
    def test_output_beats_input(self):
        # An action that is an output of one component and input of
        # another is an output of the composition.
        composed = compose_signatures([sig(outputs=[A]), sig(inputs=[A])])
        assert composed.is_output(Action("a"))
        assert not composed.is_input(Action("a"))

    def test_unmatched_inputs_stay_inputs(self):
        composed = compose_signatures([sig(inputs=[A]), sig(outputs=[B])])
        assert composed.is_input(Action("a"))

    def test_internals_union(self):
        composed = compose_signatures(
            [sig(internals=[C]), sig(internals=[D])]
        )
        assert composed.is_internal(Action("c"))
        assert composed.is_internal(Action("d"))

    def test_incompatible_raises(self):
        with pytest.raises(SignatureError):
            compose_signatures([sig(outputs=[A]), sig(outputs=[A])])

    def test_empty_composition(self):
        composed = compose_signatures([])
        assert not composed.all_families


class TestErrorDiagnostics:
    def test_disjointness_error_names_families(self):
        with pytest.raises(SignatureError) as excinfo:
            sig(inputs=[A, B], outputs=[A], internals=[B])
        error = excinfo.value
        assert error.kind == "disjointness"
        conflicts = dict(error.conflicts)
        assert conflicts[A] == "both an input and an output"
        assert conflicts[B] == "both an input and an internal"
        assert "('a', None)" in str(error)
        assert "('b', None)" in str(error)

    def test_compatibility_conflicts_shared_output(self):
        conflicts = compatibility_conflicts(
            [sig(outputs=[A]), sig(outputs=[A])],
            names=["left", "right"],
        )
        assert conflicts == [(A, "an output of both left and right")]

    def test_compatibility_conflicts_internal_leak(self):
        conflicts = compatibility_conflicts(
            [sig(internals=[A]), sig(inputs=[A])],
            names=["first", "second"],
        )
        (conflict,) = conflicts
        assert conflict[0] == A
        assert "internal to first" in conflict[1]
        assert "second" in conflict[1]

    def test_compatible_signatures_have_no_conflicts(self):
        assert (
            compatibility_conflicts([sig(outputs=[A]), sig(inputs=[A])])
            == []
        )

    def test_compose_error_enumerates_conflicts(self):
        with pytest.raises(SignatureError) as excinfo:
            compose_signatures([sig(outputs=[A]), sig(outputs=[A])])
        error = excinfo.value
        assert error.kind == "compatibility"
        assert error.conflicts
        assert "('a', None)" in str(error)
