"""Differential tests: the exploration engine vs. the naive reference BFS.

The engine behind :func:`repro.ioa.explore` (trace-free parent-pointer
frontiers, state interning, memoized composition stepping, optional
parallel layers) must be observationally identical to the original
naive breadth-first search, kept behind ``explore(engine="reference")``:
same reachable-state set, same ``truncated`` flag, and a counterexample
of the same (layer-minimal) length that actually replays on the
automaton.  These tests check that across the toy automata and the
protocol zoo's closed systems, including the reordering-boundary
counterexample cases.
"""

from __future__ import annotations

import pytest

from repro.ioa import Composition, explore
from repro.ioa.engine import InternTable, explore_parallel
from repro.analysis.model_check import build_closed_system
from repro.protocols import (
    alternating_bit_protocol,
    direct_protocol,
    eager_protocol,
    fragmenting_protocol,
    modulo_stenning_protocol,
    sliding_window_protocol,
    stenning_protocol,
)

from .toys import Counter, Echo, Forwarder, Nondet, ping


def assert_equivalent(automaton_factory, reference_factory=None, **kwargs):
    """Run both explorers and compare the full result contract.

    Factories (not shared instances) keep the two runs honest: neither
    explorer sees caches warmed by the other.  Returns (engine result,
    reference result) for extra assertions.
    """
    reference_factory = reference_factory or automaton_factory
    engine = explore(automaton_factory(), **kwargs)
    kwargs.pop("workers", None)
    reference = explore(reference_factory(), engine="reference", **kwargs)
    assert engine.states == reference.states
    assert engine.truncated == reference.truncated
    assert (engine.violation is None) == (reference.violation is None)
    if engine.violation is not None:
        engine_state, engine_trace = engine.violation
        reference_state, reference_trace = reference.violation
        # BFS layer structure forces equal (minimal) counterexample
        # lengths; the violating state may differ only if several
        # violations share a layer.
        assert len(engine_trace) == len(reference_trace)
        assert_trace_reaches(automaton_factory(), engine_trace, engine_state)
    return engine, reference


def assert_trace_reaches(automaton, trace, target):
    """The trace must be executable and able to end in ``target``."""
    states = {automaton.initial_state()}
    for action in trace:
        states = {
            successor
            for state in states
            for successor in automaton.transitions(state, action)
        }
        assert states, f"action {action} not enabled anywhere along trace"
    assert target in states


class TestToyDifferential:
    def test_counter(self):
        assert_equivalent(lambda: Counter(25))

    def test_counter_violation(self):
        engine, _ = assert_equivalent(
            lambda: Counter(10), invariant=lambda s: s != 3
        )
        assert engine.violation[0] == 3
        assert len(engine.violation[1]) == 7

    def test_violation_at_start(self):
        engine, _ = assert_equivalent(
            lambda: Counter(5), invariant=lambda s: s != 5
        )
        assert engine.violation == (5, ())

    def test_nondet(self):
        assert_equivalent(Nondet)

    def test_echo_with_environment(self):
        environment = lambda s: [ping(len(s))] if len(s) < 4 else []
        assert_equivalent(Echo, environment=environment)

    def test_toy_composition(self):
        factory = lambda: Composition([Echo(), Forwarder()])
        environment = lambda s: [ping(len(s[0]))] if len(s[0]) < 3 else []
        engine, _ = assert_equivalent(factory, environment=environment)
        assert ((), ()) in engine.states

    def test_toy_composition_memoized(self):
        factory = lambda: Composition([Echo(), Forwarder()], memoize=True)
        environment = lambda s: [ping(len(s[0]))] if len(s[0]) < 3 else []
        assert_equivalent(factory, environment=environment)

    def test_max_states_truncation(self):
        engine, reference = assert_equivalent(
            lambda: Counter(100), max_states=10
        )
        assert engine.truncated
        # Budget contract: the search stops at the budget, immediately.
        assert len(engine.states) == 10

    def test_max_depth_truncation(self):
        engine, _ = assert_equivalent(lambda: Counter(100), max_depth=5)
        assert engine.truncated
        assert engine.states == {100, 99, 98, 97, 96, 95}


ZOO = {
    "abp": (alternating_bit_protocol, 1),
    "sliding-window-2": (lambda: sliding_window_protocol(2), 1),
    "stenning": (stenning_protocol, 1),
    "fragmenting": (lambda: fragmenting_protocol(chunk=1, max_fragments=2), 1),
    "eager": (eager_protocol, 1),
    "direct": (direct_protocol, 1),
    "abp-reorder-2": (alternating_bit_protocol, 2),
    "mod4-reorder-2": (lambda: modulo_stenning_protocol(4), 2),
}


class TestZooDifferential:
    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_closed_system_equivalence(self, name):
        protocol_factory, reorder_depth = ZOO[name]

        def build(memoize):
            composition, invariant, _ = build_closed_system(
                protocol_factory(),
                messages=2,
                capacity=2,
                reorder_depth=reorder_depth,
                memoize=memoize,
            )
            return composition, invariant

        composition, invariant = build(memoize=False)
        engine = explore(
            composition, invariant=invariant, max_depth=10_000_000
        )
        ref_composition, ref_invariant = build(memoize=False)
        reference = explore(
            ref_composition,
            invariant=ref_invariant,
            max_depth=10_000_000,
            engine="reference",
        )
        assert engine.states == reference.states
        assert engine.truncated == reference.truncated
        assert (engine.violation is None) == (reference.violation is None)
        if engine.violation is not None:
            state, trace = engine.violation
            assert len(trace) == len(reference.violation[1])
            replay_composition, _ = build(memoize=False)
            assert_trace_reaches(replay_composition, trace, state)

    def test_budget_truncation_equivalence(self):
        def build():
            composition, invariant, _ = build_closed_system(
                sliding_window_protocol(2), messages=2, capacity=2
            )
            return composition, invariant

        composition, invariant = build()
        engine = explore(composition, invariant=invariant, max_states=500)
        ref_composition, ref_invariant = build()
        reference = explore(
            ref_composition,
            invariant=ref_invariant,
            max_states=500,
            engine="reference",
        )
        assert engine.truncated and reference.truncated
        assert len(engine.states) == 500
        assert engine.states == reference.states


class TestParallelFrontier:
    """workers=N shards layers but must stay observationally serial."""

    def test_parallel_equivalence(self):
        composition, invariant, _ = build_closed_system(
            sliding_window_protocol(2), messages=2, capacity=2
        )
        serial = explore(
            composition, invariant=invariant, max_depth=10_000_000
        )
        par_composition, par_invariant, _ = build_closed_system(
            sliding_window_protocol(2), messages=2, capacity=2
        )
        parallel = explore(
            par_composition,
            invariant=par_invariant,
            max_depth=10_000_000,
            workers=2,
        )
        assert parallel.states == serial.states
        assert parallel.truncated == serial.truncated
        assert parallel.violation is None and serial.violation is None

    def test_parallel_counterexample_minimality(self):
        composition, invariant, _ = build_closed_system(
            eager_protocol(), messages=2, capacity=2
        )
        serial = explore(
            composition, invariant=invariant, max_depth=10_000_000
        )
        par_composition, par_invariant, _ = build_closed_system(
            eager_protocol(), messages=2, capacity=2
        )
        parallel = explore(
            par_composition,
            invariant=par_invariant,
            max_depth=10_000_000,
            workers=2,
        )
        assert serial.violation is not None
        assert parallel.violation is not None
        # Layer-merge barrier preserves BFS-shortest counterexamples.
        assert len(parallel.violation[1]) == len(serial.violation[1])

    def test_small_frontiers_fall_back_to_serial(self):
        # Forcing the threshold to 0 exercises the pool path even on a
        # tiny space; a huge threshold exercises the in-process path.
        result_pooled = explore_parallel(
            Counter(20), workers=2, parallel_threshold=0
        )
        result_serial = explore_parallel(
            Counter(20), workers=2, parallel_threshold=10_000
        )
        assert result_pooled.states == result_serial.states == set(range(21))


class TestCompositionCaches:
    """The satellite caches: name->index, task_of owners, memoization."""

    def test_component_index_lookup(self):
        composition = Composition([Echo(), Forwarder()])
        assert composition.component_index("echo") == 0
        assert composition.component_index("forwarder") == 1
        with pytest.raises(KeyError, match="found 0"):
            composition.component_index("missing")

    def test_component_index_duplicate_names(self):
        first, second = Counter(3, tag="a"), Counter(3, tag="b")
        first.name = second.name = "twin"
        composition = Composition([first, second])
        with pytest.raises(KeyError, match="found 2"):
            composition.component_index("twin")

    def test_task_of_owner_map(self):
        from repro.ioa.actions import Action

        composition = Composition([Echo(), Forwarder()])
        assert composition.task_of(Action("pong", None, 1)) == (
            0,
            ("echo", "main"),
        )
        assert composition.task_of(Action("ack", None, 1)) == (
            1,
            ("forwarder", "main"),
        )
        with pytest.raises(KeyError):
            composition.task_of(Action("ping", None, 1))

    def test_memoized_stepping_matches_uncached(self):
        plain = Composition([Echo(), Forwarder()])
        cached = Composition([Echo(), Forwarder()], memoize=True)
        state = ((1, 2), (7,))
        from repro.ioa.actions import Action

        for action in [
            Action("pong", None, 1),
            Action("pong", None, 9),
            Action("ack", None, 7),
            Action("ping", None, 3),
        ]:
            for _ in range(2):  # second round hits the caches
                assert cached.transitions(state, action) == plain.transitions(
                    state, action
                )
                assert tuple(cached.enabled_local_actions(state)) == tuple(
                    plain.enabled_local_actions(state)
                )


class TestInternTable:
    def test_dense_first_come_ids(self):
        table = InternTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0
        assert table.values == ["a", "b"]
        assert len(table) == 2
        assert "a" in table and "c" not in table
        assert table.get("c") is None


class TestFuzzSeedDifferential:
    """Fuzz-discovered sub-seeds become differential fixtures.

    A short pinned campaign donates its per-run :class:`SubSeeds`; each
    one reconstructs the exact seeded permissive-channel adversary the
    fuzzer drove, closed with a scripted environment.  Both engines
    must then agree on the reachable-state set under a shared
    ``max_states`` budget (permissive counters grow without bound under
    eager retransmission, so the budget is what keeps the space
    finite -- this leans on the truncation-equivalence contract).
    """

    @staticmethod
    def discovered_subseeds():
        from repro.conformance import FuzzConfig, fuzz_campaign

        campaign = fuzz_campaign(
            "alternating_bit", "fifo", 11, FuzzConfig(runs=2, shrink=False)
        )
        return [run.subseeds for run in campaign.runs]

    @staticmethod
    def build_fuzz_seeded_system(subseeds):
        from repro.alphabets import MessageFactory
        from repro.analysis import ScriptedEnvironment
        from repro.conformance import FuzzConfig, resolve_fuzz_channel

        config = FuzzConfig()
        build_channel = resolve_fuzz_channel("fifo")

        def channel(src, dst, seed):
            return build_channel(
                src,
                dst,
                seed,
                config.loss_rate,
                config.reorder_window,
                config.horizon,
            )

        transmitter, receiver = alternating_bit_protocol().build(
            "t", "r", ghost_uids=False
        )
        batch = MessageFactory(label="v").fresh_many(2)
        return Composition(
            [
                transmitter,
                receiver,
                channel("t", "r", subseeds.channel_tr),
                channel("r", "t", subseeds.channel_rt),
                ScriptedEnvironment("t", "r", batch),
            ],
            name="fuzz-seeded",
        )

    @pytest.mark.parametrize("index", [0, 1])
    def test_engines_agree_on_fuzz_discovered_seed(self, index):
        subseeds = self.discovered_subseeds()[index]
        engine = explore(
            self.build_fuzz_seeded_system(subseeds), max_states=400
        )
        reference = explore(
            self.build_fuzz_seeded_system(subseeds),
            max_states=400,
            engine="reference",
        )
        assert len(engine.states) > 1
        assert engine.states == reference.states
        assert engine.truncated == reference.truncated
        assert (engine.violation is None) == (reference.violation is None)
