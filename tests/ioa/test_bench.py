"""Regression tests for the exploration benchmark's verdict table.

``bench/BENCH_explore.json`` once recorded abp-reorder-2 as
``"ok": false`` with no explanation -- an expected failure (the
alternating-bit protocol is provably broken under depth-2 reordering)
indistinguishable from a real engine regression.  The case table now
carries ``expected_ok`` and the benchmark raises when any verdict
drifts from its expectation.
"""

from __future__ import annotations

import pytest

from repro.ioa.engine.bench import DEFAULT_CASES, run_bench


def test_every_case_declares_its_expected_verdict():
    expectations = {key: expected for key, _, _, _, _, expected in DEFAULT_CASES}
    assert expectations["abp-reorder-2"] is False
    assert all(
        expected for key, expected in expectations.items()
        if key != "abp-reorder-2"
    )


def test_bench_verdicts_match_expectations():
    report = run_bench(repeats=1)
    expectations = {key: expected for key, _, _, _, _, expected in DEFAULT_CASES}
    assert set(report["protocols"]) == set(expectations)
    for key, row in report["protocols"].items():
        assert row["ok"] == row["expected_ok"] == expectations[key]
        if row["expected_ok"]:
            assert row["note"] is None
        else:
            assert "expected failure" in row["note"]


def test_drifted_verdict_raises():
    # Flip abp's expectation: the differential run must refuse to
    # report a verdict that contradicts the case table.
    cases = tuple(
        (key, spec, m, c, d, not expected) if key == "abp" else
        (key, spec, m, c, d, expected)
        for key, spec, m, c, d, expected in DEFAULT_CASES[:1]
    )
    with pytest.raises(AssertionError, match="expected_ok"):
        run_bench(cases=cases, repeats=1)
