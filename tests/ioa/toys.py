"""Tiny I/O automata used by the framework tests."""

from __future__ import annotations

from typing import Iterable

from repro.ioa import Action, ActionSignature, Automaton


PING = ("ping", None)
PONG = ("pong", None)
TICK = ("tick", None)


def ping(n: int = None) -> Action:
    return Action("ping", None, n)


def pong(n: int = None) -> Action:
    return Action("pong", None, n)


def tick() -> Action:
    return Action("tick")


class Echo(Automaton):
    """Input ``ping(n)`` -> output ``pong(n)`` once each, FIFO."""

    name = "echo"

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(inputs=[PING], outputs=[PONG])

    def initial_state(self):
        return ()

    def transitions(self, state, action):
        if action.name == "ping":
            return (state + (action.payload,),)
        if action.name == "pong":
            if state and state[0] == action.payload:
                return (state[1:],)
            return ()
        return ()

    def enabled_local_actions(self, state) -> Iterable[Action]:
        if state:
            yield pong(state[0])


class Counter(Automaton):
    """Counts down from its start value via internal tick actions.

    ``tag`` names the internal action, so several counters can compose
    (internal actions must be private to their automaton).
    """

    def __init__(self, start: int = 3, tag: str = "tick"):
        self.start = start
        self.tag = tag
        self.name = f"counter[{tag}]"

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(internals=[(self.tag, None)])

    def initial_state(self):
        return self.start

    def transitions(self, state, action):
        if action.name == self.tag and state > 0:
            return (state - 1,)
        return ()

    def enabled_local_actions(self, state) -> Iterable[Action]:
        if state > 0:
            yield Action(self.tag)


class Forwarder(Automaton):
    """Input ``pong(n)`` -> output ``ack(n)``; composes after Echo."""

    name = "forwarder"

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(
            inputs=[PONG], outputs=[("ack", None)]
        )

    def initial_state(self):
        return ()

    def transitions(self, state, action):
        if action.name == "pong":
            return (state + (action.payload,),)
        if action.name == "ack":
            if state and state[0] == action.payload:
                return (state[1:],)
            return ()
        return ()

    def enabled_local_actions(self, state) -> Iterable[Action]:
        if state:
            yield Action("ack", None, state[0])


class Nondet(Automaton):
    """A single output enabled forever, with two possible post-states."""

    name = "nondet"

    @property
    def signature(self) -> ActionSignature:
        return ActionSignature.make(outputs=[("flip", None)])

    def initial_state(self):
        return "start"

    def transitions(self, state, action):
        if action.name == "flip" and state == "start":
            return ("heads", "tails")
        return ()

    def enabled_local_actions(self, state) -> Iterable[Action]:
        if state == "start":
            yield Action("flip")
