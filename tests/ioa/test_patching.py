"""Tests for execution patching (Lemmas 2.3 and 2.4)."""

from __future__ import annotations

import pytest

from repro.ioa import Action, Composition, replay_schedule
from repro.ioa.patching import PatchError, patch_executions, patch_schedules
from .toys import Counter, Echo, Forwarder, ping, pong


def ack(n):
    return Action("ack", None, n)


@pytest.fixture
def pipeline():
    return Composition([Echo(), Forwarder()], name="pipeline")


def component_fragment(component, actions):
    return replay_schedule(component, component.initial_state(), actions)


class TestPatchExecutions:
    def test_basic_patch(self, pipeline):
        echo, forwarder = pipeline.components
        echo_frag = component_fragment(echo, [ping(1), pong(1)])
        fwd_frag = component_fragment(forwarder, [pong(1), ack(1)])
        behavior = [ping(1), pong(1), ack(1)]
        composed = patch_executions(
            pipeline, [echo_frag, fwd_frag], behavior
        )
        assert composed.behavior(pipeline.signature) == tuple(behavior)
        # Projections recover the original fragments (Lemma 2.3's
        # "alpha_i = alpha | A_i").
        assert pipeline.project_execution(composed, 0) == echo_frag
        assert pipeline.project_execution(composed, 1) == fwd_frag

    def test_patch_interleaves_multiple_messages(self, pipeline):
        echo, forwarder = pipeline.components
        echo_frag = component_fragment(
            echo, [ping(1), ping(2), pong(1), pong(2)]
        )
        fwd_frag = component_fragment(
            forwarder, [pong(1), pong(2), ack(1), ack(2)]
        )
        behavior = [ping(1), ping(2), pong(1), pong(2), ack(1), ack(2)]
        composed = patch_executions(
            pipeline, [echo_frag, fwd_frag], behavior
        )
        assert composed.is_valid_for(pipeline)

    def test_patch_with_internal_actions(self):
        # A counter's ticks are internal: patching must flush them even
        # though the behavior never mentions them.
        counter = Counter(2, tag="tick-internal")
        echo = Echo()
        composition = Composition([echo, counter])
        echo_frag = component_fragment(echo, [ping(5), pong(5)])
        counter_frag = replay_schedule(
            counter,
            counter.initial_state(),
            [Action("tick-internal"), Action("tick-internal")],
        )
        composed = patch_executions(
            composition, [echo_frag, counter_frag], [ping(5), pong(5)]
        )
        assert composed.final_state == ((), 0)
        assert len(composed) == 4  # 2 external + 2 internal ticks
        assert composed.is_valid_for(composition)

    def test_mismatched_projection_rejected(self, pipeline):
        echo, forwarder = pipeline.components
        echo_frag = component_fragment(echo, [ping(1), pong(1)])
        fwd_frag = component_fragment(forwarder, [])
        with pytest.raises(PatchError, match="projection"):
            patch_executions(
                pipeline, [echo_frag, fwd_frag], [ping(1), pong(1)]
            )

    def test_wrong_fragment_count_rejected(self, pipeline):
        with pytest.raises(PatchError, match="one fragment per"):
            patch_executions(pipeline, [], [])

    def test_internal_action_in_behavior_rejected(self):
        counter = Counter(1, tag="tock")
        composition = Composition([counter])
        counter_frag = replay_schedule(
            counter, counter.initial_state(), [Action("tock")]
        )
        with pytest.raises(PatchError, match="not external"):
            patch_executions(
                composition, [counter_frag], [Action("tock")]
            )


class TestPatchSchedules:
    def test_schedule_level(self, pipeline):
        composed = patch_schedules(
            pipeline,
            [[ping(1), pong(1)], [pong(1), ack(1)]],
            [ping(1), pong(1), ack(1)],
        )
        assert composed == (ping(1), pong(1), ack(1))
