"""Tests for schedule modules and the checkable ``solves`` relation."""

from __future__ import annotations

import pytest

from repro.ioa import (
    Action,
    ActionSignature,
    ModuleVerdict,
    PropertyResult,
    ScheduleModule,
    check_solves_on,
)


def has_a(schedule):
    if any(x.name == "a" for x in schedule):
        return PropertyResult.ok("has-a")
    return PropertyResult.violated("has-a", "no 'a' action")


def no_b(schedule):
    for index, action in enumerate(schedule):
        if action.name == "b":
            return PropertyResult.violated("no-b", f"'b' at {index}")
    return PropertyResult.ok("no-b")


@pytest.fixture
def module():
    signature = ActionSignature.make(
        inputs=[("a", None)], outputs=[("b", None), ("c", None)]
    )
    return ScheduleModule("test", signature, [has_a], [no_b])


A, B, C = Action("a"), Action("b"), Action("c")


class TestPropertyResult:
    def test_truthiness(self):
        assert PropertyResult.ok("x")
        assert not PropertyResult.violated("x", "w")

    def test_witness_carried(self):
        assert PropertyResult.violated("x", "boom").witness == "boom"


class TestModuleCheck:
    def test_guarantee_holds(self, module):
        verdict = module.check([A, C])
        assert verdict.in_module and not verdict.vacuous

    def test_guarantee_violated(self, module):
        verdict = module.check([A, B])
        assert not verdict.in_module
        assert [f.name for f in verdict.failures] == ["no-b"]

    def test_vacuous_membership(self, module):
        # Assumption fails -> sequence is in the module vacuously,
        # even though the guarantee is violated too.
        verdict = module.check([B])
        assert verdict.in_module and verdict.vacuous
        assert verdict.assumption_failures

    def test_contains(self, module):
        assert module.contains([A])
        assert not module.contains([A, B])

    def test_behavior_of_filters_external(self, module):
        internal_sig = ActionSignature.make(
            inputs=[("a", None)], internals=[("c", None)]
        )
        internal_module = ScheduleModule("m", internal_sig, [], [])
        assert internal_module.behavior_of([A, C]) == (A,)


class TestWeakerThan:
    def test_weaker_specification_contains_stronger(self, module):
        weaker = ScheduleModule(
            "weak", module.signature, [has_a], []
        )
        samples = [[A], [A, B], [B], [A, C]]
        assert weaker.weaker_than(module, samples)
        assert not module.weaker_than(weaker, samples)


class TestCheckSolves:
    def test_all_pass(self, module):
        ok, verdict = check_solves_on(module, [[A], [A, C]])
        assert ok and verdict is None

    def test_failure_reported(self, module):
        ok, verdict = check_solves_on(module, [[A], [A, B]])
        assert not ok
        assert isinstance(verdict, ModuleVerdict)
