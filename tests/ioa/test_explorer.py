"""Tests for the bounded state-space explorer."""

from __future__ import annotations

from repro.ioa import explore, reachable_states
from .toys import Counter, Echo, Nondet, ping


class TestExplore:
    def test_counter_reaches_all_values(self):
        counter = Counter(5)
        states = reachable_states(counter)
        assert states == set(range(6))

    def test_invariant_violation_found_with_trace(self):
        counter = Counter(5)
        result = explore(counter, invariant=lambda s: s != 2)
        assert not result.ok
        state, trace = result.violation
        assert state == 2
        assert len(trace) == 3  # three ticks from 5 to 2

    def test_invariant_checked_at_start(self):
        counter = Counter(0)
        result = explore(counter, invariant=lambda s: s != 0)
        assert not result.ok
        assert result.violation[1] == ()

    def test_environment_inputs_explored(self):
        echo = Echo()
        states = reachable_states(
            echo,
            environment=lambda s: [ping(len(s))] if len(s) < 3 else [],
        )
        # Queues of payloads (0, 1, 2 ...) up to depth 3, plus drained
        # variants.
        assert () in states
        assert (0,) in states
        assert (0, 1, 2) in states

    def test_nondeterminism_explored_exhaustively(self):
        states = reachable_states(Nondet())
        assert states == {"start", "heads", "tails"}

    def test_truncation_flag(self):
        counter = Counter(100)
        result = explore(counter, max_states=10)
        assert result.truncated
        assert len(result.states) <= 11
