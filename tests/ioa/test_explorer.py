"""Tests for the bounded state-space explorer."""

from __future__ import annotations

from repro.ioa import explore, reachable_states
from .toys import Counter, Echo, Nondet, ping


class TestExplore:
    def test_counter_reaches_all_values(self):
        counter = Counter(5)
        states = reachable_states(counter)
        assert states == set(range(6))

    def test_invariant_violation_found_with_trace(self):
        counter = Counter(5)
        result = explore(counter, invariant=lambda s: s != 2)
        assert not result.ok
        state, trace = result.violation
        assert state == 2
        assert len(trace) == 3  # three ticks from 5 to 2

    def test_invariant_checked_at_start(self):
        counter = Counter(0)
        result = explore(counter, invariant=lambda s: s != 0)
        assert not result.ok
        assert result.violation[1] == ()

    def test_environment_inputs_explored(self):
        echo = Echo()
        states = reachable_states(
            echo,
            environment=lambda s: [ping(len(s))] if len(s) < 3 else [],
        )
        # Queues of payloads (0, 1, 2 ...) up to depth 3, plus drained
        # variants.
        assert () in states
        assert (0,) in states
        assert (0, 1, 2) in states

    def test_nondeterminism_explored_exhaustively(self):
        states = reachable_states(Nondet())
        assert states == {"start", "heads", "tails"}

    def test_truncation_flag(self):
        counter = Counter(100)
        result = explore(counter, max_states=10)
        assert result.truncated
        assert len(result.states) <= 11


class TestDeprecationShims:
    """The shims must blame the *caller*, not themselves.

    ``stacklevel=2`` is only correct while the ``warnings.warn`` call
    sits directly inside the public shim; these tests pin the reported
    filename to the calling file so an added intermediate frame cannot
    silently re-point the warning at library internals.
    """

    def test_explore_reference_warning_names_caller_file(self):
        import warnings

        from repro.ioa.explorer import explore_reference

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            explore_reference(Counter(3))
        reports = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(reports) == 1
        assert reports[0].filename == __file__

    def test_scenario_report_warning_names_caller_file(self):
        import random
        import warnings

        from repro.conformance.harness import (
            FuzzConfig,
            SubSeeds,
            build_script,
            build_system,
            execute_script,
        )

        config = FuzzConfig(runs=1, messages=2)
        subseeds = SubSeeds.derive(random.Random(3))
        system = build_system("alternating_bit", "perfect", subseeds, config)
        script = build_script(system, subseeds, config)
        result = execute_script(system, script.actions, subseeds, config)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result.report(0.1, t="t", r="r")
        reports = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(reports) == 1
        assert reports[0].filename == __file__
