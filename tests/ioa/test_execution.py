"""Tests for execution fragments, schedules and behaviors (paper 2.2)."""

from __future__ import annotations

import pytest

from repro.ioa import (
    ExecutionFragment,
    TransitionError,
    external_of,
    inputs_of,
    project_schedule,
    replay_schedule,
)
from .toys import Echo, ping, pong


@pytest.fixture
def echo():
    return Echo()


def run_echo(echo, *actions):
    return replay_schedule(echo, echo.initial_state(), actions)


class TestFragmentBasics:
    def test_initial_fragment(self, echo):
        fragment = ExecutionFragment.initial(())
        assert len(fragment) == 0
        assert fragment.first_state == fragment.final_state == ()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ExecutionFragment((1, 2), ())

    def test_append(self, echo):
        fragment = ExecutionFragment.initial(()).append(ping(1), (1,))
        assert len(fragment) == 1
        assert fragment.final_state == (1,)

    def test_state_before_after(self, echo):
        fragment = run_echo(echo, ping(1), pong(1))
        assert fragment.state_before(0) == ()
        assert fragment.state_after(0) == (1,)
        assert fragment.state_after(1) == ()

    def test_schedule_and_behavior(self, echo):
        fragment = run_echo(echo, ping(1), pong(1))
        assert fragment.schedule() == (ping(1), pong(1))
        # Both actions are external for Echo.
        assert fragment.behavior(echo.signature) == (ping(1), pong(1))

    def test_extend(self, echo):
        first = run_echo(echo, ping(1))
        second = replay_schedule(echo, first.final_state, [pong(1)])
        combined = first.extend(second)
        assert combined.schedule() == (ping(1), pong(1))

    def test_extend_rejects_mismatch(self, echo):
        first = run_echo(echo, ping(1))
        other = ExecutionFragment.initial((99,))
        with pytest.raises(ValueError):
            first.extend(other)

    def test_prefix_suffix(self, echo):
        fragment = run_echo(echo, ping(1), ping(2), pong(1))
        assert fragment.prefix(1).schedule() == (ping(1),)
        assert fragment.suffix_from(1).schedule() == (ping(2), pong(1))
        assert fragment.prefix(0).schedule() == ()
        with pytest.raises(ValueError):
            fragment.prefix(4)

    def test_truncate_after(self, echo):
        fragment = run_echo(echo, ping(1), ping(2), pong(1))
        truncated = fragment.truncate_after(lambda a: a.name == "pong")
        assert truncated.schedule() == (ping(1), ping(2), pong(1))
        assert fragment.truncate_after(lambda a: a.name == "zzz") is None

    def test_with_final_state(self, echo):
        fragment = run_echo(echo, ping(1))
        patched = fragment.with_final_state((42,))
        assert patched.final_state == (42,)
        assert patched.schedule() == fragment.schedule()


class TestValidation:
    def test_valid_execution(self, echo):
        fragment = run_echo(echo, ping(1), pong(1))
        assert fragment.is_valid_for(echo)
        assert fragment.is_execution_of(echo)

    def test_invalid_step_detected(self, echo):
        bogus = ExecutionFragment(((), (5,)), (pong(5),))
        assert not bogus.is_valid_for(echo)

    def test_non_start_state_not_execution(self, echo):
        fragment = ExecutionFragment.initial((1,))
        assert not fragment.is_execution_of(echo)


class TestReplay:
    def test_replay_raises_on_disabled(self, echo):
        with pytest.raises(TransitionError):
            run_echo(echo, pong(1))  # nothing to echo yet

    def test_replay_fifo_order_enforced(self, echo):
        with pytest.raises(TransitionError):
            run_echo(echo, ping(1), ping(2), pong(2))


class TestScheduleHelpers:
    def test_project_schedule(self, echo):
        from repro.ioa import Action

        foreign = Action("elsewhere")
        schedule = (ping(1), foreign, pong(1))
        assert project_schedule(schedule, echo.signature) == (
            ping(1),
            pong(1),
        )

    def test_inputs_of(self, echo):
        schedule = (ping(1), pong(1))
        assert inputs_of(schedule, echo.signature) == (ping(1),)

    def test_external_of(self, echo):
        schedule = (ping(1), pong(1))
        assert external_of(schedule, echo.signature) == schedule
