"""End-to-end integration tests tying the layers together.

These tests walk the paper's narrative: Lemma 4.1 (one message over a
solved WDL), the universal-channel claims, the two theorems applied to
the protocol families, and the Section 9 header-growth contrast.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabets import MessageFactory
from repro.analysis import check_datalink_trace, measure_header_growth
from repro.channels import DeliverySet, PermissiveFifoChannel
from repro.impossibility import (
    EngineError,
    refute_bounded_headers,
    refute_crash_tolerance,
)
from repro.protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    sliding_window_protocol,
    stenning_protocol,
)
from repro.sim import DataLinkSystem, delivery_stats, fifo_system


class TestLemma41:
    """Any automaton solving WDL has the canonical one-message behavior."""

    @pytest.mark.parametrize(
        "factory",
        [
            alternating_bit_protocol,
            lambda: sliding_window_protocol(2),
            stenning_protocol,
            baratz_segall_protocol,
        ],
    )
    def test_one_message_behavior(self, factory):
        system = fifo_system(factory())
        message = MessageFactory().fresh()
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[
                system.wake_t(),
                system.wake_r(),
                system.send(message),
            ],
        )
        behavior = system.behavior(fragment)
        assert behavior == (
            system.wake_t(),
            system.wake_r(),
            system.send(message),
            system.receive(message),
        )


class TestTheoremBoundaries:
    """The exact boundary of each theorem, walked from both sides."""

    def test_crash_theorem_boundary(self):
        # Inside the hypotheses: defeated.
        assert refute_crash_tolerance(
            alternating_bit_protocol()
        ).validate()
        # Outside (non-volatile memory): rejected.
        with pytest.raises(EngineError):
            refute_crash_tolerance(baratz_segall_protocol())

    def test_header_theorem_boundary(self):
        # Inside: bounded headers defeated over non-FIFO channels.
        assert refute_bounded_headers(
            sliding_window_protocol(2)
        ).validate()
        # Outside: unbounded headers (Stenning) rejected -- and indeed
        # Stenning is weakly correct over reordering channels (see the
        # correctness tests).
        with pytest.raises(EngineError):
            refute_bounded_headers(stenning_protocol())

    def test_crash_engine_handles_stenning(self):
        # Theorem 7.5 has no header hypothesis: Stenning falls too.
        assert refute_crash_tolerance(stenning_protocol()).validate()


class TestCertificateAudit:
    """Certificates audit cleanly through the independent analyzers."""

    def test_crash_certificate_full_audit(self):
        certificate = refute_crash_tolerance(alternating_bit_protocol())
        report = check_datalink_trace(certificate.behavior)
        violated = {r.name for r in report.violations}
        assert set(certificate.violated) <= violated
        # Assumption-side properties all hold.
        for name in ("DL-well-formed", "DL1", "DL2", "DL3"):
            assert report.holds(name)

    def test_header_certificate_full_audit(self):
        certificate = refute_bounded_headers(alternating_bit_protocol())
        report = check_datalink_trace(certificate.behavior)
        assert not report.holds("DL4") or not report.holds("DL5")
        for name in ("DL-well-formed", "DL1", "DL2", "DL3"):
            assert report.holds(name)


class TestSection9Contrast:
    """Unbounded headers are the price of reordering tolerance."""

    def test_header_growth_contrast(self):
        stenning_series = measure_header_growth(
            stenning_protocol(), checkpoints=(2, 4, 8)
        )
        window_series = measure_header_growth(
            sliding_window_protocol(2), checkpoints=(2, 4, 8)
        )
        assert stenning_series.slope_estimate() >= 1.0
        assert window_series.slope_estimate() < 0.5
        assert window_series.is_bounded()
        assert not stenning_series.is_bounded()


@st.composite
def adversary_delivery_sets(draw):
    """Monotone delivery sets: arbitrary FIFO loss patterns."""
    survivors = draw(
        st.lists(st.integers(1, 60), unique=True, max_size=30)
    )
    prefix = tuple(sorted(survivors))
    floor = max(prefix) if prefix else 0
    return DeliverySet(prefix, max(0, floor - len(prefix)))


class TestAdversarialChannels:
    """Property-based: protocol safety over arbitrary FIFO adversaries."""

    @given(adversary_delivery_sets(), adversary_delivery_sets())
    @settings(max_examples=25, deadline=None)
    def test_sliding_window_safe_under_any_fifo_adversary(
        self, forward, backward
    ):
        system = DataLinkSystem.build(
            sliding_window_protocol(2),
            PermissiveFifoChannel("t", "r", initial_delivery=forward),
            PermissiveFifoChannel("r", "t", initial_delivery=backward),
        )
        factory = MessageFactory()
        messages = factory.fresh_many(4)
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[system.wake_t(), system.wake_r()]
            + [system.send(m) for m in messages],
            max_steps=50_000,
        )
        behavior = system.behavior(fragment)
        report = check_datalink_trace(behavior, quiescent=True)
        # Safety always; liveness too, since the adversarial prefix is
        # finite and the tail is loss-free FIFO.
        assert report.holds("DL4")
        assert report.holds("DL5")
        assert report.holds("DL6")
        assert report.holds("DL8")

    @given(adversary_delivery_sets(), adversary_delivery_sets())
    @settings(max_examples=25, deadline=None)
    def test_stenning_safe_under_any_fifo_adversary(
        self, forward, backward
    ):
        system = DataLinkSystem.build(
            stenning_protocol(),
            PermissiveFifoChannel("t", "r", initial_delivery=forward),
            PermissiveFifoChannel("r", "t", initial_delivery=backward),
        )
        factory = MessageFactory()
        messages = factory.fresh_many(3)
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[system.wake_t(), system.wake_r()]
            + [system.send(m) for m in messages],
            max_steps=50_000,
        )
        stats = delivery_stats(fragment)
        assert stats.delivered == 3 and stats.duplicates == 0
