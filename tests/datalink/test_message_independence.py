"""Tests for message-independence machinery (paper, Section 5.3.1)."""

from __future__ import annotations

import pytest

from repro.alphabets import Message, Packet
from repro.datalink import (
    Renaming,
    actions_equivalent,
    check_message_independence,
    equivalent,
    headers_of,
    packet_class,
    send_msg,
    states_equivalent,
    wildcard_form,
)
from repro.datalink.protocol import HostState
from repro.protocols import (
    alternating_bit_protocol,
    message_peeking_protocol,
    sliding_window_protocol,
    stenning_protocol,
)

M1, M2, M3 = Message(1), Message(2), Message(3)


class TestRenaming:
    def test_bind_and_apply(self):
        rho = Renaming()
        rho.bind(M1, M2)
        assert rho.apply(M1) == M2
        assert rho.apply(M3) == M3

    def test_rebind_same_target_ok(self):
        rho = Renaming()
        rho.bind(M1, M2)
        rho.bind(M1, M2)
        assert len(rho) == 1

    def test_rebind_different_target_rejected(self):
        rho = Renaming()
        rho.bind(M1, M2)
        with pytest.raises(ValueError):
            rho.bind(M1, M3)

    def test_inverse(self):
        rho = Renaming({M1: M2})
        assert rho.inverse().apply(M2) == M1

    def test_inverse_of_non_injective_rejected(self):
        rho = Renaming({M1: M3, M2: M3})
        with pytest.raises(ValueError):
            rho.inverse()


class TestEquivalence:
    def test_action_equivalence_via_renaming(self):
        rho = Renaming({M1: M2})
        assert actions_equivalent(
            send_msg("t", "r", M1), send_msg("t", "r", M2), rho
        )

    def test_action_equivalence_requires_same_key(self):
        rho = Renaming({M1: M2})
        assert not actions_equivalent(
            send_msg("t", "r", M1), send_msg("r", "t", M2), rho
        )

    def test_uid_ignored_in_action_equivalence(self):
        from repro.channels import send_pkt

        rho = Renaming({M1: M2})
        a = send_pkt("t", "r", Packet("H", (M1,), uid=3))
        b = send_pkt("t", "r", Packet("H", (M2,), uid=9))
        assert actions_equivalent(a, b, rho)

    def test_state_equivalence_ignores_uid_counter(self):
        rho = Renaming({M1: M2})
        s1 = HostState(core=(M1,), uid_counter=5)
        s2 = HostState(core=(M2,), uid_counter=99)
        assert states_equivalent(s1, s2, rho)

    def test_state_equivalence_requires_structure(self):
        rho = Renaming({M1: M2})
        assert not states_equivalent(
            HostState(core=(M1, "x")), HostState(core=(M2, "y")), rho
        )


class TestWildcardEquivalence:
    def test_all_messages_equivalent(self):
        assert equivalent(M1, M2)

    def test_structure_matters(self):
        assert not equivalent((M1, 1), (M2, 2))
        assert equivalent((M1, 1), (M2, 1))

    def test_packet_class(self):
        assert packet_class(Packet("H", (M1,), uid=1)) == packet_class(
            Packet("H", (M2,), uid=2)
        )
        assert packet_class(Packet("H")) != packet_class(
            Packet("H", (M1,))
        )

    def test_wildcard_form_erases_uids(self):
        a = wildcard_form(Packet("H", (M1,), uid=1))
        b = wildcard_form(Packet("H", (M2,), uid=2))
        assert a == b


class TestHeadersOf:
    def test_bounded_protocol(self):
        headers = headers_of(alternating_bit_protocol())
        assert headers is not None
        assert len(headers) == 8  # 4 headers x 2 arities

    def test_unbounded_protocol(self):
        assert headers_of(stenning_protocol()) is None


class TestIndependenceChecker:
    @pytest.mark.parametrize(
        "factory",
        [
            alternating_bit_protocol,
            lambda: sliding_window_protocol(2),
            stenning_protocol,
        ],
    )
    def test_honest_protocols_pass(self, factory):
        report = check_message_independence(factory())
        assert report.independent, report.detail

    def test_peeking_protocol_rejected(self):
        report = check_message_independence(message_peeking_protocol())
        assert not report.independent
