"""Tests for the DL / WDL schedule modules (paper, Section 4)."""

from __future__ import annotations

import random


from repro.alphabets import Message
from repro.channels import crash, fail, wake
from repro.datalink import (
    dl_module,
    receive_msg,
    send_msg,
    wdl_module,
)

T, R = "t", "r"
M = [Message(i) for i in range(8)]


def good_trace():
    return [
        wake(T, R),
        wake(R, T),
        send_msg(T, R, M[0]),
        receive_msg(T, R, M[0]),
    ]


class TestDlModule:
    def test_good_trace_accepted(self):
        assert dl_module(T, R).contains(good_trace())

    def test_duplicate_rejected(self):
        trace = good_trace() + [receive_msg(T, R, M[0])]
        verdict = dl_module(T, R).check(trace)
        assert not verdict.in_module
        assert any(f.name == "DL4" for f in verdict.failures)

    def test_unsent_rejected(self):
        trace = good_trace() + [receive_msg(T, R, M[5])]
        verdict = dl_module(T, R).check(trace)
        assert any(f.name == "DL5" for f in verdict.failures)

    def test_reorder_rejected_by_dl_only(self):
        trace = [
            wake(T, R),
            wake(R, T),
            send_msg(T, R, M[0]),
            send_msg(T, R, M[1]),
            receive_msg(T, R, M[1]),
            receive_msg(T, R, M[0]),
        ]
        assert not dl_module(T, R).contains(trace)
        # WDL has no FIFO requirement.
        assert wdl_module(T, R).contains(trace)

    def test_gap_rejected_by_dl_only(self):
        trace = [
            wake(T, R),
            wake(R, T),
            send_msg(T, R, M[0]),
            send_msg(T, R, M[1]),
            receive_msg(T, R, M[1]),
        ]
        assert not dl_module(T, R).contains(trace)  # DL7 and DL8
        # WDL still requires liveness (DL8) on quiescent traces.
        assert not wdl_module(T, R).contains(trace)
        assert wdl_module(T, R, quiescent=False).contains(trace)

    def test_assumption_violation_is_vacuous(self):
        trace = [send_msg(T, R, M[0])]  # DL2 fails (no wake)
        verdict = dl_module(T, R).check(trace)
        assert verdict.in_module and verdict.vacuous


class TestWeakening:
    """``scheds(DL) <= scheds(WDL)`` (paper, Section 4), sampled."""

    def _random_traces(self, count=200, seed=0):
        rng = random.Random(seed)
        traces = []
        for _ in range(count):
            trace = []
            available = list(M)
            sent = []
            for _ in range(rng.randrange(1, 12)):
                kind = rng.randrange(6)
                if kind == 0:
                    trace.append(wake(T, R))
                elif kind == 1:
                    trace.append(wake(R, T))
                elif kind == 2:
                    trace.append(fail(T, R))
                elif kind == 3 and available:
                    trace.append(send_msg(T, R, available.pop()))
                    sent.append(trace[-1].payload)
                elif kind == 4 and sent:
                    trace.append(receive_msg(T, R, rng.choice(sent)))
                else:
                    trace.append(crash(T, R))
            traces.append(trace)
        return traces

    def test_dl_subset_wdl_on_corpus(self):
        dl = dl_module(T, R)
        wdl = wdl_module(T, R)
        assert wdl.weaker_than(dl, self._random_traces())

    def test_some_trace_separates_them(self):
        # WDL is strictly weaker: a reordered delivery separates.
        trace = [
            wake(T, R),
            wake(R, T),
            send_msg(T, R, M[0]),
            send_msg(T, R, M[1]),
            receive_msg(T, R, M[1]),
            receive_msg(T, R, M[0]),
        ]
        assert wdl_module(T, R).contains(trace)
        assert not dl_module(T, R).contains(trace)
