"""Property tests: the trace checkers against brute-force oracles.

Each paper property has an obvious quadratic-time definition-chasing
implementation; hypothesis generates random data-link traces and checks
that the optimized predicates agree with the oracles exactly.
"""

from __future__ import annotations

from typing import List, Sequence

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabets import Message
from repro.channels import crash, fail, wake
from repro.datalink import dl3, dl4, dl5, dl6, dl7, receive_msg, send_msg
from repro.datalink.actions import RECEIVE_MSG, SEND_MSG
from repro.ioa.actions import Action
from repro.channels.properties import working_intervals

T, R = "t", "r"
POOL = [Message(i) for i in range(5)]


@st.composite
def dl_traces(draw, max_length: int = 14):
    """Random (not necessarily sensible) data-link traces."""
    length = draw(st.integers(0, max_length))
    trace: List[Action] = []
    for _ in range(length):
        kind = draw(st.integers(0, 5))
        if kind == 0:
            trace.append(wake(T, R))
        elif kind == 1:
            trace.append(fail(T, R))
        elif kind == 2:
            trace.append(crash(T, R))
        elif kind == 3:
            trace.append(send_msg(T, R, draw(st.sampled_from(POOL))))
        else:
            trace.append(receive_msg(T, R, draw(st.sampled_from(POOL))))
    return trace


def sends(trace: Sequence[Action]):
    return [
        (i, a.payload)
        for i, a in enumerate(trace)
        if a.key == (SEND_MSG, (T, R))
    ]


def receives(trace: Sequence[Action]):
    return [
        (i, a.payload)
        for i, a in enumerate(trace)
        if a.key == (RECEIVE_MSG, (T, R))
    ]


class TestOracles:
    @given(dl_traces())
    @settings(max_examples=300, deadline=None)
    def test_dl3_oracle(self, trace):
        payloads = [m for _, m in sends(trace)]
        oracle = len(payloads) == len(set(payloads))
        assert dl3(trace, T, R).holds == oracle

    @given(dl_traces())
    @settings(max_examples=300, deadline=None)
    def test_dl4_oracle(self, trace):
        payloads = [m for _, m in receives(trace)]
        oracle = len(payloads) == len(set(payloads))
        assert dl4(trace, T, R).holds == oracle

    @given(dl_traces())
    @settings(max_examples=300, deadline=None)
    def test_dl5_oracle(self, trace):
        oracle = all(
            any(j < i for j, m2 in sends(trace) if m2 == m)
            for i, m in receives(trace)
        )
        assert dl5(trace, T, R).holds == oracle

    @given(dl_traces())
    @settings(max_examples=300, deadline=None)
    def test_dl6_oracle(self, trace):
        """Definition-chasing FIFO: for every pair of messages with all
        four events present, send order must equal receive order."""
        send_events = sends(trace)
        receive_events = receives(trace)

        def first_send(m):
            return next((i for i, m2 in send_events if m2 == m), None)

        def first_receive(m):
            return next((i for i, m2 in receive_events if m2 == m), None)

        oracle = True
        messages = {m for _, m in send_events} & {
            m for _, m in receive_events
        }
        for m in messages:
            for m2 in messages:
                i1, i2 = first_send(m), first_receive(m)
                i3, i4 = first_send(m2), first_receive(m2)
                if None in (i1, i2, i3, i4):
                    continue
                if (i1 < i3) != (i2 < i4) and m != m2:
                    oracle = False
        # The optimized checker additionally considers repeated events
        # only via first occurrences, matching the oracle above on
        # traces satisfying DL3/DL4; restrict the comparison there.
        if dl3(trace, T, R).holds and dl4(trace, T, R).holds:
            assert dl6(trace, T, R).holds == oracle

    @given(dl_traces())
    @settings(max_examples=300, deadline=None)
    def test_dl7_oracle(self, trace):
        """Definition-chasing no-gaps: within one transmitter working
        interval, a delivered later send implies all earlier sends in
        that interval are delivered."""
        received_payloads = {m for _, m in receives(trace)}
        oracle = True
        for start, end in working_intervals(trace, (T, R)):
            interval_sends = [
                (i, m) for i, m in sends(trace) if start <= i < end
            ]
            for index, (i, m) in enumerate(interval_sends):
                later_delivered = any(
                    m2 in received_payloads
                    for _, m2 in interval_sends[index + 1 :]
                )
                if later_delivered and m not in received_payloads:
                    oracle = False
        if dl3(trace, T, R).holds:
            assert dl7(trace, T, R).holds == oracle
