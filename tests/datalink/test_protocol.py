"""Tests for the protocol-automaton wrappers (paper, Section 5.1)."""

from __future__ import annotations

import pytest

from repro.alphabets import Message, Packet
from repro.channels import crash, fail, receive_pkt, send_pkt, wake
from repro.datalink import (
    ReceiverAutomaton,
    TransmitterAutomaton,
    receive_msg,
    send_msg,
)
from repro.protocols.alternating_bit import (
    AbpReceiver,
    AbpTransmitter,
    alternating_bit_protocol,
)

T, R = "t", "r"
M1, M2 = Message(1), Message(2)


@pytest.fixture
def transmitter():
    return TransmitterAutomaton(T, R, AbpTransmitter())


@pytest.fixture
def receiver():
    return ReceiverAutomaton(T, R, AbpReceiver())


class TestSignatures:
    def test_transmitter_signature(self, transmitter):
        sig = transmitter.signature
        assert sig.is_input(send_msg(T, R, M1))
        assert sig.is_input(receive_pkt(R, T, Packet("x")))
        assert sig.is_input(wake(T, R))
        assert sig.is_input(fail(T, R))
        assert sig.is_input(crash(T, R))
        assert sig.is_output(send_pkt(T, R, Packet("x")))
        assert not sig.contains(receive_msg(T, R, M1))

    def test_receiver_signature(self, receiver):
        sig = receiver.signature
        assert sig.is_input(receive_pkt(T, R, Packet("x")))
        assert sig.is_input(wake(R, T))
        assert sig.is_input(crash(R, T))
        assert sig.is_output(send_pkt(R, T, Packet("x")))
        assert sig.is_output(receive_msg(T, R, M1))
        assert not sig.contains(send_msg(T, R, M1))


class TestInputEnabledness:
    def test_transmitter_accepts_all_inputs_everywhere(self, transmitter):
        state = transmitter.initial_state()
        inputs = [
            send_msg(T, R, M1),
            receive_pkt(R, T, Packet(("ACK", 0), (), uid=3)),
            wake(T, R),
            fail(T, R),
            crash(T, R),
        ]
        assert transmitter.check_input_enabled(state, inputs)
        # Also in a mid-protocol state.
        state = transmitter.step(state, wake(T, R))
        state = transmitter.step(state, send_msg(T, R, M1))
        assert transmitter.check_input_enabled(state, inputs)

    def test_receiver_accepts_all_inputs_everywhere(self, receiver):
        inputs = [
            receive_pkt(T, R, Packet(("DATA", 0), (M1,), uid=1)),
            wake(R, T),
            fail(R, T),
            crash(R, T),
        ]
        assert receiver.check_input_enabled(
            receiver.initial_state(), inputs
        )


class TestUidStamping:
    def test_sends_carry_fresh_uids(self, transmitter):
        state = transmitter.step(transmitter.initial_state(), wake(T, R))
        state = transmitter.step(state, send_msg(T, R, M1))
        (action,) = list(transmitter.enabled_local_actions(state))
        assert action.payload.uid == 1
        state = transmitter.step(state, action)
        (action2,) = list(transmitter.enabled_local_actions(state))
        assert action2.payload.uid == 2  # retransmission: new uid

    def test_wrong_uid_not_enabled(self, transmitter):
        state = transmitter.step(transmitter.initial_state(), wake(T, R))
        state = transmitter.step(state, send_msg(T, R, M1))
        (action,) = list(transmitter.enabled_local_actions(state))
        stale = action.with_payload(action.payload.with_uid(5))
        assert transmitter.transitions(state, stale) == ()

    def test_uid_counter_survives_crash(self, transmitter):
        state = transmitter.step(transmitter.initial_state(), wake(T, R))
        state = transmitter.step(state, send_msg(T, R, M1))
        (action,) = list(transmitter.enabled_local_actions(state))
        state = transmitter.step(state, action)
        crashed = transmitter.step(state, crash(T, R))
        assert crashed.core == transmitter.logic.initial_core()
        assert crashed.uid_counter == 1  # ghost label, not protocol memory

    def test_logic_never_sees_uids(self, receiver):
        # Deliver a packet with a uid; the receiver core must not
        # contain it anywhere (packets are stripped before the logic).
        packet = Packet(("DATA", 0), (M1,), uid=77)
        state = receiver.step(receiver.initial_state(), wake(R, T))
        state = receiver.step(state, receive_pkt(T, R, packet))
        from repro.alphabets import strip_uids

        assert strip_uids(state.core) == state.core


class TestCrashBehavior:
    def test_crash_resets_core(self, transmitter):
        state = transmitter.step(transmitter.initial_state(), wake(T, R))
        state = transmitter.step(state, send_msg(T, R, M1))
        crashed = transmitter.step(state, crash(T, R))
        assert crashed.core == transmitter.logic.initial_core()

    def test_receiver_crash_resets_core(self, receiver):
        state = receiver.step(receiver.initial_state(), wake(R, T))
        packet = Packet(("DATA", 0), (M1,), uid=1)
        state = receiver.step(state, receive_pkt(T, R, packet))
        crashed = receiver.step(state, crash(R, T))
        assert crashed.core == receiver.logic.initial_core()


class TestDeliveries:
    def test_delivery_precondition(self, receiver):
        state = receiver.step(receiver.initial_state(), wake(R, T))
        # Nothing to deliver yet.
        assert receiver.transitions(state, receive_msg(T, R, M1)) == ()
        packet = Packet(("DATA", 0), (M1,), uid=1)
        state = receiver.step(state, receive_pkt(T, R, packet))
        assert receiver.transitions(state, receive_msg(T, R, M1))
        # Only the inbox head is deliverable.
        assert receiver.transitions(state, receive_msg(T, R, M2)) == ()

    def test_tasks_split_send_and_deliver(self, receiver):
        send_task = receiver.task_of(send_pkt(R, T, Packet("x")))
        deliver_task = receiver.task_of(receive_msg(T, R, M1))
        assert send_task != deliver_task
        assert set(receiver.tasks()) == {send_task, deliver_task}


class TestProtocolContainer:
    def test_build_creates_fresh_instances(self):
        protocol = alternating_bit_protocol()
        t1, r1 = protocol.build()
        t2, r2 = protocol.build()
        assert t1 is not t2
        assert t1.logic is not t2.logic

    def test_header_space_union(self):
        protocol = alternating_bit_protocol()
        assert protocol.has_bounded_headers()
        assert len(protocol.header_space()) == 4

    def test_unbounded_header_space(self):
        from repro.protocols import stenning_protocol

        assert stenning_protocol().header_space() is None
        assert not stenning_protocol().has_bounded_headers()
