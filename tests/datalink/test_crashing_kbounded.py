"""Tests for the crashing checker (5.3.2) and k-boundedness probe (8.1)."""

from __future__ import annotations

import pytest

from repro.datalink import check_crashing, probe_k_bound
from repro.protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    sliding_window_protocol,
    stenning_protocol,
)


class TestCrashing:
    @pytest.mark.parametrize(
        "factory",
        [
            alternating_bit_protocol,
            lambda: sliding_window_protocol(2),
            stenning_protocol,
            lambda: baratz_segall_protocol(nonvolatile=False),
        ],
    )
    def test_volatile_protocols_are_crashing(self, factory):
        report = check_crashing(factory())
        assert report.crashing, report.detail
        assert report.states_checked > 4

    def test_nonvolatile_protocol_is_not_crashing(self):
        report = check_crashing(baratz_segall_protocol(nonvolatile=True))
        assert not report.crashing
        assert "start state" in report.detail

    def test_declarations_match_reality(self):
        assert not baratz_segall_protocol(nonvolatile=False).crash_resilient
        assert baratz_segall_protocol(nonvolatile=True).crash_resilient


class TestKBounded:
    def test_abp_is_small_k(self):
        report = probe_k_bound(alternating_bit_protocol())
        assert report.delivered
        assert 1 <= report.k <= 3

    def test_stenning_is_small_k(self):
        report = probe_k_bound(stenning_protocol())
        assert report.delivered
        assert report.k <= 3

    def test_sliding_window_is_small_k(self):
        report = probe_k_bound(sliding_window_protocol(4))
        assert report.delivered
        assert report.k <= 6

    def test_per_round_recorded(self):
        report = probe_k_bound(alternating_bit_protocol(), rounds=5)
        assert len(report.per_round) == 5
        assert max(report.per_round) == report.k
