"""Tests for the data-link trace properties (DL1)-(DL8) and validity."""

from __future__ import annotations


from repro.alphabets import Message
from repro.datalink import (
    dl1,
    dl2,
    dl3,
    dl4,
    dl5,
    dl6,
    dl7,
    dl8,
    dl_well_formed,
    is_valid_sequence,
    receive_msg,
    send_msg,
)
from repro.channels import crash, fail, wake

T, R = "t", "r"
M1, M2, M3 = Message(1), Message(2), Message(3)


def wt():
    return wake(T, R)


def wr():
    return wake(R, T)


def ft():
    return fail(T, R)


def fr():
    return fail(R, T)


def ct():
    return crash(T, R)


def cr():
    return crash(R, T)


def s(m):
    return send_msg(T, R, m)


def rv(m):
    return receive_msg(T, R, m)


class TestWellFormed:
    def test_both_directions_checked(self):
        assert dl_well_formed([wt(), wr()], T, R).holds
        assert not dl_well_formed([wt(), wt()], T, R).holds
        assert not dl_well_formed([wr(), wr()], T, R).holds

    def test_crashes_delimit_per_direction(self):
        # crash^{t,r} resets only the transmitter alternation.
        assert dl_well_formed([wt(), wr(), ct(), wt()], T, R).holds
        assert not dl_well_formed([wt(), wr(), ct(), wr()], T, R).holds

    def test_receiver_crash_resets_receiver(self):
        assert dl_well_formed([wt(), wr(), cr(), wr()], T, R).holds


class TestDl1:
    def test_both_unbounded_ok(self):
        assert dl1([wt(), wr()], T, R).holds

    def test_neither_unbounded_ok(self):
        assert dl1([wt(), ft(), wr(), fr()], T, R).holds

    def test_only_transmitter_unbounded_violates(self):
        result = dl1([wt(), wr(), fr()], T, R)
        assert not result.holds
        assert "transmitter" in result.witness

    def test_only_receiver_unbounded_violates(self):
        assert not dl1([wt(), wr(), ft()], T, R).holds


class TestDl2Dl3:
    def test_send_in_interval_ok(self):
        assert dl2([wt(), wr(), s(M1)], T, R).holds

    def test_send_outside_interval_violates(self):
        assert not dl2([s(M1), wt()], T, R).holds
        assert not dl2([wt(), ft(), s(M1)], T, R).holds

    def test_duplicate_send_violates_dl3(self):
        assert not dl3([wt(), s(M1), s(M1)], T, R).holds

    def test_distinct_sends_ok(self):
        assert dl3([wt(), s(M1), s(M2)], T, R).holds


class TestDl4Dl5:
    def test_single_delivery_ok(self):
        assert dl4([wt(), s(M1), rv(M1)], T, R).holds

    def test_duplicate_delivery_violates(self):
        result = dl4([wt(), s(M1), rv(M1), rv(M1)], T, R)
        assert not result.holds

    def test_unsent_delivery_violates_dl5(self):
        assert not dl5([wt(), rv(M1)], T, R).holds

    def test_receive_before_send_violates_dl5(self):
        assert not dl5([wt(), rv(M1), s(M1)], T, R).holds


class TestDl6:
    def test_fifo_ok(self):
        schedule = [wt(), s(M1), s(M2), rv(M1), rv(M2)]
        assert dl6(schedule, T, R).holds

    def test_reordered_delivery_violates(self):
        schedule = [wt(), s(M1), s(M2), rv(M2), rv(M1)]
        assert not dl6(schedule, T, R).holds

    def test_gap_is_dl6_clean(self):
        # DL6 alone permits losing M1 (that is DL7/DL8's business).
        schedule = [wt(), s(M1), s(M2), rv(M2)]
        assert dl6(schedule, T, R).holds


class TestDl7:
    def test_no_gaps_ok(self):
        schedule = [wt(), s(M1), s(M2), rv(M1), rv(M2)]
        assert dl7(schedule, T, R).holds

    def test_gap_within_interval_violates(self):
        schedule = [wt(), s(M1), s(M2), rv(M2)]
        result = dl7(schedule, T, R)
        assert not result.holds

    def test_gap_across_intervals_allowed(self):
        # M1 sent in an interval ended by fail: may be lost even though
        # the later M2 is delivered.
        schedule = [wt(), s(M1), ft(), wt(), s(M2), rv(M2)]
        assert dl7(schedule, T, R).holds

    def test_multiple_gaps_first_reported(self):
        schedule = [wt(), s(M1), s(M2), s(M3), rv(M3)]
        assert not dl7(schedule, T, R).holds


class TestDl8:
    def test_all_delivered_ok(self):
        schedule = [wt(), wr(), s(M1), rv(M1)]
        assert dl8(schedule, T, R).holds

    def test_undelivered_in_unbounded_interval_violates(self):
        schedule = [wt(), wr(), s(M1)]
        assert not dl8(schedule, T, R).holds

    def test_undelivered_in_bounded_interval_ok(self):
        schedule = [wt(), s(M1), ft()]
        assert dl8(schedule, T, R).holds

    def test_skipped_when_not_quiescent(self):
        schedule = [wt(), s(M1)]
        assert dl8(schedule, T, R, quiescent=False).holds

    def test_send_before_last_crash_exempt(self):
        schedule = [wt(), s(M1), ct(), wt(), s(M2), rv(M2)]
        assert dl8(schedule, T, R).holds


class TestValidity:
    def test_valid_sequence(self):
        schedule = [wt(), wr(), s(M1), rv(M1)]
        assert is_valid_sequence(schedule, T, R).holds

    def test_fail_disqualifies(self):
        schedule = [wt(), wr(), ft(), wt()]
        assert not is_valid_sequence(schedule, T, R).holds

    def test_crash_disqualifies(self):
        schedule = [wt(), wr(), ct(), wt()]
        assert not is_valid_sequence(schedule, T, R).holds

    def test_no_wake_disqualifies(self):
        assert not is_valid_sequence([], T, R).holds

    def test_lemma_8_1_sent_implies_received(self):
        # A valid sequence must deliver every message it sends.
        schedule = [wt(), wr(), s(M1)]
        assert not is_valid_sequence(schedule, T, R).holds

    def test_lemma_8_2_extension_stays_valid(self):
        # Appending send;receive of a fresh message preserves validity.
        base = [wt(), wr(), s(M1), rv(M1)]
        assert is_valid_sequence(base, T, R).holds
        extended = base + [s(M2), rv(M2)]
        assert is_valid_sequence(extended, T, R).holds

    def test_duplicate_delivery_disqualifies(self):
        schedule = [wt(), wr(), s(M1), rv(M1), rv(M1)]
        assert not is_valid_sequence(schedule, T, R).holds
