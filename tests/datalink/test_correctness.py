"""Tests for the randomized correctness harness (paper, Section 5.2)."""

from __future__ import annotations

import pytest

from repro.datalink import (
    check_over_lossy_fifo,
    check_over_reordering,
    check_protocol,
)
from repro.channels import perfect_fifo_channel
from repro.protocols import (
    alternating_bit_protocol,
    direct_protocol,
    eager_protocol,
    sliding_window_protocol,
    spontaneous_protocol,
    stenning_protocol,
)


class TestPositiveControls:
    @pytest.mark.parametrize(
        "factory",
        [
            alternating_bit_protocol,
            lambda: sliding_window_protocol(2),
            lambda: sliding_window_protocol(4),
            stenning_protocol,
        ],
    )
    def test_correct_over_lossy_fifo(self, factory):
        report = check_over_lossy_fifo(
            factory(), loss_rate=0.3, seeds=range(6), messages=8
        )
        assert report.ok, report.failures[:1]

    def test_stenning_correct_over_reordering(self):
        report = check_over_reordering(
            stenning_protocol(), seeds=range(6), messages=8
        )
        assert report.ok

    def test_heavy_loss_still_correct(self):
        report = check_over_lossy_fifo(
            alternating_bit_protocol(),
            loss_rate=0.6,
            seeds=range(4),
            messages=5,
        )
        assert report.ok


class TestNegativeControls:
    def test_direct_protocol_fails_under_loss(self):
        report = check_over_lossy_fifo(
            direct_protocol(), loss_rate=0.4, seeds=range(6), messages=8
        )
        assert not report.ok
        failure = report.failures[0]
        # The failure must be a liveness (DL8) violation.
        assert any(
            f.name == "DL8" for f in failure.verdict.failures
        ) or not failure.quiescent

    def test_abp_fails_over_reordering(self):
        report = check_over_reordering(
            alternating_bit_protocol(), seeds=range(8), messages=10
        )
        assert not report.ok

    def test_sliding_window_fails_over_reordering(self):
        report = check_over_reordering(
            sliding_window_protocol(2), seeds=range(8), messages=10
        )
        assert not report.ok

    def test_spontaneous_protocol_violates_dl5(self):
        report = check_protocol(
            spontaneous_protocol(),
            lambda src, dst, seed: perfect_fifo_channel(src, dst),
            seeds=range(2),
            messages=3,
        )
        assert not report.ok
        assert any(
            f.name == "DL5"
            for failure in report.failures
            for f in failure.verdict.failures
        )

    def test_eager_protocol_duplicates_under_retransmission(self):
        report = check_over_lossy_fifo(
            eager_protocol(), loss_rate=0.3, seeds=range(8), messages=6
        )
        assert not report.ok
        assert any(
            f.name == "DL4"
            for failure in report.failures
            for f in failure.verdict.failures
        )


class TestReportShape:
    def test_report_counts_runs(self):
        report = check_over_lossy_fifo(
            alternating_bit_protocol(), seeds=range(3), messages=3
        )
        assert report.runs == 3
        assert report.protocol_name == "alternating-bit"
