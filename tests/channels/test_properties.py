"""Tests for the physical-layer trace properties (PL1)-(PL6)."""

from __future__ import annotations


from repro.alphabets import Packet
from repro.channels import (
    crash,
    fail,
    pl1,
    pl2,
    pl3,
    pl4,
    pl5,
    pl6,
    pl6_finite_diagnostic,
    pl_well_formed,
    receive_pkt,
    send_pkt,
    unbounded_working_interval,
    wake,
    working_intervals,
)
from repro.channels.properties import crash_intervals

T, R = "t", "r"
P1 = Packet("a", (), uid=1)
P2 = Packet("b", (), uid=2)
P3 = Packet("c", (), uid=3)


def w():
    return wake(T, R)


def f():
    return fail(T, R)


def c():
    return crash(T, R)


def s(p):
    return send_pkt(T, R, p)


def rcv(p):
    return receive_pkt(T, R, p)


class TestIntervals:
    def test_crash_intervals_no_crash(self):
        assert crash_intervals([w(), f()], (T, R)) == [(0, 2)]

    def test_crash_intervals_split(self):
        schedule = [w(), c(), w(), f(), c(), w()]
        assert crash_intervals(schedule, (T, R)) == [
            (0, 1),
            (2, 4),
            (5, 6),
        ]

    def test_working_intervals_basic(self):
        schedule = [w(), s(P1), f(), w(), s(P2)]
        assert working_intervals(schedule, (T, R)) == [(1, 2), (4, 5)]

    def test_working_interval_ended_by_crash(self):
        schedule = [w(), s(P1), c(), w()]
        assert working_intervals(schedule, (T, R)) == [(1, 2), (4, 4)]

    def test_unbounded_interval_present(self):
        schedule = [w(), f(), w(), s(P1)]
        assert unbounded_working_interval(schedule, (T, R)) == (3, 4)

    def test_unbounded_interval_absent_after_fail(self):
        assert unbounded_working_interval([w(), f()], (T, R)) is None

    def test_unbounded_interval_absent_without_wake(self):
        assert unbounded_working_interval([], (T, R)) is None

    def test_unbounded_interval_reset_by_crash_then_wake(self):
        schedule = [w(), c(), w()]
        assert unbounded_working_interval(schedule, (T, R)) == (3, 3)


class TestWellFormed:
    def test_empty_ok(self):
        assert pl_well_formed([], T, R).holds

    def test_alternation_ok(self):
        assert pl_well_formed([w(), f(), w(), f()], T, R).holds

    def test_double_wake_violates(self):
        result = pl_well_formed([w(), w()], T, R)
        assert not result.holds
        assert "event 1" in result.witness

    def test_fail_first_violates(self):
        assert not pl_well_formed([f()], T, R).holds

    def test_crash_resets_alternation(self):
        # wake crash wake: fine -- the crash includes an implicit failure.
        assert pl_well_formed([w(), c(), w()], T, R).holds

    def test_other_direction_ignored(self):
        assert pl_well_formed([wake(R, T), wake(R, T), w()], T, R).holds


class TestPl1:
    def test_send_in_interval_ok(self):
        assert pl1([w(), s(P1)], T, R).holds

    def test_send_before_wake_violates(self):
        assert not pl1([s(P1), w()], T, R).holds

    def test_send_after_fail_violates(self):
        assert not pl1([w(), f(), s(P1)], T, R).holds


class TestPl2Pl3:
    def test_unique_sends_ok(self):
        assert pl2([w(), s(P1), s(P2)], T, R).holds

    def test_duplicate_send_violates(self):
        assert not pl2([w(), s(P1), s(P1)], T, R).holds

    def test_duplicate_receive_violates(self):
        schedule = [w(), s(P1), rcv(P1), rcv(P1)]
        assert not pl3(schedule, T, R).holds

    def test_uid_distinguishes_otherwise_equal_packets(self):
        twin = Packet("a", (), uid=99)
        assert pl2([w(), s(P1), s(twin)], T, R).holds


class TestPl4:
    def test_receive_after_send_ok(self):
        assert pl4([w(), s(P1), rcv(P1)], T, R).holds

    def test_receive_before_send_violates(self):
        assert not pl4([w(), rcv(P1), s(P1)], T, R).holds

    def test_receive_never_sent_violates(self):
        assert not pl4([w(), rcv(P1)], T, R).holds


class TestPl5:
    def test_fifo_ok(self):
        schedule = [w(), s(P1), s(P2), rcv(P1), rcv(P2)]
        assert pl5(schedule, T, R).holds

    def test_gap_ok(self):
        # P1 lost: delivery of later P2 alone is still FIFO.
        schedule = [w(), s(P1), s(P2), rcv(P2)]
        assert pl5(schedule, T, R).holds

    def test_reorder_violates(self):
        schedule = [w(), s(P1), s(P2), rcv(P2), rcv(P1)]
        result = pl5(schedule, T, R)
        assert not result.holds
        assert "out of FIFO order" in result.witness

    def test_interleaved_send_receive_ok(self):
        schedule = [w(), s(P1), rcv(P1), s(P2), rcv(P2)]
        assert pl5(schedule, T, R).holds


class TestPl6:
    def test_vacuous_on_finite(self):
        assert pl6([w(), s(P1)], T, R).holds

    def test_finite_diagnostic_flags_dead_channel(self):
        result = pl6_finite_diagnostic([w(), s(P1), s(P2)], T, R)
        assert not result.holds

    def test_finite_diagnostic_ok_with_delivery(self):
        assert pl6_finite_diagnostic([w(), s(P1), rcv(P1)], T, R).holds

    def test_finite_diagnostic_ok_without_unbounded_interval(self):
        assert pl6_finite_diagnostic([w(), s(P1), f()], T, R).holds

    def test_finite_diagnostic_ok_without_sends(self):
        assert pl6_finite_diagnostic([w()], T, R).holds
