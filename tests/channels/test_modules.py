"""Tests for the PL / PL-FIFO schedule modules and channel conformance.

Includes the executable content of Lemma 6.1 (the permissive channels
are physical channels: their fair behaviors satisfy the specification)
and of Lemma 6.2 (sensible failure-free PL schedules are behaviors of
C-bar).
"""

from __future__ import annotations

import pytest

from repro.alphabets import Packet
from repro.channels import (
    DeliverySet,
    PermissiveChannel,
    PermissiveFifoChannel,
    pl_fifo_module,
    pl_module,
    receive_pkt,
    send_pkt,
    wake,
)
from repro.channels.delivery_set import random_reordering
from repro.ioa import ExecutionFragment, fair_extension

T, R = "t", "r"


def drive_channel(channel, count, interleave_delivery=True):
    """Send ``count`` packets, letting the channel deliver fairly."""
    fragment = ExecutionFragment.initial(channel.initial_state())
    inputs = [wake(T, R)] + [
        send_pkt(T, R, Packet(f"h{i}", (), uid=i))
        for i in range(1, count + 1)
    ]
    return fair_extension(channel, fragment, inputs=inputs)


class TestModuleShape:
    def test_pl_signature(self):
        module = pl_module(T, R)
        assert module.signature.is_input(send_pkt(T, R, Packet("h")))
        assert module.signature.is_output(receive_pkt(T, R, Packet("h")))

    def test_vacuous_when_ill_formed(self):
        from repro.channels import fail

        module = pl_module(T, R)
        # Receive-before-send violates PL4, but the sequence is ill-
        # formed (fail before wake), so membership is vacuous.
        bogus = [fail(T, R), receive_pkt(T, R, Packet("h", (), uid=1))]
        verdict = module.check(bogus)
        assert verdict.in_module and verdict.vacuous

    def test_guarantee_enforced_when_assumptions_hold(self):
        module = pl_module(T, R)
        p = Packet("h", (), uid=1)
        verdict = module.check([wake(T, R), receive_pkt(T, R, p)])
        assert not verdict.in_module
        assert any(f.name == "PL4" for f in verdict.failures)

    def test_fifo_module_adds_pl5(self):
        p1, p2 = Packet("a", (), uid=1), Packet("b", (), uid=2)
        reordered = [
            wake(T, R),
            send_pkt(T, R, p1),
            send_pkt(T, R, p2),
            receive_pkt(T, R, p2),
            receive_pkt(T, R, p1),
        ]
        assert pl_module(T, R).contains(reordered)
        assert not pl_fifo_module(T, R).contains(reordered)


class TestLemma61:
    """Fair behaviors of C-bar / C-hat satisfy PL / PL-FIFO."""

    @pytest.mark.parametrize("seed", range(5))
    def test_cbar_solves_pl(self, seed):
        channel = PermissiveChannel(
            T, R, initial_delivery=random_reordering(seed, 0.3, 4, 100)
        )
        fragment = drive_channel(channel, 10)
        behavior = fragment.behavior(channel.signature)
        assert pl_module(T, R).contains(behavior)

    @pytest.mark.parametrize("seed", range(5))
    def test_chat_solves_pl_fifo(self, seed):
        from repro.channels.delivery_set import random_lossy_fifo

        channel = PermissiveFifoChannel(
            T, R, initial_delivery=random_lossy_fifo(seed, 0.3, 100)
        )
        fragment = drive_channel(channel, 10)
        behavior = fragment.behavior(channel.signature)
        assert pl_fifo_module(T, R).contains(behavior)

    def test_cbar_reordering_behavior_still_in_pl(self):
        channel = PermissiveChannel(
            T, R, initial_delivery=DeliverySet((2, 1), 2)
        )
        fragment = drive_channel(channel, 2)
        behavior = fragment.behavior(channel.signature)
        assert pl_module(T, R).contains(behavior)
        assert not pl_fifo_module(T, R).contains(behavior)


class TestLemma62:
    """Sensible failure-free PL schedules are fair behaviors of C-bar.

    Executable slice: for any delivery pattern expressed as a delivery
    set, driving C-bar with that start state reproduces the pattern.
    """

    @pytest.mark.parametrize(
        "pairs",
        [
            [(1, 1), (2, 2), (3, 3)],
            [(3, 1), (1, 2), (2, 3)],
            [(2, 1), (3, 2)],  # packet 1 lost
        ],
    )
    def test_target_schedule_realized(self, pairs):
        delivery = DeliverySet.from_pairs(pairs)
        channel = PermissiveChannel(T, R, initial_delivery=delivery)
        pkts = {i: Packet(f"h{i}", (), uid=i) for i in range(1, 4)}
        state = channel.initial_state()
        for i in sorted(pkts):
            state = channel.step(state, send_pkt(T, R, pkts[i]))
        received = []
        while True:
            actions = list(channel.enabled_local_actions(state))
            if not actions:
                break
            received.append(actions[0].payload.uid)
            state = channel.step(state, actions[0])
        expected = [i for i, _ in sorted(pairs, key=lambda p: p[1])]
        # Only slots whose source was sent can fire.
        expected = [i for i in expected if i <= 3]
        assert received[: len(expected)] == expected
