"""Tests for the permissive channels C-bar / C-hat (paper 6.1-6.2)."""

from __future__ import annotations

import pytest

from repro.alphabets import Packet
from repro.channels import (
    DeliverySet,
    DeliverySetError,
    PermissiveChannel,
    PermissiveFifoChannel,
    receive_pkt,
    send_pkt,
    wake,
    fail,
    crash,
)


def packets(n):
    return [Packet(f"h{i}", (), uid=i) for i in range(1, n + 1)]


def send_all(channel, state, pkts):
    for packet in pkts:
        state = channel.step(state, send_pkt("t", "r", packet))
    return state


@pytest.fixture
def channel():
    return PermissiveChannel("t", "r")


@pytest.fixture
def fifo():
    return PermissiveFifoChannel("t", "r")


class TestBasics:
    def test_signature(self, channel):
        assert channel.signature.is_input(send_pkt("t", "r", Packet("h")))
        assert channel.signature.is_input(wake("t", "r"))
        assert channel.signature.is_input(fail("t", "r"))
        assert channel.signature.is_input(crash("t", "r"))
        assert channel.signature.is_output(
            receive_pkt("t", "r", Packet("h"))
        )

    def test_initial_state(self, channel):
        state = channel.initial_state()
        assert state.counter1 == state.counter2 == 0
        assert state.sent == ()

    def test_send_records_packet(self, channel):
        p = Packet("h", (), uid=1)
        state = channel.step(channel.initial_state(), send_pkt("t", "r", p))
        assert state.counter1 == 1
        assert state.packet_at(1) == p
        assert state.packet_at(2) is None

    def test_wake_fail_crash_are_noops(self, channel):
        state = channel.initial_state()
        for action in (wake("t", "r"), fail("t", "r"), crash("t", "r")):
            assert channel.step(state, action) == state

    def test_fifo_delivery_order(self, channel):
        pkts = packets(3)
        state = send_all(channel, channel.initial_state(), pkts)
        for expected in pkts:
            (action,) = list(channel.enabled_local_actions(state))
            assert action.payload == expected
            state = channel.step(state, action)
        assert list(channel.enabled_local_actions(state)) == []

    def test_receive_precondition_checks_payload(self, channel):
        pkts = packets(2)
        state = send_all(channel, channel.initial_state(), pkts)
        wrong = receive_pkt("t", "r", pkts[1])  # out of order
        assert channel.transitions(state, wrong) == ()

    def test_no_delivery_before_send(self, channel):
        assert list(
            channel.enabled_local_actions(channel.initial_state())
        ) == []

    def test_lossy_delivery_set(self):
        # Delivery set skipping send 1: first delivery is packet 2.
        channel = PermissiveChannel(
            "t", "r", initial_delivery=DeliverySet((2,), 1)
        )
        pkts = packets(2)
        state = send_all(channel, channel.initial_state(), pkts)
        (action,) = list(channel.enabled_local_actions(state))
        assert action.payload == pkts[1]

    def test_reordering_delivery_set(self):
        channel = PermissiveChannel(
            "t", "r", initial_delivery=DeliverySet((2, 1), 2)
        )
        pkts = packets(2)
        state = send_all(channel, channel.initial_state(), pkts)
        (first,) = list(channel.enabled_local_actions(state))
        assert first.payload == pkts[1]
        state = channel.step(state, first)
        (second,) = list(channel.enabled_local_actions(state))
        assert second.payload == pkts[0]

    def test_stalled_delivery_waits_for_future_send(self):
        # Slot 1 wants send 3: nothing deliverable until 3 sends happen.
        channel = PermissiveChannel(
            "t", "r", initial_delivery=DeliverySet((3, 1, 2), 0)
        )
        state = send_all(channel, channel.initial_state(), packets(2))
        assert state.deliverable() is None

    def test_single_task(self, channel):
        p = Packet("h")
        assert channel.task_of(receive_pkt("t", "r", p)) == (
            channel.name,
            "deliver",
        )


class TestStateViews:
    def test_delivered_and_in_transit(self, channel):
        pkts = packets(3)
        state = send_all(channel, channel.initial_state(), pkts)
        (action,) = list(channel.enabled_local_actions(state))
        state = channel.step(state, action)
        assert state.delivered_indices() == (1,)
        assert state.in_transit_indices() == (2, 3)

    def test_waiting_sequence(self, channel):
        pkts = packets(3)
        state = send_all(channel, channel.initial_state(), pkts)
        assert state.waiting_sequence() == tuple(pkts)

    def test_waiting_sequence_stops_at_unsent(self):
        channel = PermissiveChannel(
            "t", "r", initial_delivery=DeliverySet((1, 3, 2), 0)
        )
        pkts = packets(2)
        state = send_all(channel, channel.initial_state(), pkts)
        # Slot 2 wants send 3 (unsent): waiting stops after packet 1.
        assert state.waiting_sequence() == (pkts[0],)

    def test_fresh_state_is_clean(self, channel):
        assert channel.initial_state().is_clean()


class TestFifoChannel:
    def test_rejects_non_monotone_start(self):
        with pytest.raises(DeliverySetError):
            PermissiveFifoChannel(
                "t", "r", initial_delivery=DeliverySet((2, 1), 2)
            )

    def test_accepts_monotone_lossy(self):
        channel = PermissiveFifoChannel(
            "t", "r", initial_delivery=DeliverySet((2, 4), 2)
        )
        assert channel.initial_state().delivery.is_monotone()
