"""Tests for delivery sets and the ``del`` surgery (paper 6.1, 6.3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channels.delivery_set import (
    DeliverySet,
    DeliverySetError,
    random_lossy_fifo,
    random_reordering,
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def delivery_sets(draw, max_len: int = 12):
    """Arbitrary legal delivery sets with a short explicit prefix."""
    length = draw(st.integers(0, max_len))
    pool = draw(
        st.permutations(list(range(1, max_len * 2 + 1)))
    )
    prefix = tuple(pool[:length])
    floor = max(prefix) if prefix else 0
    tail_offset = draw(st.integers(0, 5)) + max(0, floor - length)
    return DeliverySet(prefix, tail_offset)


@st.composite
def monotone_delivery_sets(draw, max_len: int = 12):
    length = draw(st.integers(0, max_len))
    indices = draw(
        st.lists(
            st.integers(1, max_len * 3),
            min_size=length,
            max_size=length,
            unique=True,
        )
    )
    prefix = tuple(sorted(indices))
    floor = max(prefix) if prefix else 0
    tail_offset = draw(st.integers(0, 5)) + max(0, floor - length)
    return DeliverySet(prefix, tail_offset)


# ----------------------------------------------------------------------
# Construction and invariants
# ----------------------------------------------------------------------


class TestConstruction:
    def test_fifo_is_identity(self):
        fifo = DeliverySet.fifo()
        assert [fifo.source_of(j) for j in range(1, 6)] == [1, 2, 3, 4, 5]
        assert fifo.is_monotone()

    def test_duplicate_send_index_rejected(self):
        with pytest.raises(DeliverySetError):
            DeliverySet((1, 1), 1)

    def test_nonpositive_index_rejected(self):
        with pytest.raises(DeliverySetError):
            DeliverySet((0,), 1)

    def test_tail_collision_rejected(self):
        # prefix uses 5; first tail slot would be 2 + offset.
        with pytest.raises(DeliverySetError):
            DeliverySet((5,), 2)  # first tail index = 2+2 = 4 < 5

    def test_negative_tail_rejected(self):
        with pytest.raises(DeliverySetError):
            DeliverySet((), -1)

    def test_from_pairs(self):
        ds = DeliverySet.from_pairs([(2, 1), (1, 2), (3, 3)])
        assert ds.source_of(1) == 2
        assert ds.source_of(2) == 1
        assert ds.source_of(3) == 3

    def test_from_pairs_gap_rejected(self):
        with pytest.raises(DeliverySetError):
            DeliverySet.from_pairs([(1, 1), (3, 3)])

    def test_from_pairs_duplicate_slot_rejected(self):
        with pytest.raises(DeliverySetError):
            DeliverySet.from_pairs([(1, 1), (2, 1)])


class TestLookup:
    def test_slot_of_prefix(self):
        ds = DeliverySet((3, 1), 3)
        assert ds.slot_of(3) == 1
        assert ds.slot_of(1) == 2

    def test_slot_of_tail(self):
        ds = DeliverySet((3, 1), 3)
        # slot 3 -> 3+3 = 6
        assert ds.source_of(3) == 6
        assert ds.slot_of(6) == 3

    def test_lost_index(self):
        ds = DeliverySet((3, 1), 3)
        assert ds.is_lost(2)
        assert ds.lost_indices(6) == (2, 4, 5)

    def test_pairs_iteration(self):
        ds = DeliverySet((2,), 1)
        assert list(ds.pairs(3)) == [(2, 1), (3, 2), (4, 3)]

    def test_invalid_slot_rejected(self):
        with pytest.raises(DeliverySetError):
            DeliverySet.fifo().source_of(0)


class TestDeleteSurgery:
    def test_delete_prefix_slot(self):
        ds = DeliverySet((2, 1, 3), 0)
        deleted = ds.delete_slot(2)  # remove (1, 2)
        assert deleted.source_of(1) == 2
        assert deleted.source_of(2) == 3
        assert deleted.is_lost(1)

    def test_delete_shifts_tail(self):
        ds = DeliverySet((1,), 0)  # slots: 1->1, 2->2, 3->3 ...
        deleted = ds.delete_slot(2)  # remove (2, 2)
        assert deleted.source_of(2) == 3
        assert deleted.is_lost(2)

    def test_delete_tail_slot_materializes_prefix(self):
        ds = DeliverySet.fifo()
        deleted = ds.delete_slot(3)
        assert deleted.source_of(1) == 1
        assert deleted.source_of(2) == 2
        assert deleted.source_of(3) == 4
        assert deleted.is_lost(3)

    def test_delete_pair_validates(self):
        ds = DeliverySet.fifo()
        with pytest.raises(DeliverySetError):
            ds.delete_pair(5, 1)
        assert ds.delete_pair(1, 1).is_lost(1)

    def test_delete_slots_batch(self):
        ds = DeliverySet.fifo()
        deleted = ds.delete_slots([1, 3])
        # Original slots 1 and 3 (sends 1 and 3) are gone.
        assert deleted.is_lost(1)
        assert deleted.is_lost(3)
        assert deleted.source_of(1) == 2
        assert deleted.source_of(2) == 4


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------


class TestProperties:
    @given(delivery_sets())
    def test_slots_unique_per_send_index(self, ds):
        seen = {}
        for j in range(1, 30):
            i = ds.source_of(j)
            assert i not in seen, "send index delivered twice"
            seen[i] = j

    @given(delivery_sets())
    def test_slot_of_inverts_source_of(self, ds):
        for j in range(1, 20):
            assert ds.slot_of(ds.source_of(j)) == j

    @given(monotone_delivery_sets())
    def test_monotone_strategy_is_monotone(self, ds):
        assert ds.is_monotone()

    @given(monotone_delivery_sets(), st.integers(1, 15))
    def test_delete_preserves_monotonicity(self, ds, slot):
        # The paper notes: if S is monotone, so is del(S, X).
        assert ds.delete_slot(slot).is_monotone()

    @given(delivery_sets(), st.integers(1, 15))
    def test_delete_removes_and_shifts(self, ds, slot):
        deleted = ds.delete_slot(slot)
        victim = ds.source_of(slot)
        assert deleted.is_lost(victim)
        for j in range(1, slot):
            assert deleted.source_of(j) == ds.source_of(j)
        for j in range(slot, 20):
            assert deleted.source_of(j) == ds.source_of(j + 1)

    @given(delivery_sets())
    def test_totality(self, ds):
        # Every receive slot has a source: totality of the relation.
        for j in range(1, 50):
            assert ds.source_of(j) >= 1


class TestScriptedGenerators:
    def test_lossy_fifo_is_monotone(self):
        for seed in range(10):
            assert random_lossy_fifo(seed, 0.4, 50).is_monotone()

    def test_lossy_fifo_zero_loss_is_fifo(self):
        ds = random_lossy_fifo(0, 0.0, 50)
        assert [ds.source_of(j) for j in range(1, 51)] == list(
            range(1, 51)
        )

    def test_lossy_fifo_loses_roughly_at_rate(self):
        ds = random_lossy_fifo(42, 0.5, 1000)
        lost = len(ds.lost_indices(1000))
        assert 350 < lost < 650

    def test_lossy_fifo_deterministic(self):
        assert random_lossy_fifo(7, 0.3, 100) == random_lossy_fifo(
            7, 0.3, 100
        )

    def test_lossy_fifo_invalid_rate(self):
        with pytest.raises(DeliverySetError):
            random_lossy_fifo(0, 1.0, 10)

    def test_reordering_valid_delivery_set(self):
        for seed in range(10):
            ds = random_reordering(seed, 0.2, 4, 50)
            # Valid by construction; spot check invertibility.
            for j in range(1, 40):
                assert ds.slot_of(ds.source_of(j)) == j

    def test_reordering_actually_reorders(self):
        reordered = any(
            not random_reordering(seed, 0.0, 8, 64).is_monotone()
            for seed in range(10)
        )
        assert reordered

    def test_reordering_window_one_is_fifo(self):
        assert random_reordering(3, 0.0, 1, 50).is_monotone()

    def test_reordering_invalid_window(self):
        with pytest.raises(DeliverySetError):
            random_reordering(0, 0.0, 0, 10)
