"""Tests for the scripted channel factories."""

from __future__ import annotations


from repro.alphabets import Packet
from repro.channels import (
    lossy_fifo_channel,
    perfect_fifo_channel,
    reordering_channel,
    send_pkt,
)


class TestPerfectFifo:
    def test_no_losses(self):
        channel = perfect_fifo_channel("t", "r")
        state = channel.initial_state()
        pkts = [Packet(f"h{i}", (), uid=i) for i in range(1, 6)]
        for packet in pkts:
            state = channel.step(state, send_pkt("t", "r", packet))
        delivered = []
        while True:
            actions = list(channel.enabled_local_actions(state))
            if not actions:
                break
            delivered.append(actions[0].payload)
            state = channel.step(state, actions[0])
        assert delivered == pkts


class TestLossyFifo:
    def test_determinism(self):
        a = lossy_fifo_channel("t", "r", seed=5, loss_rate=0.5)
        b = lossy_fifo_channel("t", "r", seed=5, loss_rate=0.5)
        assert a.initial_state() == b.initial_state()

    def test_monotone(self):
        channel = lossy_fifo_channel("t", "r", seed=1, loss_rate=0.5)
        assert channel.initial_state().delivery.is_monotone()

    def test_name_mentions_parameters(self):
        channel = lossy_fifo_channel("t", "r", seed=1, loss_rate=0.25)
        assert "0.25" in channel.name


class TestReordering:
    def test_not_fifo_for_wide_window(self):
        found_reorder = False
        for seed in range(10):
            channel = reordering_channel(
                "t", "r", seed=seed, window=8, horizon=64
            )
            if not channel.initial_state().delivery.is_monotone():
                found_reorder = True
                break
        assert found_reorder

    def test_directions_independent(self):
        tr = reordering_channel("t", "r", seed=1)
        rt = reordering_channel("r", "t", seed=2)
        assert tr.src == "t" and rt.src == "r"
        assert tr.signature.all_families.isdisjoint(
            rt.signature.all_families
        )
