"""Tests for the bounded-capacity non-FIFO channel (arXiv:1011.3632)."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabets import Packet
from repro.channels import (
    BoundedChannel,
    BoundedChannelState,
    ChannelSurgeryError,
    receive_pkt,
    send_pkt,
)


def packets(n):
    return [Packet(f"h{i}", (), uid=i) for i in range(1, n + 1)]


def loaded_channel(channel, n, deliver=0):
    """Channel with n sends and up to ``deliver`` deliveries performed."""
    state = channel.initial_state()
    for packet in packets(n):
        state = channel.step(state, send_pkt("t", "r", packet))
    for _ in range(deliver):
        deliverable = channel.deliverable(state)
        if deliverable is None:
            break
        state = channel.step(state, receive_pkt("t", "r", deliverable[1]))
    return state


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedChannel("t", "r", capacity=0)

    def test_loss_rate_must_be_sub_unit(self):
        with pytest.raises(ValueError):
            BoundedChannel("t", "r", loss_rate=1.0)

    def test_initial_state_is_clean_and_empty(self):
        channel = BoundedChannel("t", "r")
        state = channel.initial_state()
        assert state.is_clean()
        assert state.occupancy() == 0
        assert channel.deliverable(state) is None

    def test_lossless_fifo_when_unconfigured(self):
        channel = BoundedChannel("t", "r", capacity=8)
        state = loaded_channel(channel, 3)
        order = []
        while channel.deliverable(state) is not None:
            index, packet = channel.deliverable(state)
            order.append(packet.uid)
            state = channel.step(state, receive_pkt("t", "r", packet))
        assert order == [1, 2, 3]

    def test_overflow_drops_and_counts(self):
        channel = BoundedChannel("t", "r", capacity=2)
        state = loaded_channel(channel, 5)
        assert state.occupancy() == 2
        assert state.dropped == 3
        assert state.counter1 == 5

    def test_plan_losses_are_not_overflow_drops(self):
        # With certain loss on index 1 (seed chosen so the first draw
        # loses), the packet vanishes without touching ``dropped``.
        channel = BoundedChannel("t", "r", seed=0, loss_rate=0.999)
        state = channel.step(
            channel.initial_state(), send_pkt("t", "r", packets(1)[0])
        )
        assert state.occupancy() == 0
        assert state.dropped == 0
        assert state.counter1 == 1

    def test_same_seed_same_plan(self):
        a = BoundedChannel("t", "r", seed=9, loss_rate=0.4, reorder_window=3)
        b = BoundedChannel("t", "r", seed=9, loss_rate=0.4, reorder_window=3)
        assert a._lost == b._lost
        assert a._offsets == b._offsets

    def test_channel_is_declared_non_fifo(self):
        assert BoundedChannel.fifo_only is False

    def test_wake_fail_crash_are_no_ops(self):
        from repro.channels.actions import crash, fail, wake

        channel = BoundedChannel("t", "r")
        state = loaded_channel(channel, 2)
        for action in (wake("t", "r"), fail("t", "r"), crash("t", "r")):
            assert channel.transitions(state, action) == (state,)


class TestSurgeries:
    def test_make_clean_empties_and_stays_fifo(self):
        channel = BoundedChannel(
            "t", "r", seed=3, loss_rate=0.5, reorder_window=4
        )
        state = channel.make_clean(loaded_channel(channel, 6))
        assert state.is_clean()
        assert channel.deliverable(state) is None
        # Post-surgery sends bypass the loss/reorder plan entirely.
        state = channel.step(state, send_pkt("t", "r", Packet("n", (), uid=99)))
        deliverable = channel.deliverable(state)
        assert deliverable is not None and deliverable[1].uid == 99

    def test_make_clean_is_idempotent(self):
        channel = BoundedChannel("t", "r", seed=3, reorder_window=4)
        state = channel.make_clean(loaded_channel(channel, 4))
        assert channel.make_clean(state) == state

    def test_with_waiting_forces_exact_order(self):
        channel = BoundedChannel("t", "r", capacity=8, reorder_window=2, seed=1)
        state = loaded_channel(channel, 5)
        transit = list(state.in_transit_indices())
        chosen = [transit[-1], transit[0]]
        surgered = channel.with_waiting(state, chosen)
        order = []
        while channel.deliverable(surgered) is not None:
            _, packet = channel.deliverable(surgered)
            order.append(packet.uid)
            surgered = channel.step(
                surgered, receive_pkt("t", "r", packet)
            )
        assert order == chosen
        assert surgered.is_clean()

    def test_with_waiting_rejects_unsent_index(self):
        channel = BoundedChannel("t", "r", capacity=8)
        state = loaded_channel(channel, 2)
        with pytest.raises(ChannelSurgeryError):
            channel.with_waiting(state, [7])

    def test_with_waiting_rejects_duplicates(self):
        channel = BoundedChannel("t", "r", capacity=8)
        state = loaded_channel(channel, 3)
        with pytest.raises(ChannelSurgeryError):
            channel.with_waiting(state, [2, 2])

    def test_empty_waiting_equals_clean(self):
        channel = BoundedChannel("t", "r", capacity=8)
        state = loaded_channel(channel, 3)
        cleaned = channel.with_waiting(state, [])
        assert cleaned.is_clean()
        assert cleaned.buffer == channel.make_clean(state).buffer

    def test_lose_all_in_transit_is_make_clean(self):
        channel = BoundedChannel("t", "r", capacity=8)
        state = loaded_channel(channel, 4)
        assert channel.lose_all_in_transit(state) == channel.make_clean(state)


# ----------------------------------------------------------------------
# Property tests: the capacity invariant and conservation laws under
# random seeded adversaries and random send/deliver interleavings
# ----------------------------------------------------------------------


@st.composite
def bounded_runs(draw):
    """A seeded bounded channel plus a random send/deliver interleaving.

    Returns (channel, trajectory, delivered_uids, sent_uids): every
    state the run visited, and the uid multiset actually delivered.
    """
    seed = draw(st.integers(0, 2**16))
    capacity = draw(st.integers(1, 5))
    loss = draw(st.sampled_from([0.0, 0.2, 0.5]))
    window = draw(st.integers(1, 6))
    channel = BoundedChannel(
        "t",
        "r",
        seed=seed,
        loss_rate=loss,
        reorder_window=window,
        capacity=capacity,
        horizon=32,
    )
    moves = draw(
        st.lists(st.sampled_from(["send", "deliver"]), max_size=30)
    )
    state = channel.initial_state()
    trajectory = [state]
    sent = []
    delivered = []
    next_uid = 1
    for move in moves:
        if move == "send":
            packet = Packet(f"h{next_uid}", (), uid=next_uid)
            sent.append(next_uid)
            next_uid += 1
            state = channel.step(state, send_pkt("t", "r", packet))
        else:
            deliverable = channel.deliverable(state)
            if deliverable is None:
                continue
            delivered.append(deliverable[1].uid)
            state = channel.step(
                state, receive_pkt("t", "r", deliverable[1])
            )
        trajectory.append(state)
    return channel, trajectory, delivered, sent


class TestBoundedProperties:
    @given(bounded_runs())
    @settings(max_examples=80, deadline=None)
    def test_capacity_is_a_hard_invariant(self, run):
        channel, trajectory, _, _ = run
        for state in trajectory:
            assert state.occupancy() <= channel.capacity

    @given(bounded_runs())
    @settings(max_examples=80, deadline=None)
    def test_delivered_multiset_within_sent_multiset(self, run):
        _, _, delivered, sent = run
        assert not (Counter(delivered) - Counter(sent))
        # No duplication either: each send delivers at most once.
        assert all(n == 1 for n in Counter(delivered).values())

    @given(bounded_runs())
    @settings(max_examples=80, deadline=None)
    def test_counters_account_for_every_send(self, run):
        channel, trajectory, delivered, sent = run
        final = trajectory[-1]
        assert final.counter1 == len(sent)
        assert final.counter2 == len(delivered)
        # Sends split exactly into buffered + delivered + lost (plan
        # losses and overflow drops).
        lost = final.counter1 - final.occupancy() - final.counter2
        assert lost >= final.dropped >= 0

    @given(bounded_runs())
    @settings(max_examples=60, deadline=None)
    def test_make_clean_closed_under_random_states(self, run):
        channel, trajectory, _, _ = run
        for state in trajectory[:: max(1, len(trajectory) // 5)]:
            cleaned = channel.make_clean(state)
            assert cleaned.is_clean()
            assert channel.make_clean(cleaned) == cleaned
            assert cleaned.counter1 == state.counter1
            assert cleaned.counter2 == state.counter2

    @given(bounded_runs(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_with_waiting_closed_under_random_states(self, run, data):
        channel, trajectory, _, _ = run
        state = trajectory[-1]
        transit = list(state.in_transit_indices())
        chosen = data.draw(st.permutations(transit))
        keep = data.draw(st.integers(0, len(chosen)))
        indices = list(chosen[:keep])
        surgered = channel.with_waiting(state, indices)
        assert surgered.occupancy() == len(indices) <= channel.capacity
        # Exactly the chosen sends deliver, in the forced order, and
        # the drained channel is clean: loss and reordering are closed
        # under the surgery (the adversary plan no longer applies).
        order = []
        while channel.deliverable(surgered) is not None:
            index, packet = channel.deliverable(surgered)
            order.append(index)
            surgered = channel.step(
                surgered, receive_pkt("t", "r", packet)
            )
        assert order == indices
        assert surgered.is_clean()
