"""Tests for the channel-state surgeries realizing Lemmas 6.3-6.7."""

from __future__ import annotations

import pytest

from repro.alphabets import Packet
from repro.channels import (
    ChannelSurgeryError,
    DeliverySet,
    PermissiveChannel,
    PermissiveFifoChannel,
    send_pkt,
)


def packets(n):
    return [Packet(f"h{i}", (), uid=i) for i in range(1, n + 1)]


def loaded_channel(channel, n, deliver=0):
    """Channel with n sends and ``deliver`` deliveries performed."""
    state = channel.initial_state()
    for packet in packets(n):
        state = channel.step(state, send_pkt("t", "r", packet))
    for _ in range(deliver):
        (action,) = list(channel.enabled_local_actions(state))
        state = channel.step(state, action)
    return state


class TestMakeClean:
    """Lemma 6.3: every schedule can leave the channel clean."""

    def test_clean_after_sends(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 5)
        cleaned = channel.make_clean(state)
        assert cleaned.is_clean()
        # Everything in transit is lost: nothing deliverable.
        assert cleaned.deliverable() is None
        assert cleaned.waiting_sequence() == ()

    def test_clean_preserves_consumed_slots(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 5, deliver=2)
        cleaned = channel.make_clean(state)
        assert cleaned.delivered_indices() == state.delivered_indices()

    def test_clean_future_is_fifo(self):
        channel = PermissiveChannel("t", "r")
        state = channel.make_clean(loaded_channel(channel, 3, deliver=1))
        # The next send is delivered next, FIFO with no losses.
        new_packet = Packet("new", (), uid=99)
        state = channel.step(state, send_pkt("t", "r", new_packet))
        assert state.deliverable() == (4, new_packet)

    def test_clean_on_fifo_channel_stays_monotone(self):
        channel = PermissiveFifoChannel("t", "r")
        state = channel.make_clean(loaded_channel(channel, 4, deliver=2))
        assert state.delivery.is_monotone()

    def test_clean_is_idempotent(self):
        channel = PermissiveChannel("t", "r")
        state = channel.make_clean(loaded_channel(channel, 4))
        assert channel.make_clean(state) == state


class TestWithWaiting:
    """Lemmas 6.5-6.7: scheduling chosen in-transit packets."""

    def test_waiting_packets_scheduled_in_order(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 5)
        surgered = channel.with_waiting(state, [4, 2])
        pkts = packets(5)
        assert surgered.waiting_sequence() == (pkts[3], pkts[1])

    def test_non_fifo_order_allowed_on_cbar(self):
        """Lemma 6.7: any sequence of in-transit packets can wait."""
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 5)
        surgered = channel.with_waiting(state, [5, 1, 3])
        assert [p.uid for p in surgered.waiting_sequence()] == [5, 1, 3]

    def test_non_fifo_order_rejected_on_chat(self):
        from repro.channels.delivery_set import DeliverySetError

        channel = PermissiveFifoChannel("t", "r")
        state = loaded_channel(channel, 5)
        with pytest.raises(DeliverySetError):
            channel.with_waiting(state, [3, 1])

    def test_fifo_subsequence_allowed_on_chat(self):
        """Lemma 6.6 on C-hat: any subsequence of waiting packets."""
        channel = PermissiveFifoChannel("t", "r")
        state = loaded_channel(channel, 5)
        surgered = channel.with_waiting(state, [2, 5])
        assert [p.uid for p in surgered.waiting_sequence()] == [2, 5]
        assert surgered.delivery.is_monotone()

    def test_drained_channel_is_clean_afterwards(self):
        channel = PermissiveChannel("t", "r")
        state = channel.with_waiting(loaded_channel(channel, 3), [2])
        (action,) = list(channel.enabled_local_actions(state))
        state = channel.step(state, action)
        assert state.is_clean()

    def test_unsent_index_rejected(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 2)
        with pytest.raises(ChannelSurgeryError):
            channel.with_waiting(state, [3])

    def test_delivered_index_rejected(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 3, deliver=1)
        with pytest.raises(ChannelSurgeryError):
            channel.with_waiting(state, [1])

    def test_duplicate_index_rejected(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 3)
        with pytest.raises(ChannelSurgeryError):
            channel.with_waiting(state, [2, 2])

    def test_rewrite_cannot_change_history(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 3, deliver=2)
        # Craft a delivery set disagreeing on consumed slot 1.
        bogus = DeliverySet((3, 2), 1)
        with pytest.raises(ChannelSurgeryError):
            channel._rewrite(state, bogus)

    def test_empty_waiting_equals_clean(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 3)
        assert channel.with_waiting(state, []) == channel.make_clean(state)
