"""Tests for the channel-state surgeries realizing Lemmas 6.3-6.7."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabets import Packet
from repro.channels import (
    ChannelSurgeryError,
    DeliverySet,
    DeliverySetError,
    PermissiveChannel,
    PermissiveFifoChannel,
    receive_pkt,
    send_pkt,
)
from repro.channels.delivery_set import random_lossy_fifo, random_reordering

from .test_delivery_set import delivery_sets, monotone_delivery_sets


def packets(n):
    return [Packet(f"h{i}", (), uid=i) for i in range(1, n + 1)]


def loaded_channel(channel, n, deliver=0):
    """Channel with n sends and ``deliver`` deliveries performed."""
    state = channel.initial_state()
    for packet in packets(n):
        state = channel.step(state, send_pkt("t", "r", packet))
    for _ in range(deliver):
        (action,) = list(channel.enabled_local_actions(state))
        state = channel.step(state, action)
    return state


class TestMakeClean:
    """Lemma 6.3: every schedule can leave the channel clean."""

    def test_clean_after_sends(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 5)
        cleaned = channel.make_clean(state)
        assert cleaned.is_clean()
        # Everything in transit is lost: nothing deliverable.
        assert cleaned.deliverable() is None
        assert cleaned.waiting_sequence() == ()

    def test_clean_preserves_consumed_slots(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 5, deliver=2)
        cleaned = channel.make_clean(state)
        assert cleaned.delivered_indices() == state.delivered_indices()

    def test_clean_future_is_fifo(self):
        channel = PermissiveChannel("t", "r")
        state = channel.make_clean(loaded_channel(channel, 3, deliver=1))
        # The next send is delivered next, FIFO with no losses.
        new_packet = Packet("new", (), uid=99)
        state = channel.step(state, send_pkt("t", "r", new_packet))
        assert state.deliverable() == (4, new_packet)

    def test_clean_on_fifo_channel_stays_monotone(self):
        channel = PermissiveFifoChannel("t", "r")
        state = channel.make_clean(loaded_channel(channel, 4, deliver=2))
        assert state.delivery.is_monotone()

    def test_clean_is_idempotent(self):
        channel = PermissiveChannel("t", "r")
        state = channel.make_clean(loaded_channel(channel, 4))
        assert channel.make_clean(state) == state


class TestWithWaiting:
    """Lemmas 6.5-6.7: scheduling chosen in-transit packets."""

    def test_waiting_packets_scheduled_in_order(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 5)
        surgered = channel.with_waiting(state, [4, 2])
        pkts = packets(5)
        assert surgered.waiting_sequence() == (pkts[3], pkts[1])

    def test_non_fifo_order_allowed_on_cbar(self):
        """Lemma 6.7: any sequence of in-transit packets can wait."""
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 5)
        surgered = channel.with_waiting(state, [5, 1, 3])
        assert [p.uid for p in surgered.waiting_sequence()] == [5, 1, 3]

    def test_non_fifo_order_rejected_on_chat(self):
        from repro.channels.delivery_set import DeliverySetError

        channel = PermissiveFifoChannel("t", "r")
        state = loaded_channel(channel, 5)
        with pytest.raises(DeliverySetError):
            channel.with_waiting(state, [3, 1])

    def test_fifo_subsequence_allowed_on_chat(self):
        """Lemma 6.6 on C-hat: any subsequence of waiting packets."""
        channel = PermissiveFifoChannel("t", "r")
        state = loaded_channel(channel, 5)
        surgered = channel.with_waiting(state, [2, 5])
        assert [p.uid for p in surgered.waiting_sequence()] == [2, 5]
        assert surgered.delivery.is_monotone()

    def test_drained_channel_is_clean_afterwards(self):
        channel = PermissiveChannel("t", "r")
        state = channel.with_waiting(loaded_channel(channel, 3), [2])
        (action,) = list(channel.enabled_local_actions(state))
        state = channel.step(state, action)
        assert state.is_clean()

    def test_unsent_index_rejected(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 2)
        with pytest.raises(ChannelSurgeryError):
            channel.with_waiting(state, [3])

    def test_delivered_index_rejected(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 3, deliver=1)
        with pytest.raises(ChannelSurgeryError):
            channel.with_waiting(state, [1])

    def test_duplicate_index_rejected(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 3)
        with pytest.raises(ChannelSurgeryError):
            channel.with_waiting(state, [2, 2])

    def test_rewrite_cannot_change_history(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 3, deliver=2)
        # Craft a delivery set disagreeing on consumed slot 1.
        bogus = DeliverySet((3, 2), 1)
        with pytest.raises(ChannelSurgeryError):
            channel._rewrite(state, bogus)

    def test_empty_waiting_equals_clean(self):
        channel = PermissiveChannel("t", "r")
        state = loaded_channel(channel, 3)
        assert channel.with_waiting(state, []) == channel.make_clean(state)


# ----------------------------------------------------------------------
# Property tests: Lemmas 6.1-6.7 invariants under random channel states
# ----------------------------------------------------------------------


@st.composite
def channel_states(draw, fifo: bool = False):
    """A random reachable channel state: seeded delivery set, random
    waiting packet sequence (sends), and as many deliveries as the
    delivery set permits."""
    seed = draw(st.integers(0, 2**16))
    loss = draw(st.sampled_from([0.0, 0.2, 0.5]))
    if fifo:
        delivery = random_lossy_fifo(seed, loss, horizon=16)
        channel = PermissiveFifoChannel("t", "r", initial_delivery=delivery)
    else:
        window = draw(st.integers(1, 6))
        delivery = random_reordering(seed, loss, window, horizon=16)
        channel = PermissiveChannel("t", "r", initial_delivery=delivery)
    sends = draw(st.integers(0, 12))
    state = channel.initial_state()
    for packet in packets(sends):
        state = channel.step(state, send_pkt("t", "r", packet))
    deliveries = draw(st.integers(0, sends))
    for _ in range(deliveries):
        deliverable = state.deliverable()
        if deliverable is None:
            break
        state = channel.step(
            state, receive_pkt("t", "r", deliverable[1])
        )
    return channel, state


class TestSurgeryProperties:
    """Random-state invariants for the Section 6.3 surgeries."""

    @given(channel_states())
    @settings(max_examples=60, deadline=None)
    def test_make_clean_is_clean_and_idempotent(self, cs):
        channel, state = cs
        cleaned = channel.make_clean(state)
        assert cleaned.is_clean()
        # Lemma 6.3 surgery is idempotent: cleaning twice is cleaning once.
        assert channel.make_clean(cleaned) == cleaned

    @given(channel_states())
    @settings(max_examples=60, deadline=None)
    def test_make_clean_preserves_history(self, cs):
        channel, state = cs
        cleaned = channel.make_clean(state)
        assert cleaned.delivered_indices() == state.delivered_indices()
        assert cleaned.counter1 == state.counter1
        assert cleaned.counter2 == state.counter2
        assert cleaned.waiting_sequence() == ()

    @given(channel_states(fifo=True))
    @settings(max_examples=60, deadline=None)
    def test_make_clean_preserves_monotonicity(self, cs):
        channel, state = cs
        assert channel.make_clean(state).delivery.is_monotone()

    @given(channel_states(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_with_waiting_schedules_exactly_the_subsequence(self, cs, data):
        channel, state = cs
        transit = list(state.in_transit_indices())
        chosen = data.draw(st.permutations(transit))
        keep = data.draw(st.integers(0, len(chosen)))
        indices = list(chosen[:keep])
        surgered = channel.with_waiting(state, indices)
        # Lemma 6.6/6.7: exactly the chosen packets wait, in order.
        assert [
            p.uid for p in surgered.waiting_sequence()
        ] == [state.sent[i - 1].uid for i in indices]
        assert surgered.delivered_indices() == state.delivered_indices()

    @given(channel_states(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_with_waiting_drains_to_clean(self, cs, data):
        channel, state = cs
        transit = list(state.in_transit_indices())
        keep = data.draw(st.integers(0, len(transit)))
        indices = data.draw(st.permutations(transit))[:keep]
        surgered = channel.with_waiting(state, list(indices))
        for _ in range(len(indices)):
            deliverable = surgered.deliverable()
            assert deliverable is not None
            surgered = channel.step(
                surgered, receive_pkt("t", "r", deliverable[1])
            )
        # After the scheduled subsequence drains, the channel is clean:
        # everything else in transit was lost, future sends are FIFO.
        assert surgered.is_clean()
        assert surgered.waiting_sequence() == ()

    @given(channel_states(fifo=True), st.data())
    @settings(max_examples=60, deadline=None)
    def test_fifo_with_waiting_keeps_monotone(self, cs, data):
        channel, state = cs
        # Lemma 6.5's precondition on C-hat: the waiting subsequence
        # must be increasing *and above every consumed index* -- an
        # in-transit packet overtaken by a later consumed one is lost
        # for good on a FIFO channel and cannot be scheduled to wait.
        consumed = max(
            [
                state.delivery.source_of(j)
                for j in range(1, state.counter2 + 1)
            ],
            default=0,
        )
        transit = sorted(
            i for i in state.in_transit_indices() if i > consumed
        )
        keep = data.draw(st.integers(0, len(transit)))
        indices = transit[len(transit) - keep :]
        surgered = channel.with_waiting(state, indices)
        assert surgered.delivery.is_monotone()

    @given(delivery_sets(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_delete_slot_shifting_law(self, delivery, data):
        j = data.draw(st.integers(1, max(1, len(delivery.prefix) + 3)))
        deleted_index = delivery.source_of(j)
        result = delivery.delete_slot(j)
        # Slots below j unchanged; slots at/above j shift down by one;
        # the deleted send index becomes lost (del, Section 6.3).
        for slot in range(1, j):
            assert result.source_of(slot) == delivery.source_of(slot)
        for slot in range(j, j + 6):
            assert result.source_of(slot) == delivery.source_of(slot + 1)
        assert result.is_lost(deleted_index)
        with pytest.raises(DeliverySetError):
            result.delete_pair(deleted_index, j)

    @given(monotone_delivery_sets(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_delete_slot_preserves_monotonicity(self, delivery, data):
        j = data.draw(st.integers(1, max(1, len(delivery.prefix) + 3)))
        assert delivery.delete_slot(j).is_monotone()

    @given(delivery_sets(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_delete_slots_order_independent(self, delivery, data):
        upper = len(delivery.prefix) + 3
        slots = data.draw(
            st.lists(st.integers(1, upper), max_size=4, unique=True)
        )
        expected = delivery.delete_slots(slots)
        # Deleting in any order (with shift-corrected slot numbers via
        # delete_slots' original-numbering contract) agrees.
        assert delivery.delete_slots(tuple(reversed(slots))) == expected
