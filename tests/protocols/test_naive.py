"""Tests for the strawman protocols (negative controls)."""

from __future__ import annotations


from repro.alphabets import MessageFactory
from repro.datalink import (
    check_message_independence,
    dl5,
    dl_module,
)
from repro.protocols import (
    PHANTOM_MESSAGE,
    direct_protocol,
    eager_protocol,
    message_peeking_protocol,
    spontaneous_protocol,
)
from repro.sim import delivery_stats, fifo_system

from ..conftest import deliver_all


class TestDirect:
    def test_works_over_perfect_channels(self, factory):
        system = fifo_system(direct_protocol())
        messages = factory.fresh_many(4)
        fragment = deliver_all(system, messages)
        assert delivery_stats(fragment).delivered == 4
        assert dl_module("t", "r").contains(system.behavior(fragment))

    def test_is_message_independent(self):
        assert check_message_independence(direct_protocol()).independent


class TestEager:
    def test_single_copy_over_perfect_channels(self, factory):
        # With no loss and fast acks the duplicate window is narrow but
        # retransmission can still race the ack; all we check here is
        # that every message arrives at least once.
        system = fifo_system(eager_protocol())
        messages = factory.fresh_many(4)
        fragment = deliver_all(system, messages)
        delivered = {
            a.payload for a in fragment.actions if a.name == "receive_msg"
        }
        assert set(messages) <= delivered


class TestSpontaneous:
    def test_violates_dl5_immediately(self, factory):
        system = fifo_system(spontaneous_protocol())
        fragment = deliver_all(system, factory.fresh_many(1))
        behavior = system.behavior(fragment)
        assert not dl5(behavior, "t", "r").holds
        assert any(
            a.name == "receive_msg" and a.payload == PHANTOM_MESSAGE
            for a in behavior
        )


class TestPeeking:
    def test_drops_even_messages(self):
        system = fifo_system(message_peeking_protocol())
        factory = MessageFactory()
        messages = factory.fresh_many(4)  # idents 0..3
        fragment = deliver_all(system, messages)
        delivered = {
            a.payload for a in fragment.actions if a.name == "receive_msg"
        }
        assert delivered == {messages[1], messages[3]}

    def test_flagged_as_message_dependent(self):
        report = check_message_independence(message_peeking_protocol())
        assert not report.independent
