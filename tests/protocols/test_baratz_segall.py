"""Tests for the Baratz-Segall-style protocol with non-volatile memory."""

from __future__ import annotations

import pytest

from repro.alphabets import Message, Packet
from repro.datalink import dl4, dl5, dl_module
from repro.protocols.baratz_segall import (
    BsReceiver,
    BsTransmitter,
    baratz_segall_protocol,
)
from repro.sim import crash_storm, fifo_system, run_scenario

from ..conftest import deliver_all

M = [Message(i) for i in range(8)]


class TestTransmitterLogic:
    def setup_method(self):
        self.logic = BsTransmitter(nonvolatile=True)
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_syn_before_session(self):
        core = self.logic.on_send_msg(self.core, M[0])
        (packet,) = list(self.logic.enabled_sends(core))
        assert packet.header == ("SYN", 0)

    def test_no_syn_without_traffic(self):
        assert list(self.logic.enabled_sends(self.core)) == []

    def test_handshake_opens_session(self):
        core = self.logic.on_send_msg(self.core, M[0])
        core = self.logic.on_packet(core, Packet(("SYNACK", 0, 5)))
        assert core.peer == 5
        (packet,) = list(self.logic.enabled_sends(core))
        assert packet.header == ("DATA", (0, 5), 0)
        assert packet.body == (M[0],)

    def test_stale_synack_ignored(self):
        core = self.logic.on_send_msg(self.core, M[0])
        core = self.logic.on_packet(core, Packet(("SYNACK", 9, 5)))
        assert core.peer is None

    def test_ack_advances_sequence(self):
        core = self.logic.on_send_msg(self.core, M[0])
        core = self.logic.on_send_msg(core, M[1])
        core = self.logic.on_packet(core, Packet(("SYNACK", 0, 5)))
        core = self.logic.on_packet(core, Packet(("ACK", (0, 5), 0)))
        assert core.seq == 1 and core.current == M[1]

    def test_reset_drops_in_doubt_message(self):
        core = self.logic.on_send_msg(self.core, M[0])
        core = self.logic.on_send_msg(core, M[1])
        core = self.logic.on_packet(core, Packet(("SYNACK", 0, 5)))
        core = self.logic.on_packet(core, Packet(("RESET", 6)))
        # Session dead: M[0] (in doubt) discarded; M[1] stays queued
        # until the next handshake completes; the station re-SYNs.
        assert core.peer is None
        assert core.current is None
        assert core.queue == (M[1],)
        (packet,) = list(self.logic.enabled_sends(core))
        assert packet.header == ("SYN", 0)
        # After the new handshake M[1] is promoted.
        reopened = self.logic.on_packet(core, Packet(("SYNACK", 0, 6)))
        assert reopened.current == M[1]

    def test_reset_with_current_peer_epoch_ignored(self):
        core = self.logic.on_send_msg(self.core, M[0])
        core = self.logic.on_packet(core, Packet(("SYNACK", 0, 5)))
        core = self.logic.on_packet(core, Packet(("RESET", 5)))
        assert core.peer == 5

    def test_crash_bumps_nonvolatile_incarnation(self):
        crashed = self.logic.on_crash(self.core)
        assert crashed.nv == 1
        assert crashed.peer is None and crashed.queue == ()

    def test_volatile_crash_resets_everything(self):
        logic = BsTransmitter(nonvolatile=False)
        crashed = logic.on_crash(
            logic.on_crash(logic.initial_core())
        )
        assert crashed == logic.initial_core()


class TestReceiverLogic:
    def setup_method(self):
        self.logic = BsReceiver(nonvolatile=True)
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_syn_establishes_and_synacks(self):
        core = self.logic.on_packet(self.core, Packet(("SYN", 3)))
        assert core.tx_epoch == 3 and core.expected == 0
        (response,) = list(self.logic.enabled_sends(core))
        assert response.header == ("SYNACK", 3, 0)

    def test_data_in_session_delivered_and_acked(self):
        core = self.logic.on_packet(self.core, Packet(("SYN", 3)))
        core = self.logic.on_packet(
            core, Packet(("DATA", (3, 0), 0), (M[0],))
        )
        assert core.inbox == (M[0],)
        assert core.responses[-1].header == ("ACK", (3, 0), 0)

    def test_stale_session_data_resets(self):
        core = self.logic.on_packet(self.core, Packet(("SYN", 3)))
        core = self.logic.on_packet(
            core, Packet(("DATA", (3, 9), 0), (M[0],))
        )
        assert core.inbox == ()
        assert core.responses[-1].header == ("RESET", 0)

    def test_unknown_transmitter_resets(self):
        core = self.logic.on_packet(
            self.core, Packet(("DATA", (4, 0), 0), (M[0],))
        )
        assert core.responses[-1].header == ("RESET", 0)

    def test_duplicate_data_reacked_not_redelivered(self):
        core = self.logic.on_packet(self.core, Packet(("SYN", 3)))
        data = Packet(("DATA", (3, 0), 0), (M[0],))
        core = self.logic.on_packet(core, data)
        core = self.logic.on_packet(core, data)
        assert core.inbox == (M[0],)

    def test_crash_bumps_incarnation(self):
        crashed = self.logic.on_crash(self.core)
        assert crashed.nv == 1 and crashed.tx_epoch is None


class TestEndToEnd:
    def test_plain_delivery(self, factory):
        system = fifo_system(baratz_segall_protocol())
        messages = factory.fresh_many(5)
        fragment = deliver_all(system, messages)
        assert dl_module("t", "r").contains(system.behavior(fragment))

    @pytest.mark.parametrize("crashes", [1, 3, 6])
    @pytest.mark.parametrize("seed", range(3))
    def test_safety_under_crash_storms(self, crashes, seed):
        """(DL4)/(DL5) hold under arbitrary crash schedules -- the
        property the non-volatile incarnation buys."""
        system = fifo_system(baratz_segall_protocol(nonvolatile=True))
        script = crash_storm(system, crashes=crashes, seed=seed)
        result = run_scenario(system, script.actions, seed=seed)
        assert result.quiescent
        assert dl4(result.behavior, "t", "r").holds
        assert dl5(result.behavior, "t", "r").holds

    @pytest.mark.parametrize("seed", range(3))
    def test_post_crash_messages_delivered(self, seed, factory):
        """Messages submitted after the last crash settle are delivered."""
        system = fifo_system(baratz_segall_protocol(nonvolatile=True))
        # Crash both hosts, let things settle, then send.
        warmup = [
            system.wake_t(),
            system.wake_r(),
            system.send(factory.fresh()),
            system.crash_t(),
            system.wake_t(),
            system.crash_r(),
            system.wake_r(),
        ]
        state = system.run_fair(system.initial_state(), inputs=warmup)
        messages = factory.fresh_many(4)
        fragment = system.run_fair(
            state.final_state, inputs=[system.send(m) for m in messages]
        )
        delivered = {
            a.payload for a in fragment.actions if a.name == "receive_msg"
        }
        assert set(messages) <= delivered
