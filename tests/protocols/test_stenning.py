"""Tests for Stenning's protocol and its modulo weakening."""

from __future__ import annotations

import pytest

from repro.alphabets import Message, Packet
from repro.channels import reordering_channel
from repro.datalink import dl_module, wdl_module
from repro.protocols.stenning import (
    StenningReceiver,
    StenningTransmitter,
    modulo_stenning_protocol,
    stenning_protocol,
)
from repro.sim import DataLinkSystem, delivery_stats, fifo_system

from ..conftest import deliver_all

M = [Message(i) for i in range(8)]


class TestTransmitterLogic:
    def setup_method(self):
        self.logic = StenningTransmitter()
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_sequence_numbers_grow(self):
        core = self.core
        for m in M[:3]:
            core = self.logic.on_send_msg(core, m)
        for expected_seq in range(3):
            (packet,) = list(self.logic.enabled_sends(core))
            assert packet.header == ("DATA", expected_seq)
            core = self.logic.on_packet(
                core, Packet(("ACK", expected_seq))
            )
        assert core.seq == 3 and core.pending == ()

    def test_stale_ack_ignored(self):
        core = self.logic.on_send_msg(self.core, M[0])
        core = self.logic.on_packet(core, Packet(("ACK", 7)))
        assert core.seq == 0 and core.pending == (M[0],)

    def test_unbounded_header_space(self):
        assert self.logic.header_space() is None

    def test_modulo_header_space(self):
        assert len(StenningTransmitter(4).header_space()) == 4

    def test_modulo_wraps(self):
        logic = StenningTransmitter(2)
        core = logic.on_wake(logic.initial_core())
        for m in M[:3]:
            core = logic.on_send_msg(core, m)
        core = logic.on_packet(core, Packet(("ACK", 0)))
        core = logic.on_packet(core, Packet(("ACK", 1)))
        (packet,) = list(logic.enabled_sends(core))
        assert packet.header == ("DATA", 0)  # 2 mod 2


class TestReceiverLogic:
    def setup_method(self):
        self.logic = StenningReceiver()
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_expected_sequence_accepted(self):
        core = self.logic.on_packet(self.core, Packet(("DATA", 0), (M[0],)))
        assert core.inbox == (M[0],) and core.expected == 1

    def test_old_sequence_reacked_not_delivered(self):
        core = self.logic.on_packet(self.core, Packet(("DATA", 0), (M[0],)))
        core = self.logic.on_packet(core, Packet(("DATA", 0), (M[0],)))
        assert core.inbox == (M[0],)
        assert core.pending_acks == (0, 0)

    def test_future_sequence_not_delivered(self):
        core = self.logic.on_packet(self.core, Packet(("DATA", 5), (M[5],)))
        assert core.inbox == ()


class TestEndToEnd:
    def test_in_order_delivery_over_fifo(self, factory):
        system = fifo_system(stenning_protocol())
        messages = factory.fresh_many(6)
        fragment = deliver_all(system, messages)
        assert dl_module("t", "r").contains(system.behavior(fragment))

    @pytest.mark.parametrize("seed", range(5))
    def test_weakly_correct_over_reordering(self, seed, factory):
        """The positive counterpart of Theorem 8.5: unbounded headers
        tolerate arbitrary reordering."""
        system = DataLinkSystem.build(
            stenning_protocol(),
            reordering_channel(
                "t", "r", seed=seed, loss_rate=0.25, window=6
            ),
            reordering_channel(
                "r", "t", seed=seed + 17, loss_rate=0.25, window=6
            ),
        )
        messages = factory.fresh_many(8)
        fragment = deliver_all(system, messages)
        stats = delivery_stats(fragment)
        assert stats.delivered == 8 and stats.duplicates == 0
        assert wdl_module("t", "r").contains(system.behavior(fragment))

    def test_modulo_variant_validates(self):
        with pytest.raises(ValueError):
            modulo_stenning_protocol(1)

    def test_modulo_variant_correct_over_fifo(self, factory):
        system = fifo_system(modulo_stenning_protocol(4))
        messages = factory.fresh_many(9)
        fragment = deliver_all(system, messages)
        assert dl_module("t", "r").contains(system.behavior(fragment))

    def test_metadata(self):
        assert stenning_protocol().header_space() is None
        assert modulo_stenning_protocol(8).has_bounded_headers()
