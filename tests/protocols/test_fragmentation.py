"""Tests for the fragmenting protocol (Section 9 length-classes)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabets import Message, MessageFactory, Packet
from repro.channels import lossy_fifo_channel
from repro.datalink import dl_module
from repro.impossibility import (
    refute_bounded_headers,
    refute_crash_tolerance,
)
from repro.protocols.fragmentation import (
    FragReceiver,
    FragTransmitter,
    fragmenting_protocol,
    fragments_needed,
)
from repro.sim import DataLinkSystem, channel_stats, delivery_stats, fifo_system


class TestFragmentCount:
    def test_zero_size_single_fragment(self):
        assert fragments_needed(Message(1, size=0), chunk=2) == 1

    def test_exact_multiple(self):
        assert fragments_needed(Message(1, size=4), chunk=2) == 2

    def test_rounding_up(self):
        assert fragments_needed(Message(1, size=5), chunk=2) == 3


class TestTransmitterLogic:
    def setup_method(self):
        self.logic = FragTransmitter(chunk=1, modulus=2, max_fragments=4)
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FragTransmitter(chunk=0)
        with pytest.raises(ValueError):
            FragTransmitter(modulus=1)

    def test_small_message_is_final_only(self):
        core = self.logic.on_send_msg(self.core, Message(1, size=1))
        (packet,) = list(self.logic.enabled_sends(core))
        assert packet.header == ("FINAL", 0, 0)
        assert len(packet.body) == 1

    def test_large_message_starts_with_carriers(self):
        message = Message(1, size=3)
        core = self.logic.on_send_msg(self.core, message)
        (packet,) = list(self.logic.enabled_sends(core))
        assert packet.header == ("CARRIER", 0, 0)
        assert packet.body == ()
        # Ack the carriers one by one.
        core = self.logic.on_packet(core, Packet(("FACK", 0, 0)))
        (packet,) = list(self.logic.enabled_sends(core))
        assert packet.header == ("CARRIER", 0, 1)
        core = self.logic.on_packet(core, Packet(("FACK", 0, 1)))
        (packet,) = list(self.logic.enabled_sends(core))
        assert packet.header == ("FINAL", 0, 2)
        assert packet.body == (message,)

    def test_final_ack_advances_sequence(self):
        core = self.logic.on_send_msg(self.core, Message(1, size=1))
        core = self.logic.on_packet(core, Packet(("FACK", 0, 0)))
        assert core.seq == 1 and core.pending == ()

    def test_stale_ack_ignored(self):
        core = self.logic.on_send_msg(self.core, Message(1, size=1))
        core = self.logic.on_packet(core, Packet(("FACK", 1, 0)))
        assert core.pending  # unmoved

    def test_fragment_cap(self):
        logic = FragTransmitter(chunk=1, modulus=2, max_fragments=2)
        core = logic.on_wake(logic.initial_core())
        core = logic.on_send_msg(core, Message(1, size=99))
        core = logic.on_packet(core, Packet(("FACK", 0, 0)))
        (packet,) = list(logic.enabled_sends(core))
        assert packet.header[0] == "FINAL"  # capped at 2 fragments

    def test_header_space_is_finite(self):
        space = self.logic.header_space()
        assert len(space) == 2 * 2 * 4  # kinds x modulus x max_fragments


class TestReceiverLogic:
    def setup_method(self):
        self.logic = FragReceiver(chunk=1, modulus=2, max_fragments=4)
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_reassembly(self):
        message = Message(1, size=2)
        core = self.logic.on_packet(self.core, Packet(("CARRIER", 0, 0)))
        assert core.inbox == ()
        assert core.expected_index == 1
        core = self.logic.on_packet(
            core, Packet(("FINAL", 0, 1), (message,))
        )
        assert core.inbox == (message,)
        assert core.expected_seq == 1 and core.expected_index == 0

    def test_out_of_order_fragment_ignored_but_acked(self):
        core = self.logic.on_packet(self.core, Packet(("CARRIER", 0, 1)))
        assert core.expected_index == 0
        assert core.pending_acks == ((0, 1),)

    def test_wrong_sequence_ignored(self):
        message = Message(1, size=1)
        core = self.logic.on_packet(
            self.core, Packet(("FINAL", 1, 0), (message,))
        )
        assert core.inbox == ()


class TestEndToEnd:
    def test_mixed_sizes_in_order(self):
        system = fifo_system(fragmenting_protocol(chunk=1, max_fragments=3))
        factory = MessageFactory()
        messages = [factory.fresh(size=s) for s in (0, 3, 1, 2, 5)]
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[system.wake_t(), system.wake_r()]
            + [system.send(m) for m in messages],
        )
        delivered = [
            a.payload for a in fragment.actions if a.name == "receive_msg"
        ]
        assert delivered == messages
        assert dl_module("t", "r").contains(system.behavior(fragment))

    def test_packet_count_scales_with_size(self):
        def packets_for(size):
            system = fifo_system(
                fragmenting_protocol(chunk=1, max_fragments=4)
            )
            message = MessageFactory().fresh(size=size)
            fragment = system.run_fair(
                system.initial_state(),
                inputs=[
                    system.wake_t(),
                    system.wake_r(),
                    system.send(message),
                ],
            )
            return channel_stats(fragment, "t", "r").packets_sent

        assert packets_for(1) < packets_for(3) < packets_for(4)

    @pytest.mark.parametrize("seed", range(3))
    def test_delivery_under_loss(self, seed):
        system = DataLinkSystem.build(
            fragmenting_protocol(chunk=1, max_fragments=3),
            lossy_fifo_channel("t", "r", seed=seed, loss_rate=0.3),
            lossy_fifo_channel("r", "t", seed=seed + 5, loss_rate=0.3),
        )
        factory = MessageFactory()
        messages = [factory.fresh(size=s) for s in (2, 0, 3)]
        fragment = system.run_fair(
            system.initial_state(),
            inputs=[system.wake_t(), system.wake_r()]
            + [system.send(m) for m in messages],
        )
        stats = delivery_stats(fragment)
        assert stats.delivered == 3 and stats.duplicates == 0


class TestEngineVictim:
    """Section 9: the proofs extend to length-dependent classes."""

    def test_crash_engine_defeats_it_at_size_zero(self):
        certificate = refute_crash_tolerance(fragmenting_protocol())
        assert certificate.validate()

    def test_crash_engine_defeats_it_in_a_large_size_class(self):
        certificate = refute_crash_tolerance(
            fragmenting_protocol(chunk=1, max_fragments=3),
            message_size=3,
        )
        assert certificate.validate()
        # The multi-fragment reference execution deepens the chain.
        assert certificate.stats["pump_levels"] >= 5

    def test_header_engine_defeats_it_with_multi_packet_deliveries(self):
        certificate = refute_bounded_headers(
            fragmenting_protocol(chunk=1, max_fragments=3),
            message_size=3,
        )
        assert certificate.validate()
        assert certificate.stats["k"] >= 3  # at least one pkt per fragment

    @given(st.integers(0, 4))
    @settings(max_examples=5, deadline=None)
    def test_header_engine_defeats_every_size_class(self, size):
        certificate = refute_bounded_headers(
            fragmenting_protocol(chunk=2, max_fragments=2),
            message_size=size,
        )
        assert certificate.validate()
