"""Tests for the Go-Back-N sliding-window protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabets import Message, MessageFactory, Packet
from repro.channels import lossy_fifo_channel
from repro.datalink import dl_module
from repro.protocols.sliding_window import (
    SwReceiver,
    SwTransmitter,
    sliding_window_protocol,
)
from repro.sim import DataLinkSystem, delivery_stats, fifo_system

from ..conftest import deliver_all

M = [Message(i) for i in range(10)]


class TestTransmitterLogic:
    def setup_method(self):
        self.logic = SwTransmitter(window=2, modulus=3)
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SwTransmitter(window=0)
        with pytest.raises(ValueError):
            SwTransmitter(window=3, modulus=3)

    def test_window_limits_in_flight(self):
        core = self.core
        for m in M[:4]:
            core = self.logic.on_send_msg(core, m)
        sends = list(self.logic.enabled_sends(core))
        assert len(sends) == 2  # window of 2, not 4
        assert sends[0] == Packet(("DATA", 0), (M[0],))
        assert sends[1] == Packet(("DATA", 1), (M[1],))

    def test_cumulative_ack_advances_window(self):
        core = self.core
        for m in M[:4]:
            core = self.logic.on_send_msg(core, m)
        core = self.logic.on_packet(core, Packet(("ACK", 2)))
        assert core.base_seq == 2
        assert core.pending == tuple(M[2:4])
        sends = list(self.logic.enabled_sends(core))
        assert sends[0] == Packet(("DATA", 2), (M[2],))

    def test_stale_ack_ignored(self):
        core = self.logic.on_send_msg(self.core, M[0])
        core = self.logic.on_packet(core, Packet(("ACK", 0)))
        assert core.base_seq == 0 and core.pending == (M[0],)

    def test_ack_beyond_window_ignored(self):
        core = self.logic.on_send_msg(self.core, M[0])
        # Claims 2 slots acked while only 1 is pending.
        core = self.logic.on_packet(core, Packet(("ACK", 2)))
        assert core.base_seq == 0 and core.pending == (M[0],)

    def test_header_space_size(self):
        assert len(self.logic.header_space()) == 3


class TestReceiverLogic:
    def setup_method(self):
        self.logic = SwReceiver(window=2, modulus=3)
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_in_order_accepted(self):
        core = self.logic.on_packet(self.core, Packet(("DATA", 0), (M[0],)))
        assert core.inbox == (M[0],)
        assert core.expected == 1
        assert core.pending_acks == (1,)  # cumulative: next expected

    def test_out_of_order_discarded_but_acked(self):
        core = self.logic.on_packet(self.core, Packet(("DATA", 1), (M[1],)))
        assert core.inbox == ()
        assert core.pending_acks == (0,)  # still expecting 0

    def test_wraparound(self):
        core = self.core
        for i, m in enumerate(M[:4]):
            core = self.logic.on_packet(
                core, Packet(("DATA", i % 3), (m,))
            )
        assert core.inbox == tuple(M[:4])
        assert core.expected == 1  # 4 mod 3


class TestEndToEnd:
    @pytest.mark.parametrize("window", [1, 2, 4, 8])
    def test_in_order_delivery(self, window, factory):
        system = fifo_system(sliding_window_protocol(window))
        messages = factory.fresh_many(8)
        fragment = deliver_all(system, messages)
        delivered = [
            a.payload for a in fragment.actions if a.name == "receive_msg"
        ]
        assert delivered == list(messages)
        assert dl_module("t", "r").contains(system.behavior(fragment))

    @pytest.mark.parametrize("seed", range(4))
    def test_delivery_under_loss(self, seed, factory):
        system = DataLinkSystem.build(
            sliding_window_protocol(4),
            lossy_fifo_channel("t", "r", seed=seed, loss_rate=0.35),
            lossy_fifo_channel("r", "t", seed=seed + 31, loss_rate=0.35),
        )
        messages = factory.fresh_many(10)
        fragment = deliver_all(system, messages)
        stats = delivery_stats(fragment)
        assert stats.delivered == 10 and stats.duplicates == 0

    @given(st.integers(1, 6), st.integers(0, 4))
    @settings(max_examples=12, deadline=None)
    def test_window_modulus_combinations(self, window, extra_modulus):
        protocol = sliding_window_protocol(
            window, window + 1 + extra_modulus
        )
        system = fifo_system(protocol)
        factory = MessageFactory()
        messages = factory.fresh_many(5)
        fragment = deliver_all(system, messages)
        delivered = [
            a.payload for a in fragment.actions if a.name == "receive_msg"
        ]
        assert delivered == list(messages)
