"""Tests for the selective-repeat sliding-window protocol."""

from __future__ import annotations

import pytest

from repro.alphabets import Message, Packet
from repro.analysis import verify_delivery_order
from repro.channels import lossy_fifo_channel
from repro.datalink import (
    check_crashing,
    check_message_independence,
    dl_module,
)
from repro.impossibility import (
    refute_bounded_headers,
    refute_crash_tolerance,
)
from repro.protocols.selective_repeat import (
    SrReceiver,
    SrTransmitter,
    selective_repeat_protocol,
)
from repro.sim import DataLinkSystem, delivery_stats, fifo_system

from ..conftest import deliver_all

M = [Message(i) for i in range(10)]


class TestTransmitterLogic:
    def setup_method(self):
        self.logic = SrTransmitter(window=2, modulus=4)
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SrTransmitter(window=0)
        with pytest.raises(ValueError):
            SrTransmitter(window=3, modulus=5)  # needs >= 2w

    def test_window_fills_from_pending(self):
        core = self.core
        for m in M[:3]:
            core = self.logic.on_send_msg(core, m)
        assert [m for m, _ in core.window] == M[:2]
        assert core.pending == (M[2],)

    def test_selective_ack_marks_slot(self):
        core = self.core
        for m in M[:2]:
            core = self.logic.on_send_msg(core, m)
        # Ack the SECOND slot only: window cannot slide yet.
        core = self.logic.on_packet(core, Packet(("ACK", 1)))
        assert core.window == ((M[0], False), (M[1], True))
        assert core.base_seq == 0
        # Only the unacked slot is retransmitted.
        sends = list(self.logic.enabled_sends(core))
        assert [p.header for p in sends] == [("DATA", 0)]

    def test_window_slides_over_acked_prefix(self):
        core = self.core
        for m in M[:3]:
            core = self.logic.on_send_msg(core, m)
        core = self.logic.on_packet(core, Packet(("ACK", 1)))
        core = self.logic.on_packet(core, Packet(("ACK", 0)))
        # Both acked: slide by two, promote M[2].
        assert core.base_seq == 2
        assert [m for m, _ in core.window] == [M[2]]

    def test_stale_ack_ignored(self):
        core = self.logic.on_send_msg(self.core, M[0])
        core = self.logic.on_packet(core, Packet(("ACK", 3)))
        assert core.window == ((M[0], False),)


class TestReceiverLogic:
    def setup_method(self):
        self.logic = SrReceiver(window=2, modulus=4)
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_out_of_order_buffered_then_drained(self):
        core = self.logic.on_packet(self.core, Packet(("DATA", 1), (M[1],)))
        assert core.inbox == ()  # buffered, not deliverable yet
        assert dict(core.buffer) == {1: M[1]}
        core = self.logic.on_packet(core, Packet(("DATA", 0), (M[0],)))
        assert core.inbox == (M[0], M[1])  # gap filled: both drain
        assert core.buffer == ()
        assert core.expected == 2

    def test_outside_window_not_buffered(self):
        core = self.logic.on_packet(self.core, Packet(("DATA", 2), (M[2],)))
        assert core.buffer == ()
        assert core.pending_acks == (2,)  # still acknowledged

    def test_duplicate_buffered_packet_ignored(self):
        core = self.logic.on_packet(self.core, Packet(("DATA", 1), (M[1],)))
        core = self.logic.on_packet(core, Packet(("DATA", 1), (M[1],)))
        assert dict(core.buffer) == {1: M[1]}


class TestEndToEnd:
    @pytest.mark.parametrize("window", [1, 2, 4])
    def test_in_order_delivery(self, window, factory):
        system = fifo_system(selective_repeat_protocol(window))
        messages = factory.fresh_many(8)
        fragment = deliver_all(system, messages)
        delivered = [
            a.payload for a in fragment.actions if a.name == "receive_msg"
        ]
        assert delivered == list(messages)
        assert dl_module("t", "r").contains(system.behavior(fragment))

    @pytest.mark.parametrize("seed", range(4))
    def test_delivery_under_loss(self, seed, factory):
        system = DataLinkSystem.build(
            selective_repeat_protocol(3),
            lossy_fifo_channel("t", "r", seed=seed, loss_rate=0.35),
            lossy_fifo_channel("r", "t", seed=seed + 41, loss_rate=0.35),
        )
        messages = factory.fresh_many(9)
        fragment = deliver_all(system, messages)
        stats = delivery_stats(fragment)
        assert stats.delivered == 9 and stats.duplicates == 0


class TestTheoremVictim:
    def test_hypotheses(self):
        protocol = selective_repeat_protocol(2)
        assert check_message_independence(protocol).independent
        assert check_crashing(protocol).crashing
        assert protocol.has_bounded_headers()

    def test_crash_engine_defeats_it(self):
        assert refute_crash_tolerance(
            selective_repeat_protocol(2)
        ).validate()

    def test_header_engine_defeats_it(self):
        assert refute_bounded_headers(
            selective_repeat_protocol(2)
        ).validate()

    def test_exhaustively_verified_over_fifo(self):
        result = verify_delivery_order(
            selective_repeat_protocol(2), messages=2, capacity=2
        )
        assert result.ok and result.exhaustive
