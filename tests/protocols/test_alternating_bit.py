"""Tests for the alternating-bit protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabets import Message, MessageFactory, Packet
from repro.channels import lossy_fifo_channel
from repro.datalink import dl_module
from repro.protocols.alternating_bit import (
    AbpReceiver,
    AbpTransmitter,
    alternating_bit_protocol,
)
from repro.sim import DataLinkSystem, delivery_stats, fifo_system

from ..conftest import deliver_all

M1, M2 = Message(1), Message(2)


class TestTransmitterLogic:
    def setup_method(self):
        self.logic = AbpTransmitter()
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_initial_state(self):
        fresh = self.logic.initial_core()
        assert fresh.bit == 0 and fresh.queue == () and not fresh.awake

    def test_queueing(self):
        core = self.logic.on_send_msg(self.core, M1)
        core = self.logic.on_send_msg(core, M2)
        assert core.queue == (M1, M2)

    def test_sends_head_with_current_bit(self):
        core = self.logic.on_send_msg(self.core, M1)
        (packet,) = list(self.logic.enabled_sends(core))
        assert packet == Packet(("DATA", 0), (M1,))

    def test_no_send_while_asleep(self):
        core = self.logic.on_send_msg(self.logic.initial_core(), M1)
        assert list(self.logic.enabled_sends(core)) == []

    def test_matching_ack_advances(self):
        core = self.logic.on_send_msg(self.core, M1)
        core = self.logic.on_packet(core, Packet(("ACK", 0)))
        assert core.queue == () and core.bit == 1

    def test_stale_ack_ignored(self):
        core = self.logic.on_send_msg(self.core, M1)
        core = self.logic.on_packet(core, Packet(("ACK", 1)))
        assert core.queue == (M1,) and core.bit == 0

    def test_ack_with_empty_queue_ignored(self):
        core = self.logic.on_packet(self.core, Packet(("ACK", 0)))
        assert core.bit == 0

    def test_retransmission_allowed(self):
        core = self.logic.on_send_msg(self.core, M1)
        (packet,) = list(self.logic.enabled_sends(core))
        after = self.logic.after_send(core, packet)
        assert list(self.logic.enabled_sends(after)) == [packet]


class TestReceiverLogic:
    def setup_method(self):
        self.logic = AbpReceiver()
        self.core = self.logic.on_wake(self.logic.initial_core())

    def test_expected_bit_accepted(self):
        core = self.logic.on_packet(
            self.core, Packet(("DATA", 0), (M1,))
        )
        assert core.inbox == (M1,)
        assert core.expected == 1
        assert core.pending_acks == (0,)

    def test_duplicate_bit_reacked_not_redelivered(self):
        core = self.logic.on_packet(
            self.core, Packet(("DATA", 0), (M1,))
        )
        core = self.logic.on_packet(core, Packet(("DATA", 0), (M1,)))
        assert core.inbox == (M1,)  # no duplicate
        assert core.pending_acks == (0, 0)  # but re-acknowledged

    def test_delivery_pops_inbox(self):
        core = self.logic.on_packet(
            self.core, Packet(("DATA", 0), (M1,))
        )
        assert list(self.logic.enabled_deliveries(core)) == [M1]
        core = self.logic.after_delivery(core, M1)
        assert list(self.logic.enabled_deliveries(core)) == []

    def test_acks_drain_in_order(self):
        core = self.logic.on_packet(
            self.core, Packet(("DATA", 0), (M1,))
        )
        core = self.logic.on_packet(core, Packet(("DATA", 1), (M2,)))
        (ack,) = list(self.logic.enabled_sends(core))
        assert ack == Packet(("ACK", 0))
        core = self.logic.after_send(core, ack)
        (ack2,) = list(self.logic.enabled_sends(core))
        assert ack2 == Packet(("ACK", 1))


class TestEndToEnd:
    def test_in_order_delivery(self, factory):
        system = fifo_system(alternating_bit_protocol())
        messages = factory.fresh_many(5)
        fragment = deliver_all(system, messages)
        stats = delivery_stats(fragment)
        assert stats.delivered == 5 and stats.duplicates == 0
        behavior = system.behavior(fragment)
        assert dl_module("t", "r").contains(behavior)

    @pytest.mark.parametrize("loss", [0.2, 0.5])
    @pytest.mark.parametrize("seed", range(3))
    def test_delivery_under_loss(self, factory, loss, seed):
        system = DataLinkSystem.build(
            alternating_bit_protocol(),
            lossy_fifo_channel("t", "r", seed=seed, loss_rate=loss),
            lossy_fifo_channel("r", "t", seed=seed + 50, loss_rate=loss),
        )
        messages = factory.fresh_many(6)
        fragment = deliver_all(system, messages)
        stats = delivery_stats(fragment)
        assert stats.delivered == 6 and stats.duplicates == 0

    def test_metadata(self):
        protocol = alternating_bit_protocol()
        assert protocol.has_bounded_headers()
        assert not protocol.crash_resilient

    @given(st.integers(1, 12))
    @settings(max_examples=10, deadline=None)
    def test_any_message_count_delivered_in_order(self, count):
        system = fifo_system(alternating_bit_protocol())
        factory = MessageFactory()
        messages = factory.fresh_many(count)
        fragment = deliver_all(system, messages)
        delivered = [
            a.payload
            for a in fragment.actions
            if a.name == "receive_msg"
        ]
        assert delivered == list(messages)
