"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.alphabets import MessageFactory
from repro.protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    sliding_window_protocol,
    stenning_protocol,
)
from repro.sim.network import fifo_system, permissive_system


@pytest.fixture
def factory() -> MessageFactory:
    return MessageFactory()


@pytest.fixture
def abp():
    return alternating_bit_protocol()


@pytest.fixture
def abp_fifo(abp):
    return fifo_system(abp)


@pytest.fixture
def abp_permissive(abp):
    return permissive_system(abp)


@pytest.fixture
def sliding_window():
    return sliding_window_protocol(2)


@pytest.fixture
def stenning():
    return stenning_protocol()


@pytest.fixture
def baratz_segall_nv():
    return baratz_segall_protocol(nonvolatile=True)


@pytest.fixture
def baratz_segall_volatile():
    return baratz_segall_protocol(nonvolatile=False)


def deliver_all(system, messages, max_steps=100_000):
    """Wake both ends, submit messages, run fairly to quiescence."""
    inputs = [system.wake_t(), system.wake_r()] + [
        system.send(m) for m in messages
    ]
    return system.run_fair(
        system.initial_state(), inputs=inputs, max_steps=max_steps
    )
