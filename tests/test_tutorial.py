"""Executable form of docs/tutorial.md: every claim there is tested here.

The NAK protocol below is the tutorial's verbatim example; each section
of the tutorial corresponds to one test.  If these tests pass, the
tutorial's code and claims are accurate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Tuple


from repro.alphabets import Message, Packet
from repro.analysis import render_msc, verify_delivery_order
from repro.datalink import (
    DataLinkProtocol,
    ReceiverLogic,
    TransmitterLogic,
    check_crashing,
    check_message_independence,
    check_over_lossy_fifo,
    check_over_reordering,
    probe_k_bound,
)
from repro.impossibility import (
    refute_bounded_headers,
    refute_crash_tolerance,
)


@dataclass(frozen=True)
class TxCore:
    bit: int = 0
    queue: Tuple[Message, ...] = ()
    awake: bool = False


class NakTransmitter(TransmitterLogic):
    def initial_core(self):
        return TxCore()

    def on_wake(self, core):
        return replace(core, awake=True)

    def on_fail(self, core):
        return replace(core, awake=False)

    def on_send_msg(self, core, message):
        return replace(core, queue=core.queue + (message,))

    def on_packet(self, core, packet):
        kind, bit = packet.header
        if not core.queue:
            return core
        if kind == "OK" and bit == core.bit:
            return replace(core, bit=core.bit ^ 1, queue=core.queue[1:])
        if kind == "NAK" and bit == core.bit ^ 1:
            # The receiver already expects the next bit: our current
            # message must have been delivered -- an implicit ack.
            return replace(core, bit=core.bit ^ 1, queue=core.queue[1:])
        return core

    def enabled_sends(self, core) -> Iterable[Packet]:
        if core.awake and core.queue:
            yield Packet(("MSG", core.bit), (core.queue[0],))

    def after_send(self, core, packet):
        return core

    def header_space(self):
        return frozenset({("MSG", 0), ("MSG", 1)})


@dataclass(frozen=True)
class RxCore:
    expected: int = 0
    inbox: Tuple[Message, ...] = ()
    replies: Tuple[Tuple[str, int], ...] = ()
    awake: bool = False


class NakReceiver(ReceiverLogic):
    def initial_core(self):
        return RxCore()

    def on_wake(self, core):
        return replace(core, awake=True)

    def on_fail(self, core):
        return replace(core, awake=False)

    def on_packet(self, core, packet):
        kind, bit = packet.header
        if kind != "MSG":
            return core
        if bit == core.expected:
            (message,) = packet.body
            core = replace(
                core,
                expected=core.expected ^ 1,
                inbox=core.inbox + (message,),
            )
            reply = ("OK", bit)
        else:
            reply = ("NAK", core.expected)
        return replace(core, replies=(core.replies + (reply,))[-4:])

    def enabled_sends(self, core) -> Iterable[Packet]:
        if core.awake and core.replies:
            yield Packet(core.replies[0])

    def after_send(self, core, packet):
        return replace(core, replies=core.replies[1:])

    def enabled_deliveries(self, core) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]

    def after_delivery(self, core, message):
        return replace(core, inbox=core.inbox[1:])

    def header_space(self):
        return frozenset({("OK", 0), ("OK", 1), ("NAK", 0), ("NAK", 1)})


def nak_protocol() -> DataLinkProtocol:
    return DataLinkProtocol(
        name="nak-abp",
        transmitter_factory=NakTransmitter,
        receiver_factory=NakReceiver,
        description="alternating bit with explicit negative acks",
    )


class TestSection2Hypotheses:
    def test_hypothesis_checks(self):
        protocol = nak_protocol()
        assert check_message_independence(protocol).independent
        assert check_crashing(protocol).crashing
        assert protocol.has_bounded_headers()
        assert len(protocol.header_space()) == 6
        assert probe_k_bound(protocol).k == 1


class TestSection3Simulation:
    def test_fine_over_fifo(self):
        assert check_over_lossy_fifo(
            nak_protocol(), loss_rate=0.4, seeds=range(5)
        ).ok

    def test_breaks_over_reordering(self):
        assert not check_over_reordering(
            nak_protocol(), seeds=range(4), max_steps=50_000
        ).ok


class TestSection4Engines:
    def test_both_engines_defeat_it(self):
        crash_cert = refute_crash_tolerance(nak_protocol())
        header_cert = refute_bounded_headers(nak_protocol())
        assert crash_cert.validate()
        assert header_cert.validate()


class TestSection5Exhaustive:
    def test_verified_over_fifo(self):
        result = verify_delivery_order(
            nak_protocol(), messages=2, capacity=2
        )
        assert result.ok and result.exhaustive

    def test_counterexample_under_reordering(self):
        broken = verify_delivery_order(
            nak_protocol(), messages=2, capacity=3, reorder_depth=2
        )
        assert not broken.ok
        chart = render_msc(broken.counterexample)
        assert "receive_msg" in chart


class TestSection5Backends:
    """Mirrors the compiled-core / disk-frontier subsection verbatim."""

    def test_accel_and_disk_match_the_engine(self, monkeypatch):
        from repro.analysis import build_closed_system
        from repro.ioa import explore
        from repro.protocols import alternating_bit_protocol

        # A tiny RAM cap forces the disk backend to actually spill.
        monkeypatch.setenv("REPRO_DISK_RAM_CAP", "64")
        system, invariant, _ = build_closed_system(
            alternating_bit_protocol(), messages=3, capacity=3
        )
        fast = explore(system, invariant=invariant, engine="accel")
        big = explore(system, invariant=invariant, engine="disk")
        baseline = explore(system, invariant=invariant)
        assert fast.states == baseline.states
        assert big.states == baseline.states
        assert not baseline.truncated
        # Lazy set views answer membership without materializing.
        assert system.initial_state() in big.states


class TestSection8Lint:
    def test_nak_protocol_lints_clean(self):
        from repro.lint import lint_targets, target_from

        report = lint_targets([target_from(nak_protocol())])
        assert report.ok, report.render_text()


class TestSection9Observability:
    """Mirrors the section-9 crash-storm trace walkthrough verbatim."""

    def test_crash_storm_trace_walkthrough(self, tmp_path):
        from repro.obs import RunManifest, read_events, trace_run
        from repro.protocols import alternating_bit_protocol
        from repro.sim import (
            FaultPlan,
            fifo_system,
            generate_script,
            run_scenario,
        )

        path = str(tmp_path / "abp_crash.jsonl")
        system = fifo_system(alternating_bit_protocol())
        plan = FaultPlan(messages=6, crash_probability=0.9, seed=1)
        script = generate_script(system, plan)
        with trace_run(
            path,
            command="simulate",
            protocol="alternating-bit",
            seed=1,
            config={"messages": 6, "crash_probability": 0.9},
        ):
            result = run_scenario(system, script.actions, seed=1)

        events = read_events(path)
        manifest = RunManifest.find(events)
        assert manifest.counters["sim.steps"] == result.steps
        assert manifest.counters["sim.crash_injections"] >= 1
        # Theorem 7.5 measured: a crashing protocol loses messages.
        assert manifest.counters["sim.messages_delivered"] < 6

    def test_crash_steps_are_visible_in_context(self, tmp_path):
        from repro.obs import read_events, trace_run
        from repro.protocols import alternating_bit_protocol
        from repro.sim import (
            FaultPlan,
            fifo_system,
            generate_script,
            run_scenario,
        )

        path = str(tmp_path / "abp_crash.jsonl")
        system = fifo_system(alternating_bit_protocol())
        plan = FaultPlan(messages=6, crash_probability=0.9, seed=1)
        script = generate_script(system, plan)
        with trace_run(path, command="simulate"):
            run_scenario(system, script.actions, seed=1)
        events = read_events(path)
        crash_steps = [
            e
            for e in events
            if e.kind == "span_start"
            and e.name == "sim.step"
            and "crash" in e.fields.get("action", "")
        ]
        assert crash_steps


class TestSection10Fuzzing:
    """Mirrors tutorial section 10: the fuzzing walkthrough."""

    def campaign(self):
        from repro.conformance import FuzzConfig, fuzz_campaign

        return fuzz_campaign("naive", "nonfifo", 7, FuzzConfig(runs=1))

    def test_worked_shrink_numbers(self):
        campaign = self.campaign()
        violation = campaign.violations[0]
        assert violation.violation.oracle == "DL4"
        assert violation.shrink.original_length == 8
        assert violation.shrunk_length == 3
        # wake_t . wake_r . send_msg(s0) is the locally-minimal core.
        assert [a.name for a in violation.shrink.actions] == [
            "wake",
            "wake",
            "send_msg",
        ]
        assert "received at events" in violation.violation.witness

    def test_replay_file_reproduces(self, tmp_path):
        from repro.conformance import replay, save_repro

        campaign = self.campaign()
        path = save_repro(
            tmp_path / "repro.json", campaign.violations[0].repro
        )
        outcome = replay(path)
        assert outcome.reproduced
        assert outcome.oracle == "DL4"

    def test_abp_is_acquitted_over_fifo(self):
        from repro.conformance import FuzzConfig, fuzz_campaign

        campaign = fuzz_campaign(
            "alternating_bit", "fifo", 7, FuzzConfig(runs=3)
        )
        assert campaign.violations == []
        assert campaign.report().status == "ok"

    def test_default_mix_injects_no_crashes(self):
        # Theorem 7.5: crashes legitimately defeat crashing protocols,
        # so a default-campaign crash conviction would prove nothing.
        from repro.conformance import FuzzConfig

        assert FuzzConfig().crash_probability == 0.0


class TestSection12Load:
    """Mirrors tutorial section 12: the load-generation walkthrough."""

    def result(self, workers=1):
        from repro.sim.load import LoadConfig, run_load

        return run_load(
            "alternating_bit", "fifo", 0, LoadConfig(sessions=500),
            workers=workers,
        )

    def test_worked_run_numbers(self):
        report = self.result().report()
        assert report.status == "ok"
        assert report.counters["load.sessions"] == 500
        assert report.counters["load.messages_delivered"] == 2000
        assert report.counters["load.messages_sent"] == 2000
        assert report.counters["load.duplicate_deliveries"] == 0
        assert report.counters["load.steps"] == 23495
        assert report.counters["load.packets_dropped"] == 1977
        latency = report.details["latency"]
        assert latency["count"] == 2000
        assert (latency["p50"], latency["p95"], latency["p99"]) == (10, 32, 42)
        assert latency["max"] == 56
        ratio = report.details["delivery_ratio"]
        assert (ratio["p50"], ratio["p99"], ratio["min"]) == (1.0, 1.0, 1.0)

    def test_workers_identity_as_documented(self):
        from repro.sim.load import normalized_report

        serial = normalized_report(self.result(workers=1).report().to_dict())
        pooled = normalized_report(self.result(workers=2).report().to_dict())
        assert serial == pooled

    def test_mix_vocabulary_shared_with_fuzz(self):
        from repro.conformance.harness import FAULT_MIXES
        from repro.sim.load import LoadConfig, with_load_mix

        for mix in ("clean", "drop-flood", "reorder-flood", "crash-storm"):
            assert mix in FAULT_MIXES
            assert with_load_mix(LoadConfig(), mix).mix == mix

    def test_traced_run_carries_gauges(self):
        from repro.obs import MemorySink, tracing
        from repro.sim.load import LoadConfig, run_load

        sink = MemorySink()
        with tracing(sink) as tracer:
            run_load("alternating_bit", "fifo", 0, LoadConfig(sessions=5))
            assert tracer.gauges["load.sessions_done"] == 5
            assert tracer.gauges["load.sessions_active"] == 0
        names = {event.name for event in sink.events}
        assert "load.shard.sessions" in names
        assert "load.session" in names


class TestSection13Stabilization:
    """Mirrors tutorial section 13: the self-stabilization walkthrough."""

    def config(self, **overrides):
        import dataclasses

        from repro.conformance import FuzzConfig

        return dataclasses.replace(
            FuzzConfig(),
            init_mode="arbitrary",
            messages=4,
            max_steps=4000,
            **overrides,
        )

    def test_corruption_perturbs_the_transmitter_as_documented(self):
        from repro.conformance import SubSeeds, build_system, corrupt_initial_state

        seeds = SubSeeds(channel_tr=1, channel_rt=2, script=3, interleave=4)
        config = self.config()
        system = build_system("alternating_bit", "bounded_nonfifo", seeds, config)
        clean = system.automaton.initial_state()
        corrupted = corrupt_initial_state(system, seeds, config)
        assert corrupted != clean
        tx = corrupted[0]
        assert (tx.core.bit, tx.core.awake, tx.uid_counter) == (1, True, 6)

    def test_worked_single_run_stabilizes_immediately(self):
        from repro.conformance import (
            SubSeeds,
            build_script,
            build_system,
            execute_script,
            stabilization_report,
        )

        seeds = SubSeeds(channel_tr=1, channel_rt=2, script=3, interleave=4)
        config = self.config()
        system = build_system("alternating_bit", "bounded_nonfifo", seeds, config)
        script = build_script(system, seeds, config)
        result = execute_script(system, script.actions, seeds, config)
        assert result.quiescent
        report = stabilization_report(result.behavior, system.t, system.r)
        assert (report.length, report.time, report.converged) == (9, 0, True)

    def test_worked_campaign_numbers(self):
        from repro.conformance import fuzz_campaign

        campaign = fuzz_campaign(
            "alternating_bit",
            "bounded_nonfifo",
            3,
            self.config(runs=5),
        )
        convictions = [
            (v.run_index, v.violation.oracle) for v in campaign.violations
        ]
        assert convictions == [(0, "SSTAB2"), (1, "SSTAB2"), (4, "SSTAB2")]
        assert "stabilization_time 9 exceeds the convergence bound 8" in (
            campaign.violations[0].violation.witness
        )
        stab = campaign.report().details["stabilization"]
        assert (stab["p50"], stab["p95"], stab["p99"], stab["max"]) == (
            9, 15, 15, 15,
        )
        assert stab["measured_runs"] == stab["converged_runs"] == 5
        # The shrinker tightens the run-0 script as documented.
        first = campaign.violations[0]
        assert (first.script_length, first.shrunk_length) == (6, 5)

    def test_repro_file_replays_the_sstab2_conviction(self, tmp_path):
        from repro.conformance import fuzz_campaign, replay, save_repro

        campaign = fuzz_campaign(
            "alternating_bit", "bounded_nonfifo", 3, self.config(runs=1)
        )
        path = save_repro(
            tmp_path / "repro.json", campaign.violations[0].repro
        )
        outcome = replay(path)
        assert outcome.reproduced
        assert outcome.oracle == "SSTAB2"

    def test_zoo_protocols_decline_the_self_stabilizing_claim(self):
        from repro.conformance import FUZZ_PROTOCOLS
        from repro.lint.claims import parse_claims

        for name in sorted(FUZZ_PROTOCOLS):
            claims = parse_claims(FUZZ_PROTOCOLS[name]().claims)
            assert claims.self_stabilizing is False, name
