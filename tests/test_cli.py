"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main, resolve_protocol


class TestResolve:
    def test_simple_name(self):
        assert resolve_protocol("abp").name == "alternating-bit"

    def test_parameterized(self):
        assert (
            resolve_protocol("sliding-window:4").name
            == "sliding-window(w=4,N=5)"
        )
        assert (
            resolve_protocol("mod-stenning:8").name
            == "modulo-stenning(N=8)"
        )

    def test_default_parameter(self):
        assert (
            resolve_protocol("sliding-window").name
            == "sliding-window(w=2,N=3)"
        )

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            resolve_protocol("nope")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "abp" in out and "stenning" in out

    def test_check(self, capsys):
        assert main(["check", "abp"]) == 0
        out = capsys.readouterr().out
        assert "message-independent: yes" in out
        assert "crashing" in out
        assert "k = 1" in out

    def test_check_unbounded_headers(self, capsys):
        assert main(["check", "stenning"]) == 0
        assert "unbounded" in capsys.readouterr().out

    def test_refute_crash(self, capsys):
        assert main(["refute-crash", "abp"]) == 0
        out = capsys.readouterr().out
        assert "theorem-7.5" in out
        assert "independently validated: True" in out

    def test_refute_crash_rejects_nonvolatile(self, capsys):
        assert main(["refute-crash", "baratz-segall"]) == 2
        assert "rejected" in capsys.readouterr().out

    def test_refute_headers(self, capsys):
        assert main(["refute-headers", "mod-stenning:2"]) == 0
        out = capsys.readouterr().out
        assert "theorem-8.5" in out

    def test_refute_headers_rejects_stenning(self, capsys):
        assert main(["refute-headers", "stenning"]) == 2

    def test_refute_headers_message_size(self, capsys):
        assert (
            main(
                [
                    "refute-headers",
                    "fragmenting:1",
                    "--message-size",
                    "2",
                ]
            )
            == 0
        )

    def test_simulate_clean(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "sliding-window:4",
                    "--messages",
                    "6",
                    "--loss",
                    "0.3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "delivered 6" in out
        assert "DL4" in out

    def test_simulate_detects_violations(self, capsys):
        # ABP over heavy reordering: the audit reports the violation.
        code = main(
            [
                "simulate",
                "abp",
                "--reorder",
                "6",
                "--loss",
                "0.2",
                "--seed",
                "1",
                "--messages",
                "12",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATED" in out

    def test_growth(self, capsys):
        assert (
            main(["growth", "stenning", "--checkpoints", "1", "4"]) == 0
        )
        assert "slope: 2.00" in capsys.readouterr().out

    def test_refute_crash_json(self, capsys):
        import json

        assert main(["refute-crash", "abp", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == [
            "command",
            "counters",
            "details",
            "duration_s",
            "status",
        ]
        assert payload["command"] == "refute-crash"
        assert payload["status"] == "ok"
        assert payload["details"]["theorem"] == "theorem-7.5"
        assert payload["details"]["validated"] is True
        assert payload["details"]["behavior"][0]["name"] == "wake"
        assert payload["counters"]["refute.pump_levels"] >= 1

    def test_verify_command(self, capsys):
        assert main(["verify", "abp", "--messages", "2"]) == 0
        out = capsys.readouterr().out
        assert "invariant holds" in out

    def test_verify_reorder_counterexample(self, capsys):
        code = main(["verify", "abp", "--reorder-depth", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "counterexample" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "--only", "E6"]) == 0
        out = capsys.readouterr().out
        assert "[E6]" in out and "k-boundedness" in out

    def test_experiments_markdown_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert (
            main(
                [
                    "experiments",
                    "--only",
                    "E6",
                    "--format",
                    "markdown",
                    "--output",
                    str(target),
                ]
            )
            == 0
        )
        assert "### E6" in target.read_text()
