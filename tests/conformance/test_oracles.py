"""Tests for the fuzzer's oracle layer (scoping, prefix search, catalog)."""

from __future__ import annotations

import pytest

from repro.conformance import (
    DL_ORACLES,
    PL_ORACLES,
    FuzzConfig,
    SubSeeds,
    build_script,
    build_system,
    check_execution,
    earliest_violating_prefix,
    execute_script,
    oracle_catalog,
)
from repro.conformance.oracles import PREFIX, QUIESCENT
from repro.datalink.properties import dl4


SEEDS = SubSeeds(channel_tr=1, channel_rt=2, script=3, interleave=4)


def run_once(protocol, channel, config=None, seeds=SEEDS):
    config = config or FuzzConfig()
    system = build_system(protocol, channel, seeds, config)
    script = build_script(system, seeds, config)
    result = execute_script(system, script.actions, seeds, config)
    return system, result


class TestCatalog:
    def test_every_paper_predicate_is_registered(self):
        names = {oracle.name for oracle in DL_ORACLES + PL_ORACLES}
        assert {"DL-well-formed", "valid", "PL-well-formed"} <= names
        assert {f"DL{i}" for i in range(1, 9)} <= names
        assert {f"PL{i}" for i in range(1, 6)} <= names
        assert "PL6-finite" in names

    def test_scopes_are_sound(self):
        # Liveness-flavored predicates must never run on truncated
        # traces: a fair extension could cure the apparent violation.
        by_name = {o.name: o for o in DL_ORACLES + PL_ORACLES}
        for name in ("DL1", "DL7", "DL8", "valid", "PL6-finite"):
            assert by_name[name].scope == QUIESCENT
        for name in ("DL-well-formed", "DL4", "DL6", "PL2", "PL5"):
            assert by_name[name].scope == PREFIX

    def test_pl5_applies_only_to_fifo_channels(self):
        by_name = {o.name: o for o in PL_ORACLES}
        assert by_name["PL5"].fifo_only

    def test_catalog_carries_paper_sections(self):
        # DL/PL oracles cite sections of the source paper; the
        # stabilization family cites the self-stabilization literature.
        for entry in oracle_catalog():
            assert entry["paper"].startswith(("§", "arXiv:"))


class TestCheckExecution:
    def test_correct_protocol_passes_all_oracles(self):
        system, result = run_once("alternating_bit", "fifo")
        assert result.quiescent
        assert check_execution(system, result) == []

    def test_naive_duplicates_flag_dl4(self):
        config = FuzzConfig()
        found = []
        for s in range(6):
            seeds = SubSeeds(s * 4 + 1, s * 4 + 2, s * 4 + 3, s * 4 + 4)
            system, result = run_once("naive", "nonfifo", config, seeds)
            found += [v.oracle for v in check_execution(system, result)]
        assert "DL4" in found

    def test_direct_protocol_loses_flag_liveness(self):
        found = []
        for s in range(6):
            seeds = SubSeeds(s * 4 + 1, s * 4 + 2, s * 4 + 3, s * 4 + 4)
            system, result = run_once("naive_direct", "fifo", FuzzConfig(), seeds)
            found += [v.oracle for v in check_execution(system, result)]
        # Fire-and-forget loses messages: DL7 (gaps) or DL8 (liveness).
        assert set(found) & {"DL7", "DL8"}

    def test_violation_records_direction_for_pl_and_not_dl(self):
        system, result = run_once("naive", "nonfifo")
        for violation in check_execution(system, result):
            if violation.layer == "dl":
                assert violation.direction is None
            else:
                assert violation.direction in (("t", "r"), ("r", "t"))

    def test_prefix_length_reported_for_prefix_oracles(self):
        for s in range(6):
            seeds = SubSeeds(s * 4 + 1, s * 4 + 2, s * 4 + 3, s * 4 + 4)
            system, result = run_once("naive", "nonfifo", FuzzConfig(), seeds)
            violations = [
                v for v in check_execution(system, result) if v.scope == PREFIX
            ]
            if violations:
                break
        assert violations
        for violation in violations:
            assert violation.prefix_length is not None
            assert 1 <= violation.prefix_length <= len(result.behavior)

    def test_describe_mentions_oracle_and_witness(self):
        system, result = run_once("naive", "nonfifo")
        violations = check_execution(system, result)
        assert violations
        text = violations[0].describe()
        assert violations[0].oracle in text
        assert violations[0].witness in text


class TestEarliestPrefix:
    def test_binary_search_matches_linear_scan(self):
        system, result = run_once("naive", "nonfifo")
        behavior = result.behavior
        assert not dl4(behavior, "t", "r").holds
        fast = earliest_violating_prefix(dl4, behavior, "t", "r")
        slow = next(
            n
            for n in range(1, len(behavior) + 1)
            if not dl4(behavior[:n], "t", "r").holds
        )
        assert fast == slow
        # Minimality: one event less and the oracle still holds.
        assert dl4(behavior[: fast - 1], "t", "r").holds
