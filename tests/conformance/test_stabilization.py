"""Mutant fixtures pinning each stabilization oracle (arXiv:1011.3632).

Each fixture protocol is engineered to violate exactly one of the
SSTAB oracles under the arbitrary-initial-state fuzz mode:

* the **diverger** never quiesces (its transmitter always has a packet
  to push), so only SSTAB-wf fires -- the quiescent-scoped oracles are
  skipped on a truncated run;
* the **never-converger** delivers a ghost message as the *final*
  behavior event, so the behavior has no violation-free suffix at all:
  SSTAB1 fires, and SSTAB2 (which only judges runs that do converge)
  stays silent;
* the **late-converger** delivers its ghost with one real delivery
  still to come, so the run converges -- but past the
  :func:`~repro.conformance.oracles.stabilization_bound`, so exactly
  SSTAB2 fires.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace
from typing import Iterable

import pytest

from repro.alphabets import Message, Packet
from repro.conformance import (
    FUZZ_PROTOCOLS,
    FuzzConfig,
    SubSeeds,
    build_script,
    build_system,
    check_execution,
    corrupt_initial_state,
    fuzz_campaign,
    stabilization_report,
)
from repro.datalink.protocol import DataLinkProtocol
from repro.protocols.naive import (
    DATA,
    DirectReceiver,
    DirectTransmitter,
    InboxCore,
)

SEEDS = SubSeeds(channel_tr=1, channel_rt=2, script=3, interleave=4)

#: A message no environment script ever sends.
ZOMBIE = Message(-13, "zombie")


class DivergingTransmitter(DirectTransmitter):
    """Always has a packet to push: the system never quiesces."""

    def enabled_sends(self, core):
        if core.awake:
            yield Packet(DATA, (Message(-1, "noise"),))

    def after_send(self, core, packet):
        return core


class NeverConvergingReceiver(DirectReceiver):
    """Delivers a ghost as the final event, after all real traffic.

    ``target`` real deliveries must complete first, so the ghost is
    the last external event of the behavior and no violation-free
    suffix exists (SSTAB1, never SSTAB2).
    """

    target = 3

    def initial_core(self):
        return InboxCore()

    def enabled_deliveries(self, core) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]
        elif core.pending_acks >= self.target and ZOMBIE not in core.inbox:
            yield ZOMBIE

    def on_packet(self, core, packet):
        if packet.header == DATA:
            (message,) = packet.body
            return replace(core, inbox=core.inbox + (message,))
        return core

    def after_delivery(self, core, message):
        if message == ZOMBIE:
            # Consume the ghost budget so it is delivered exactly once.
            return replace(core, pending_acks=-1)
        return replace(
            core,
            inbox=core.inbox[1:],
            pending_acks=core.pending_acks + 1,
        )


class LateConvergingReceiver(NeverConvergingReceiver):
    """Delivers the ghost with one real delivery still pending.

    The run converges (a clean suffix follows the ghost) but only
    after the convergence bound, so exactly SSTAB2 fires.
    """

    target = 5

    def enabled_deliveries(self, core) -> Iterable[Message]:
        if core.pending_acks >= self.target:
            yield ZOMBIE
        elif core.inbox:
            yield core.inbox[0]


def _register(name, transmitter, receiver):
    FUZZ_PROTOCOLS[name] = lambda: DataLinkProtocol(
        name=name.replace("_", "-"),
        transmitter_factory=transmitter,
        receiver_factory=receiver,
        description="stabilization-oracle mutant fixture",
    )


def run_mutant(
    transmitter, receiver, messages, max_steps=6000, seeds=SEEDS
):
    """Execute one clean script and judge it with the SSTAB oracles."""
    from repro.conformance import execute_script, with_mix

    config = dataclasses.replace(
        with_mix(FuzzConfig(), "clean"),
        messages=messages,
        max_steps=max_steps,
        init_mode="arbitrary",
    )
    name = "_stab_mutant"
    _register(name, transmitter, receiver)
    try:
        system = build_system(name, "perfect", seeds, config)
        script = build_script(system, seeds, config)
        # Judge a *clean-start* execution: the oracle verdicts must not
        # depend on the corruption machinery, only on the behavior.
        clean_config = dataclasses.replace(config, init_mode="clean")
        result = execute_script(system, script.actions, seeds, clean_config)
        violations = check_execution(system, result, config)
    finally:
        del FUZZ_PROTOCOLS[name]
    return system, result, violations


class TestMutantFixtures:
    def test_diverger_violates_exactly_sstab_wf(self):
        _, result, violations = run_mutant(
            DivergingTransmitter, DirectReceiver, messages=2, max_steps=2000
        )
        assert not result.quiescent
        assert [v.oracle for v in violations] == ["SSTAB-wf"]

    def test_never_converger_violates_exactly_sstab1(self):
        system, result, violations = run_mutant(
            DirectTransmitter, NeverConvergingReceiver, messages=3
        )
        assert result.quiescent
        report = stabilization_report(result.behavior, system.t, system.r)
        assert not report.converged
        assert report.time == report.length
        assert [v.oracle for v in violations] == ["SSTAB1"]

    def test_late_converger_violates_exactly_sstab2(self):
        system, result, violations = run_mutant(
            DirectTransmitter, LateConvergingReceiver, messages=6
        )
        assert result.quiescent
        report = stabilization_report(result.behavior, system.t, system.r)
        assert report.converged
        assert report.time > 8
        assert [v.oracle for v in violations] == ["SSTAB2"]

    def test_honest_protocol_passes_all_stab_oracles(self):
        _, result, violations = run_mutant(
            DirectTransmitter, DirectReceiver, messages=3
        )
        assert result.quiescent
        assert violations == []


class TestCorruption:
    def test_corruption_is_deterministic(self):
        config = dataclasses.replace(FuzzConfig(), init_mode="arbitrary")
        system = build_system("alternating_bit", "fifo", SEEDS, config)
        a = corrupt_initial_state(system, SEEDS, config)
        b = corrupt_initial_state(
            build_system("alternating_bit", "fifo", SEEDS, config),
            SEEDS,
            config,
        )
        assert a == b

    def test_corruption_draws_locally_reachable_slices(self):
        config = dataclasses.replace(FuzzConfig(), init_mode="arbitrary")
        system = build_system("alternating_bit", "fifo", SEEDS, config)
        corrupted = corrupt_initial_state(system, SEEDS, config)
        assert len(corrupted) == len(system.automaton.initial_state())

    def test_different_subseeds_vary_the_corruption(self):
        config = dataclasses.replace(FuzzConfig(), init_mode="arbitrary")
        system = build_system("alternating_bit", "fifo", SEEDS, config)
        states = {
            corrupt_initial_state(
                system,
                SubSeeds(s * 4 + 1, s * 4 + 2, s * 4 + 3, s * 4 + 4),
                config,
            )
            for s in range(8)
        }
        assert len(states) > 1


class TestArbitraryCampaign:
    def test_abp_campaign_measures_stabilization(self):
        config = dataclasses.replace(
            FuzzConfig(),
            runs=4,
            messages=4,
            max_steps=4000,
            init_mode="arbitrary",
            shrink=False,
        )
        campaign = fuzz_campaign("alternating_bit", "bounded_nonfifo", 7, config)
        assert all(
            run.stabilization_time is not None for run in campaign.runs
        )
        report = campaign.report()
        assert "stabilization" in report.details
        assert report.counters["fuzz.stab.measured_runs"] == 4
        # Only the stabilization family judges arbitrary-mode runs.
        for violation in campaign.violations:
            assert violation.violation.oracle.startswith("SSTAB")

    def test_campaign_is_worker_count_invariant(self):
        import json

        config = dataclasses.replace(
            FuzzConfig(),
            runs=4,
            messages=4,
            max_steps=4000,
            init_mode="arbitrary",
            shrink=False,
        )
        reports = []
        for workers in (1, 2):
            campaign = fuzz_campaign(
                "alternating_bit", "bounded_nonfifo", 7, config, workers=workers
            )
            report = campaign.report()
            report.duration_s = 0.0
            report.details.pop("pool", None)
            reports.append(json.dumps(report.to_dict(), sort_keys=True))
        assert reports[0] == reports[1]
