"""Cross-protocol oracle matrix: every protocol x both permissive channels.

Short CI-friendly campaigns with a pinned seed, so the verdicts are
deterministic.  The expectations encode the paper's channel taxonomy:

* Over the FIFO channel C-hat every real protocol is clean; only the
  deliberately broken strawmen violate (naive duplicates, naive_direct
  loses).
* Over the non-FIFO channel C-bar only protocols that tolerate
  reordering stay clean -- Stenning and Baratz-Segall carry unbounded
  sequence numbers, exactly the Section 8 contrast.  Bounded-header
  FIFO protocols (alternating-bit and friends) are *expected* to break
  under reordering; asserting that the fuzzer catches them is as
  important as asserting the clean runs.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.conformance import FUZZ_PROTOCOLS, FuzzConfig, fuzz_campaign

SEED = 11
CONFIG = FuzzConfig(runs=3, shrink=False)

#: Protocols that must be clean over each channel at the pinned seed.
CLEAN_FIFO = sorted(
    name for name in FUZZ_PROTOCOLS if not name.startswith("naive")
)
CLEAN_NONFIFO = ["baratz_segall", "mod_stenning", "stenning"]

#: (protocol, channel) pairs that must produce a violation.
MUST_VIOLATE = (
    [("naive", ch) for ch in ("fifo", "nonfifo")]
    + [("naive_direct", ch) for ch in ("fifo", "nonfifo")]
    + [
        ("alternating_bit", "nonfifo"),
        ("sliding_window", "nonfifo"),
        ("selective_repeat", "nonfifo"),
        ("fragmentation", "nonfifo"),
    ]
)


@pytest.mark.parametrize("protocol", CLEAN_FIFO)
def test_correct_protocols_clean_over_fifo(protocol):
    campaign = fuzz_campaign(protocol, "fifo", SEED, CONFIG)
    assert campaign.violations == [], [
        v.violation.describe() for v in campaign.violations
    ]


@pytest.mark.parametrize("protocol", CLEAN_NONFIFO)
def test_reordering_tolerant_protocols_clean_over_nonfifo(protocol):
    campaign = fuzz_campaign(protocol, "nonfifo", SEED, CONFIG)
    assert campaign.violations == [], [
        v.violation.describe() for v in campaign.violations
    ]


@pytest.mark.parametrize("protocol,channel", MUST_VIOLATE)
def test_broken_combinations_are_caught(protocol, channel):
    campaign = fuzz_campaign(protocol, channel, SEED, CONFIG)
    assert campaign.violations, f"{protocol}/{channel} escaped the oracles"
    assert campaign.report().status == "violation"


def test_matrix_covers_every_registered_protocol():
    covered = set(CLEAN_FIFO) | {p for p, _ in MUST_VIOLATE}
    assert covered == set(FUZZ_PROTOCOLS)


STAB_CONFIG = dataclasses.replace(
    CONFIG,
    runs=2,
    messages=3,
    max_steps=4000,
    init_mode="arbitrary",
)


@pytest.mark.parametrize("protocol", sorted(FUZZ_PROTOCOLS))
@pytest.mark.parametrize("channel", ["fifo", "bounded_nonfifo"])
def test_stabilization_axis_measures_every_protocol(protocol, channel):
    """The arbitrary-initial-state axis: every protocol x channel pair
    runs deterministically from corrupted starts, measures
    stabilization_time on each run, and is judged only by the SSTAB
    family (a corrupted prefix must never convict a protocol under the
    clean-start DL/PL oracles)."""
    campaign = fuzz_campaign(protocol, channel, SEED, STAB_CONFIG)
    assert len(campaign.runs) == 2
    for run in campaign.runs:
        assert run.error is None
        assert run.stabilization_time is not None
        assert run.stab_converged is not None
    for violation in campaign.violations:
        assert violation.violation.oracle.startswith("SSTAB")
    assert "stabilization" in campaign.report().details


def test_deep_k_bound_probe_failure_is_a_violation():
    # A transmitter that never sends cannot deliver anything: the deep
    # k-bound probe must return delivered=False and that verdict must
    # reach the campaign status (it used to be recorded but ignored,
    # so an undeliverable protocol still exited STATUS_OK).
    from repro.datalink.protocol import DataLinkProtocol
    from repro.protocols.naive import DirectReceiver, DirectTransmitter

    class MuteTransmitter(DirectTransmitter):
        def enabled_sends(self, core):
            return ()

    FUZZ_PROTOCOLS["_mute_test"] = lambda: DataLinkProtocol(
        name="mute",
        transmitter_factory=MuteTransmitter,
        receiver_factory=DirectReceiver,
        description="never transmits; the k-bound probe must fail it",
    )
    try:
        campaign = fuzz_campaign(
            "_mute_test",
            "perfect",
            SEED,
            FuzzConfig(runs=0, deep_oracles=True),
        )
    finally:
        del FUZZ_PROTOCOLS["_mute_test"]
    assert campaign.deep["k_bound_delivered"] is False
    assert "not delivered" in campaign.deep["k_bound_detail"] or (
        "quiesced" in campaign.deep["k_bound_detail"]
    )
    assert campaign.found_violation
    assert campaign.report().status == "violation"
