"""Tests for the campaign driver: coverage, corpus, reports, obs wiring."""

from __future__ import annotations

from repro.conformance import (
    CorpusEntry,
    FuzzConfig,
    append_entries,
    fuzz_campaign,
    load_corpus,
)
from repro.obs import JSONLSink, tracing


class TestCampaign:
    def test_naive_campaign_finds_and_shrinks(self):
        campaign = fuzz_campaign("naive", "nonfifo", 7, FuzzConfig(runs=5))
        assert campaign.violations
        for violation in campaign.violations:
            assert violation.violation.layer == "dl"
            assert violation.shrunk_length <= 12
            assert violation.repro["format"] == "repro-fuzz/1"
        # One packaged repro per *distinct* oracle per run.
        per_run = {}
        for violation in campaign.violations:
            oracles = per_run.setdefault(violation.run_index, set())
            assert violation.violation.oracle not in oracles
            oracles.add(violation.violation.oracle)
        for record in campaign.runs:
            packaged = per_run.get(record.index, set())
            assert packaged == {v.oracle for v in record.violations}
        # The strawman trips several oracles in a single run; every one
        # must be packaged (found[0] alone used to survive), and the
        # violations counter must agree with the RunRecord contents.
        assert any(len(oracles) >= 2 for oracles in per_run.values())
        assert campaign.report().counters["fuzz.violations"] == sum(
            len({v.oracle for v in record.violations})
            for record in campaign.runs
        )

    def test_abp_over_fifo_is_clean(self):
        campaign = fuzz_campaign(
            "alternating_bit", "fifo", 7, FuzzConfig(runs=5)
        )
        assert campaign.violations == []
        assert not campaign.found_violation
        assert all(run.quiescent for run in campaign.runs)

    def test_campaigns_are_deterministic(self):
        config = FuzzConfig(runs=4)
        a = fuzz_campaign("naive", "nonfifo", 3, config)
        b = fuzz_campaign("naive", "nonfifo", 3, config)
        assert [v.repro for v in a.violations] == [
            v.repro for v in b.violations
        ]
        assert [r.subseeds for r in a.runs] == [r.subseeds for r in b.runs]
        assert a.states_interned == b.states_interned

    def test_different_seeds_differ(self):
        config = FuzzConfig(runs=2)
        a = fuzz_campaign("stenning", "nonfifo", 1, config)
        b = fuzz_campaign("stenning", "nonfifo", 2, config)
        assert [r.subseeds for r in a.runs] != [r.subseeds for r in b.runs]

    def test_intern_table_dedups_across_runs(self):
        # Coverage counts distinct states across the whole campaign, so
        # the sum of per-run new states equals the table size.
        campaign = fuzz_campaign(
            "alternating_bit", "fifo", 5, FuzzConfig(runs=4)
        )
        assert campaign.states_interned == sum(
            run.new_states for run in campaign.runs
        )
        # Later runs revisit early states: strictly fewer new ones than
        # steps would suggest on at least one run.
        assert any(
            run.new_states < run.steps + 1 for run in campaign.runs[1:]
        )

    def test_report_envelope(self):
        campaign = fuzz_campaign("naive", "nonfifo", 7, FuzzConfig(runs=2))
        report = campaign.report()
        assert report.command == "fuzz"
        assert report.status == "violation"
        assert report.counters["fuzz.runs"] == 2
        assert report.counters["fuzz.violations"] == len(campaign.violations)
        envelope = report.to_dict()
        assert set(envelope) == {
            "command",
            "status",
            "counters",
            "duration_s",
            "details",
        }

    def test_clean_report_is_ok(self):
        campaign = fuzz_campaign(
            "alternating_bit", "fifo", 7, FuzzConfig(runs=2)
        )
        assert campaign.report().status == "ok"
        assert campaign.report().exit_code == 0

    def test_obs_spans_and_counters_emitted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing(JSONLSink(str(path))):
            fuzz_campaign("naive", "nonfifo", 7, FuzzConfig(runs=2))
        from repro.obs import read_events

        events = read_events(str(path))
        span_names = {e.name for e in events if e.kind == "span_start"}
        counter_names = {e.name for e in events if e.kind == "counter"}
        assert "fuzz.run" in span_names
        assert "fuzz.shrink" in span_names
        assert "fuzz.oracle_checks" in counter_names
        assert "fuzz.shrink_executions" in counter_names


class TestCorpus:
    def test_violating_runs_enter_corpus(self):
        campaign = fuzz_campaign("naive", "nonfifo", 7, FuzzConfig(runs=3))
        reasons = {entry.reason for entry in campaign.corpus}
        assert "violation" in reasons

    def test_coverage_runs_enter_corpus(self):
        campaign = fuzz_campaign(
            "stenning", "nonfifo", 3, FuzzConfig(runs=3)
        )
        assert any(e.reason == "coverage" for e in campaign.corpus)

    def test_corpus_roundtrip(self, tmp_path):
        campaign = fuzz_campaign("naive", "nonfifo", 7, FuzzConfig(runs=3))
        path = tmp_path / "corpus.jsonl"
        append_entries(path, campaign.corpus)
        loaded = load_corpus(path)
        assert loaded == campaign.corpus
        # Append accumulates.
        append_entries(path, campaign.corpus[:1])
        assert len(load_corpus(path)) == len(campaign.corpus) + 1

    def test_missing_corpus_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "absent.jsonl") == []

    def test_corpus_seeds_replay_first(self):
        donor = fuzz_campaign("naive", "nonfifo", 7, FuzzConfig(runs=2))
        entry: CorpusEntry = donor.corpus[0]
        campaign = fuzz_campaign(
            "naive",
            "nonfifo",
            99,
            FuzzConfig(runs=1),
            replay_subseeds=[entry.subseeds],
        )
        assert campaign.runs[0].subseeds == entry.subseeds
        assert len(campaign.runs) == 2  # corpus run + one fresh run


class TestDeepOracles:
    def test_deep_oracles_report_independence_and_k(self):
        campaign = fuzz_campaign(
            "alternating_bit",
            "fifo",
            1,
            FuzzConfig(runs=1, deep_oracles=True),
        )
        assert campaign.deep["message_independent"] is True
        assert campaign.deep["k_bound"] >= 1

    def test_peeking_protocol_flagged(self):
        # message_peeking branches on message identity; the deep oracle
        # must flag it and the campaign must count as a violation.
        from repro.conformance.registry import FUZZ_PROTOCOLS
        from repro.protocols import message_peeking_protocol

        FUZZ_PROTOCOLS["_peeking_test"] = lambda: message_peeking_protocol()
        try:
            campaign = fuzz_campaign(
                "_peeking_test",
                "perfect",
                1,
                FuzzConfig(runs=1, deep_oracles=True),
            )
            assert campaign.deep["message_independent"] is False
            assert campaign.found_violation
            assert campaign.report().status == "violation"
        finally:
            del FUZZ_PROTOCOLS["_peeking_test"]
