"""Tests for counterexample shrinking."""

from __future__ import annotations

from repro.channels.actions import WAKE
from repro.conformance import (
    FuzzConfig,
    SubSeeds,
    build_script,
    build_system,
    check_execution,
    execute_script,
    script_admissible,
    shrink_script,
)
from repro.datalink.actions import SEND_MSG


def find_violating_run(protocol, channel, config, max_tries=10):
    for s in range(max_tries):
        seeds = SubSeeds(s * 4 + 1, s * 4 + 2, s * 4 + 3, s * 4 + 4)
        system = build_system(protocol, channel, seeds, config)
        script = build_script(system, seeds, config)
        result = execute_script(system, script.actions, seeds, config)
        violations = check_execution(system, result)
        if violations:
            return system, script, seeds, violations[0]
    raise AssertionError(f"no violation found for {protocol}/{channel}")


class TestShrink:
    def test_shrinks_naive_dl4_to_minimal_script(self):
        config = FuzzConfig()
        system, script, seeds, violation = find_violating_run(
            "naive", "nonfifo", config
        )
        assert violation.oracle == "DL4"
        shrunk = shrink_script(
            system, script.actions, violation.oracle, seeds, config
        )
        assert shrunk.length < shrunk.original_length
        # One duplicate delivery needs one send and both wakes: 3 actions.
        assert shrunk.length <= 12
        kinds = [a.name for a in shrunk.actions]
        assert kinds.count(SEND_MSG) >= 1
        assert kinds.count(WAKE) >= 2

    def test_shrunk_script_still_violates_same_oracle(self):
        config = FuzzConfig()
        system, script, seeds, violation = find_violating_run(
            "naive", "nonfifo", config
        )
        shrunk = shrink_script(
            system, script.actions, violation.oracle, seeds, config
        )
        result = execute_script(system, shrunk.actions, seeds, config)
        oracles = {v.oracle for v in check_execution(system, result)}
        assert violation.oracle in oracles

    def test_shrunk_script_is_admissible(self):
        config = FuzzConfig()
        system, script, seeds, violation = find_violating_run(
            "naive", "nonfifo", config
        )
        shrunk = shrink_script(
            system, script.actions, violation.oracle, seeds, config
        )
        assert script_admissible(shrunk.actions, system.t, system.r)

    def test_local_minimality_single_deletions(self):
        config = FuzzConfig()
        system, script, seeds, violation = find_violating_run(
            "naive", "nonfifo", config
        )
        shrunk = shrink_script(
            system, script.actions, violation.oracle, seeds, config
        )
        assert not shrunk.budget_exhausted
        # No single action can be deleted without losing the violation
        # (or admissibility): that is what "locally minimal" promises.
        for index in range(len(shrunk.actions)):
            candidate = shrunk.actions[:index] + shrunk.actions[index + 1 :]
            if not candidate or not script_admissible(
                candidate, system.t, system.r
            ):
                continue
            result = execute_script(system, candidate, seeds, config)
            oracles = {v.oracle for v in check_execution(system, result)}
            assert violation.oracle not in oracles

    def test_budget_bounds_reexecutions(self):
        config = FuzzConfig(shrink_budget=5)
        system, script, seeds, violation = find_violating_run(
            "naive", "nonfifo", FuzzConfig()
        )
        shrunk = shrink_script(
            system, script.actions, violation.oracle, seeds, config
        )
        assert shrunk.attempts <= 5

    def test_crash_storm_scripts_shrink_in_pairs(self):
        from repro.conformance import with_mix

        config = with_mix(FuzzConfig(), "crash-storm")
        system, script, seeds, violation = find_violating_run(
            "naive", "nonfifo", config, max_tries=15
        )
        shrunk = shrink_script(
            system, script.actions, violation.oracle, seeds, config
        )
        # Whatever survives must still be a well-formed script.
        assert script_admissible(shrunk.actions, system.t, system.r)
        assert shrunk.length <= len(script.actions)
