"""The deterministic-merge contract of the fuzz worker pool.

``fuzz_campaign(workers=N)`` must be byte-identical to ``workers=1``:
same violations, same shrunk scripts, same repro documents, same corpus,
same counters, same trace stream.  Plus the hardening guards: a run
that crashes its worker or exceeds the per-run wall-clock budget is
recorded as a failed run, never a dead campaign.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.conformance import FuzzConfig, fuzz_campaign
from repro.conformance.registry import FUZZ_PROTOCOLS
from repro.datalink.protocol import DataLinkProtocol
from repro.obs import MemorySink, tracing

#: naive violates over both channel families, so every compared field
#: (violations, shrunk repros, corpus, counters) is non-trivial.
PROTOCOL = "naive"
CONFIG = FuzzConfig(runs=6)


def _fingerprint(campaign):
    report = campaign.report().to_dict()
    report["duration_s"] = None
    report["details"].pop("pool", None)
    return {
        "report": report,
        "runs": campaign.runs,
        "repros": [v.repro for v in campaign.violations],
        "shrunk": [v.shrunk_length for v in campaign.violations],
        "corpus": campaign.corpus,
        "states_interned": campaign.states_interned,
        "oracle_checks": campaign.oracle_checks,
    }


@pytest.mark.parametrize("seed", [3, 7, 11])
@pytest.mark.parametrize("channel", ["fifo", "nonfifo"])
def test_workers_4_matches_serial_field_for_field(seed, channel):
    serial = fuzz_campaign(PROTOCOL, channel, seed, CONFIG)
    pooled = fuzz_campaign(PROTOCOL, channel, seed, CONFIG, workers=4)
    assert _fingerprint(serial) == _fingerprint(pooled)


def test_trace_stream_is_worker_count_invariant():
    def events_for(workers):
        sink = MemorySink()
        with tracing(sink) as tracer:
            fuzz_campaign(PROTOCOL, "nonfifo", 7, CONFIG, workers=workers)
            counters = tracer.snapshot_counters()
        normalized = [
            (
                event.kind,
                event.name,
                event.span,
                event.parent,
                tuple(sorted(event.fields.items())),
                event.value if event.kind in ("counter", "gauge") else None,
            )
            for event in sink.events
        ]
        return normalized, counters

    serial_events, serial_counters = events_for(1)
    pooled_events, pooled_counters = events_for(4)
    assert serial_events == pooled_events
    assert serial_counters == pooled_counters


# -- batch-boundary determinism -----------------------------------------
#
# The batched merge must stay byte-identical to serial wherever the
# batch boundaries land: runs not divisible by the worker count, a
# degenerate one-run-per-task batching, and a single batch swallowing
# the whole schedule.


@pytest.mark.parametrize(
    "workers,batch_size",
    [
        (3, None),  # 7 runs over 3 workers: auto-sized, uneven split
        (4, 3),  # final batch is a 1-run remainder
        (4, 1),  # degenerate: one task per run (the PR-5 shape)
        (4, 64),  # batch larger than the whole schedule: one task
    ],
)
def test_batch_boundaries_match_serial(workers, batch_size):
    config = FuzzConfig(runs=7)
    serial = fuzz_campaign(PROTOCOL, "nonfifo", 13, config)
    pooled = fuzz_campaign(
        PROTOCOL, "nonfifo", 13, config,
        workers=workers, batch_size=batch_size,
    )
    assert _fingerprint(serial) == _fingerprint(pooled)
    assert pooled.pool["mode"] == "fork"
    if batch_size is not None:
        assert pooled.pool["batch_size"] == batch_size


def test_pool_modes_are_surfaced():
    # workers=1 is plain serial, no fallback annotation.
    serial = fuzz_campaign(PROTOCOL, "perfect", 3, FuzzConfig(runs=2))
    assert serial.pool["mode"] == "serial"
    assert "fallback_reason" not in serial.pool
    # Parallelism requested but the schedule is below the pool
    # threshold: the campaign must say so instead of silently serializing.
    fallback = fuzz_campaign(
        PROTOCOL, "perfect", 3, FuzzConfig(runs=1), workers=4
    )
    assert fallback.pool["mode"] == "serial-fallback"
    assert "threshold" in fallback.pool["fallback_reason"]
    # ... and the RunReport envelope carries it to the CLI/JSON side.
    details = fallback.report().to_dict()["details"]["pool"]
    assert details["mode"] == "serial-fallback"
    assert "threshold" in details["fallback_reason"]


# -- hardening guards ---------------------------------------------------


def _strawman(transmitter_factory) -> DataLinkProtocol:
    from repro.protocols.naive import DirectReceiver

    return DataLinkProtocol(
        name="crash-test",
        transmitter_factory=transmitter_factory,
        receiver_factory=DirectReceiver,
        description="fault-injection strawman for the pool tests",
    )


def test_worker_crash_is_contained():
    from repro.conformance import pool
    from repro.protocols.naive import DirectTransmitter

    class CrashingTransmitter(DirectTransmitter):
        def initial_core(self):
            if pool._WORKER:
                # Hard death, bypassing the in-worker containment: the
                # pool must survive the broken-executor fallout.
                os._exit(39)
            raise RuntimeError("injected crash")

    FUZZ_PROTOCOLS["_crash_test"] = lambda: _strawman(CrashingTransmitter)
    try:
        campaign = fuzz_campaign(
            "_crash_test",
            "perfect",
            5,
            FuzzConfig(runs=3, shrink=False),
            workers=2,
        )
    finally:
        del FUZZ_PROTOCOLS["_crash_test"]
    assert len(campaign.runs) == 3
    assert all(run.error is not None for run in campaign.runs)
    assert campaign.failed_runs == 3
    assert campaign.pool["failures"] == 3
    assert campaign.violations == []
    assert campaign.report().counters["fuzz.failed_runs"] == 3


def test_worker_crash_mid_batch_fails_only_that_batch():
    """A hard worker death fails exactly the crashing batch's runs.

    Breaking the executor fails *every* pending future, so sibling
    batches observe the same BrokenProcessPool as the guilty one; the
    retry-once policy must absolve them (runs are pure) and pin the
    failure on the batch that breaks the pool twice.
    """
    import random

    from repro.conformance import SubSeeds, pool
    from repro.conformance.registry import FUZZ_CHANNELS

    seed, runs, batch_size = 9, 8, 3
    master = random.Random(seed)
    schedule = [SubSeeds.derive(master) for _ in range(runs)]
    # Run 4 sits in the middle batch (runs 3..5 at batch_size=3).
    crash_tr = schedule[4].channel_tr
    base = FUZZ_CHANNELS["perfect"]

    def crashing_channel(src, dst, chan_seed, loss, window, horizon, capacity=4):
        if pool._WORKER and src == "t" and chan_seed == crash_tr:
            os._exit(41)
        return base(src, dst, chan_seed, loss, window, horizon, capacity)

    config = FuzzConfig(runs=runs, shrink=False)
    serial = fuzz_campaign(PROTOCOL, "perfect", seed, config)
    FUZZ_CHANNELS["_crash_batch"] = crashing_channel
    try:
        campaign = fuzz_campaign(
            PROTOCOL,
            "_crash_batch",
            seed,
            config,
            workers=2,
            batch_size=batch_size,
        )
    finally:
        del FUZZ_CHANNELS["_crash_batch"]

    assert len(campaign.runs) == runs
    failed = [run.index for run in campaign.runs if run.error is not None]
    assert failed == [3, 4, 5]
    assert campaign.failed_runs == 3
    assert campaign.pool["failures"] == 3
    # The surviving batches are untouched: field-for-field what the
    # serial campaign produced for those runs.
    for index in (0, 1, 2, 6, 7):
        pooled_run, serial_run = campaign.runs[index], serial.runs[index]
        assert pooled_run.error is None
        assert pooled_run.subseeds == serial_run.subseeds
        assert pooled_run.steps == serial_run.steps
        assert pooled_run.quiescent == serial_run.quiescent
        assert pooled_run.behavior_length == serial_run.behavior_length


def test_batch_budget_times_out_remaining_runs():
    """A batch gets len(batch) x run_timeout; once the budget is gone,
    unexecuted runs are recorded as timed out -- and the next batch
    starts with a fresh budget."""
    import random

    from repro.conformance import SubSeeds
    from repro.conformance.pool import run_batch

    master = random.Random(5)
    schedule = [SubSeeds.derive(master) for _ in range(4)]
    config = FuzzConfig(runs=4, shrink=False)

    ticks = iter([0.0, 0.2, 50.0, 50.0])  # start, then one check per run

    outcome = run_batch(
        PROTOCOL,
        "perfect",
        5,
        0,
        schedule[:3],
        config,
        run_timeout=1.0,
        clock=lambda: next(ticks),
    )
    first, second, third = outcome.outcomes
    assert first.error is None and not first.timed_out
    assert second.timed_out and "wall-clock" in second.error
    assert third.timed_out and "wall-clock" in third.error
    assert second.steps == 0  # never executed, only recorded
    # A later batch is unaffected: its own budget starts fresh.
    later = run_batch(
        PROTOCOL,
        "perfect",
        5,
        3,
        schedule[3:],
        config,
        run_timeout=1.0,
    )
    assert [run.error for run in later.outcomes] == [None]


def test_run_timeout_records_failed_run():
    from repro.protocols.naive import DirectTransmitter

    class SlowTransmitter(DirectTransmitter):
        def initial_core(self):
            time.sleep(60)
            return super().initial_core()

    FUZZ_PROTOCOLS["_slow_test"] = lambda: _strawman(SlowTransmitter)
    try:
        started = time.perf_counter()
        campaign = fuzz_campaign(
            "_slow_test",
            "perfect",
            5,
            FuzzConfig(runs=1, shrink=False),
            run_timeout=0.2,
        )
        elapsed = time.perf_counter() - started
    finally:
        del FUZZ_PROTOCOLS["_slow_test"]
    assert elapsed < 30
    assert campaign.failed_runs == 1
    assert "wall-clock" in campaign.runs[0].error
    assert campaign.pool["timeouts"] == 1


def test_timeout_guard_unavailable_off_main_thread_is_surfaced():
    """SIGALRM handlers only install on the main thread: a run driven
    from a worker thread must still execute -- unguarded -- and the
    degradation must be reported, not swallowed."""
    import threading

    from repro.conformance.harness import SubSeeds
    from repro.conformance.pool import execute_run

    import random

    subseeds = SubSeeds.derive(random.Random(5))
    holder = {}

    def drive():
        holder["outcome"] = execute_run(
            PROTOCOL,
            "perfect",
            5,
            0,
            subseeds,
            FuzzConfig(runs=1, shrink=False),
            run_timeout=30.0,
        )

    thread = threading.Thread(target=drive)
    thread.start()
    thread.join()
    outcome = holder["outcome"]
    assert outcome.error is None  # the run itself completed
    assert outcome.steps > 0
    assert outcome.timeout_unavailable is not None
    assert "main thread" in outcome.timeout_unavailable

    # Campaign-level surfacing: the counter fires and details.pool
    # carries the note.
    def campaign_in_thread():
        sink = MemorySink()
        with tracing(sink) as tracer:
            campaign = fuzz_campaign(
                PROTOCOL,
                "perfect",
                5,
                FuzzConfig(runs=2, shrink=False),
                run_timeout=30.0,
            )
            counters = tracer.snapshot_counters()
        holder["campaign"] = campaign
        holder["counters"] = counters

    thread = threading.Thread(target=campaign_in_thread)
    thread.start()
    thread.join()
    campaign = holder["campaign"]
    note = campaign.pool["timeout_unavailable"]
    assert note["runs"] == 2
    assert "main thread" in note["reason"]
    assert holder["counters"]["fuzz.pool.timeout_unavailable"] == 2
    assert (
        campaign.report().details["pool"]["timeout_unavailable"] == note
    )

    # On the main thread the guard arms and nothing is reported.
    guarded = fuzz_campaign(
        PROTOCOL,
        "perfect",
        5,
        FuzzConfig(runs=1, shrink=False),
        run_timeout=30.0,
    )
    assert "timeout_unavailable" not in guarded.pool
