"""The deterministic-merge contract of the fuzz worker pool.

``fuzz_campaign(workers=N)`` must be byte-identical to ``workers=1``:
same violations, same shrunk scripts, same repro documents, same corpus,
same counters, same trace stream.  Plus the hardening guards: a run
that crashes its worker or exceeds the per-run wall-clock budget is
recorded as a failed run, never a dead campaign.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.conformance import FuzzConfig, fuzz_campaign
from repro.conformance.registry import FUZZ_PROTOCOLS
from repro.datalink.protocol import DataLinkProtocol
from repro.obs import MemorySink, tracing

#: naive violates over both channel families, so every compared field
#: (violations, shrunk repros, corpus, counters) is non-trivial.
PROTOCOL = "naive"
CONFIG = FuzzConfig(runs=6)


def _fingerprint(campaign):
    report = campaign.report().to_dict()
    report["duration_s"] = None
    report["details"].pop("pool", None)
    return {
        "report": report,
        "runs": campaign.runs,
        "repros": [v.repro for v in campaign.violations],
        "shrunk": [v.shrunk_length for v in campaign.violations],
        "corpus": campaign.corpus,
        "states_interned": campaign.states_interned,
        "oracle_checks": campaign.oracle_checks,
    }


@pytest.mark.parametrize("seed", [3, 7, 11])
@pytest.mark.parametrize("channel", ["fifo", "nonfifo"])
def test_workers_4_matches_serial_field_for_field(seed, channel):
    serial = fuzz_campaign(PROTOCOL, channel, seed, CONFIG)
    pooled = fuzz_campaign(PROTOCOL, channel, seed, CONFIG, workers=4)
    assert _fingerprint(serial) == _fingerprint(pooled)


def test_trace_stream_is_worker_count_invariant():
    def events_for(workers):
        sink = MemorySink()
        with tracing(sink) as tracer:
            fuzz_campaign(PROTOCOL, "nonfifo", 7, CONFIG, workers=workers)
            counters = tracer.snapshot_counters()
        normalized = [
            (
                event.kind,
                event.name,
                event.span,
                event.parent,
                tuple(sorted(event.fields.items())),
                event.value if event.kind in ("counter", "gauge") else None,
            )
            for event in sink.events
        ]
        return normalized, counters

    serial_events, serial_counters = events_for(1)
    pooled_events, pooled_counters = events_for(4)
    assert serial_events == pooled_events
    assert serial_counters == pooled_counters


# -- hardening guards ---------------------------------------------------


def _strawman(transmitter_factory) -> DataLinkProtocol:
    from repro.protocols.naive import DirectReceiver

    return DataLinkProtocol(
        name="crash-test",
        transmitter_factory=transmitter_factory,
        receiver_factory=DirectReceiver,
        description="fault-injection strawman for the pool tests",
    )


def test_worker_crash_is_contained():
    from repro.conformance import pool
    from repro.protocols.naive import DirectTransmitter

    class CrashingTransmitter(DirectTransmitter):
        def initial_core(self):
            if pool._WORKER:
                # Hard death, bypassing the in-worker containment: the
                # pool must survive the broken-executor fallout.
                os._exit(39)
            raise RuntimeError("injected crash")

    FUZZ_PROTOCOLS["_crash_test"] = lambda: _strawman(CrashingTransmitter)
    try:
        campaign = fuzz_campaign(
            "_crash_test",
            "perfect",
            5,
            FuzzConfig(runs=3, shrink=False),
            workers=2,
        )
    finally:
        del FUZZ_PROTOCOLS["_crash_test"]
    assert len(campaign.runs) == 3
    assert all(run.error is not None for run in campaign.runs)
    assert campaign.failed_runs == 3
    assert campaign.pool["failures"] == 3
    assert campaign.violations == []
    assert campaign.report().counters["fuzz.failed_runs"] == 3


def test_run_timeout_records_failed_run():
    from repro.protocols.naive import DirectTransmitter

    class SlowTransmitter(DirectTransmitter):
        def initial_core(self):
            time.sleep(60)
            return super().initial_core()

    FUZZ_PROTOCOLS["_slow_test"] = lambda: _strawman(SlowTransmitter)
    try:
        started = time.perf_counter()
        campaign = fuzz_campaign(
            "_slow_test",
            "perfect",
            5,
            FuzzConfig(runs=1, shrink=False),
            run_timeout=0.2,
        )
        elapsed = time.perf_counter() - started
    finally:
        del FUZZ_PROTOCOLS["_slow_test"]
    assert elapsed < 30
    assert campaign.failed_runs == 1
    assert "wall-clock" in campaign.runs[0].error
    assert campaign.pool["timeouts"] == 1
