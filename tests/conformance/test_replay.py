"""Tests for repro files: encode/decode, save/load, replay."""

from __future__ import annotations

import json

import pytest

from repro.conformance import (
    FuzzConfig,
    ReplayFormatError,
    SubSeeds,
    build_script,
    build_system,
    decode_script,
    encode_script,
    fuzz_campaign,
    load_repro,
    replay,
    save_repro,
)


class TestScriptCodec:
    def test_roundtrip_with_faults(self):
        from repro.conformance import with_mix

        config = with_mix(FuzzConfig(), "crash-storm")
        seeds = SubSeeds(5, 6, 7, 8)
        system = build_system("alternating_bit", "fifo", seeds, config)
        script = build_script(system, seeds, config)
        records = encode_script(system, script.actions)
        assert decode_script(system, records) == script.actions

    def test_records_are_json_safe(self):
        config = FuzzConfig()
        seeds = SubSeeds(5, 6, 7, 8)
        system = build_system("alternating_bit", "fifo", seeds, config)
        script = build_script(system, seeds, config)
        dumped = json.dumps(encode_script(system, script.actions))
        assert decode_script(system, json.loads(dumped)) == script.actions

    def test_unknown_record_rejected(self):
        seeds = SubSeeds(5, 6, 7, 8)
        system = build_system("alternating_bit", "fifo", seeds, FuzzConfig())
        with pytest.raises(ReplayFormatError):
            decode_script(system, [{"kind": "meteor-strike"}])


class TestReproFiles:
    def campaign(self):
        return fuzz_campaign("naive", "nonfifo", 7, FuzzConfig(runs=3))

    def test_save_load_roundtrip(self, tmp_path):
        campaign = self.campaign()
        assert campaign.violations
        document = campaign.violations[0].repro
        path = save_repro(tmp_path / "repro.json", document)
        assert load_repro(path) == document

    def test_replay_reproduces_violation(self, tmp_path):
        campaign = self.campaign()
        document = campaign.violations[0].repro
        path = save_repro(tmp_path / "repro.json", document)
        outcome = replay(path)
        assert outcome.reproduced
        assert outcome.oracle == document["oracle"]
        assert outcome.script_length == len(document["script"])

    def test_replay_is_deterministic(self, tmp_path):
        campaign = self.campaign()
        path = save_repro(
            tmp_path / "repro.json", campaign.violations[0].repro
        )
        first = replay(path)
        second = replay(path)
        assert first.scenario.behavior == second.scenario.behavior

    def test_shrunk_script_stored(self):
        campaign = self.campaign()
        violation = campaign.violations[0]
        assert violation.repro["shrunk"] is True
        assert len(violation.repro["script"]) == violation.shrunk_length

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReplayFormatError):
            load_repro(path)
        path.write_text(json.dumps({"format": "other/9"}))
        with pytest.raises(ReplayFormatError):
            load_repro(path)
