"""Tests for sub-seed derivation, system building, and admissibility."""

from __future__ import annotations

import random

import pytest

from repro.conformance import (
    FAULT_MIXES,
    FuzzConfig,
    SubSeeds,
    build_script,
    build_system,
    execute_script,
    resolve_fuzz_channel,
    resolve_fuzz_protocol,
    script_admissible,
    with_mix,
)


class TestRegistry:
    def test_every_protocol_resolves(self):
        from repro.conformance import FUZZ_PROTOCOLS

        for name in FUZZ_PROTOCOLS:
            assert resolve_fuzz_protocol(name).name

    def test_dash_and_underscore_interchangeable(self):
        a = resolve_fuzz_protocol("alternating-bit")
        b = resolve_fuzz_protocol("alternating_bit")
        assert a.name == b.name

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            resolve_fuzz_protocol("nope")
        with pytest.raises(KeyError):
            resolve_fuzz_channel("nope")

    def test_fifo_channel_is_fifo_only(self):
        channel = resolve_fuzz_channel("fifo")("t", "r", 1, 0.2, 4, 64)
        assert channel.fifo_only
        nonfifo = resolve_fuzz_channel("nonfifo")("t", "r", 1, 0.2, 4, 64)
        assert not nonfifo.fifo_only


class TestSubSeeds:
    def test_derivation_deterministic(self):
        a = SubSeeds.derive(random.Random(9))
        b = SubSeeds.derive(random.Random(9))
        assert a == b

    def test_roundtrip(self):
        seeds = SubSeeds.derive(random.Random(3))
        assert SubSeeds.from_dict(seeds.to_dict()) == seeds


class TestMixes:
    def test_named_mixes_apply(self):
        storm = with_mix(FuzzConfig(), "crash-storm")
        assert storm.crash_probability > 0
        clean = with_mix(FuzzConfig(), "clean")
        assert clean.loss_rate == 0.0

    def test_default_mix_has_no_crashes(self):
        # Crashes legitimately defeat crashing protocols (Theorem 7.5),
        # so the default mix must not inject them: a correct protocol
        # fuzzed with defaults must report zero violations.
        assert FuzzConfig().crash_probability == 0.0
        assert FAULT_MIXES["default"].get("crash_probability", 0.0) == 0.0

    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError):
            with_mix(FuzzConfig(), "nope")


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self):
        config = FuzzConfig()
        seeds = SubSeeds(11, 22, 33, 44)

        def once():
            system = build_system("stenning", "nonfifo", seeds, config)
            script = build_script(system, seeds, config)
            result = execute_script(system, script.actions, seeds, config)
            return script.actions, result.behavior, result.steps

        assert once() == once()

    def test_global_rng_untouched(self):
        config = FuzzConfig()
        seeds = SubSeeds(11, 22, 33, 44)
        random.seed(1234)
        before = random.getstate()
        system = build_system("alternating_bit", "fifo", seeds, config)
        script = build_script(system, seeds, config)
        execute_script(system, script.actions, seeds, config)
        assert random.getstate() == before


class TestAdmissibility:
    def test_generated_scripts_are_admissible(self):
        config = with_mix(FuzzConfig(), "crash-storm")
        for s in range(5):
            seeds = SubSeeds(s, s + 1, s + 2, s + 3)
            system = build_system("alternating_bit", "fifo", seeds, config)
            script = build_script(system, seeds, config)
            assert script_admissible(script.actions, "t", "r")

    def test_broken_alternation_rejected(self):
        seeds = SubSeeds(1, 2, 3, 4)
        system = build_system("alternating_bit", "fifo", seeds, FuzzConfig())
        bad = (system.wake_t(), system.wake_t(), system.wake_r())
        assert not script_admissible(bad, "t", "r")

    def test_sleeping_receiver_rejected(self):
        # Deleting the receiver's wake would let liveness blame fall on
        # the environment; the admissibility guard must refuse.
        seeds = SubSeeds(1, 2, 3, 4)
        system = build_system("alternating_bit", "fifo", seeds, FuzzConfig())
        bad = (system.wake_t(),)
        assert not script_admissible(bad, "t", "r")

    def test_send_outside_working_interval_rejected(self):
        from repro.alphabets import Message

        seeds = SubSeeds(1, 2, 3, 4)
        system = build_system("alternating_bit", "fifo", seeds, FuzzConfig())
        bad = (
            system.wake_t(),
            system.wake_r(),
            system.fail_t(),
            system.send(Message(0, "s")),
            system.wake_t(),
        )
        assert not script_admissible(bad, "t", "r")
