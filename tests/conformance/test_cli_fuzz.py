"""CLI acceptance tests for ``repro fuzz``, including bit-determinism.

The determinism test is the satellite fix for ``--seed``: two runs of
the same command must produce identical JSONL event streams modulo
timestamps.  Before the RNG threading fix, ``sim/faults.py`` drew from
the global RNG, so two same-seed runs could diverge.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main


def read_jsonl(path):
    return [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]


def normalize(record):
    """Drop wall-clock data: timestamps and measured durations."""
    record = dict(record)
    record.pop("at", None)
    if record.get("kind") in ("span_end", "manifest"):
        record.pop("value", None)
    if record.get("kind") == "manifest":
        fields = dict(record.get("fields", {}))
        for key in ("wall_s", "cpu_s", "started_at", "finished_at"):
            fields.pop(key, None)
        record["fields"] = fields
    return record


class TestFuzzCommand:
    def test_naive_nonfifo_seed7_finds_and_shrinks(self, tmp_path, capsys):
        out = tmp_path / "repros"
        code = main(
            [
                "fuzz",
                "--protocol",
                "naive",
                "--channel",
                "nonfifo",
                "--seed",
                "7",
                "--runs",
                "5",
                "--out",
                str(out),
                "--json",
            ]
        )
        assert code == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["status"] == "violation"
        violations = envelope["details"]["violations"]
        assert violations
        assert all(v["layer"] == "dl" for v in violations)
        assert all(v["shrunk_length"] <= 12 for v in violations)
        repro_files = sorted(out.glob("*.json"))
        assert repro_files

    def test_replay_reproduces(self, tmp_path, capsys):
        out = tmp_path / "repros"
        main(
            [
                "fuzz",
                "--protocol",
                "naive",
                "--channel",
                "nonfifo",
                "--seed",
                "7",
                "--runs",
                "2",
                "--out",
                str(out),
            ]
        )
        capsys.readouterr()
        repro_file = sorted(out.glob("*.json"))[0]
        code = main(["fuzz", "--replay", str(repro_file), "--json"])
        envelope = json.loads(capsys.readouterr().out)
        assert code == 1
        assert envelope["details"]["reproduced"] is True

    def test_abp_over_fifo_reports_zero_violations(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--protocol",
                "alternating_bit",
                "--channel",
                "fifo",
                "--seed",
                "7",
                "--runs",
                "5",
                "--out",
                str(tmp_path / "repros"),
                "--json",
            ]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["status"] == "ok"
        assert envelope["details"]["violations"] == []

    def test_seed_makes_runs_bit_identical(self, tmp_path, capsys):
        """Two same-seed runs emit identical event streams mod timestamps."""
        streams = []
        for name in ("a.jsonl", "b.jsonl"):
            trace = tmp_path / name
            main(
                [
                    "fuzz",
                    "--protocol",
                    "naive",
                    "--channel",
                    "nonfifo",
                    "--seed",
                    "7",
                    "--runs",
                    "3",
                    "--out",
                    str(tmp_path / "repros"),
                    "--trace",
                    str(trace),
                ]
            )
            capsys.readouterr()
            streams.append([normalize(r) for r in read_jsonl(trace)])
        assert streams[0] == streams[1]

    def test_different_seeds_diverge(self, tmp_path, capsys):
        streams = []
        for seed in ("7", "8"):
            trace = tmp_path / f"s{seed}.jsonl"
            main(
                [
                    "fuzz",
                    "--protocol",
                    "naive",
                    "--channel",
                    "nonfifo",
                    "--seed",
                    seed,
                    "--runs",
                    "3",
                    "--out",
                    str(tmp_path / "repros"),
                    "--trace",
                    str(trace),
                ]
            )
            capsys.readouterr()
            streams.append([normalize(r) for r in read_jsonl(trace)])
        assert streams[0] != streams[1]

    def test_corpus_written(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        main(
            [
                "fuzz",
                "--protocol",
                "stenning",
                "--channel",
                "nonfifo",
                "--seed",
                "3",
                "--runs",
                "3",
                "--out",
                str(tmp_path / "repros"),
                "--corpus",
                str(corpus),
            ]
        )
        capsys.readouterr()
        from repro.conformance import load_corpus

        assert load_corpus(corpus)

    def test_corpus_entries_are_replayed_first(self, tmp_path, capsys):
        # Regression: the CLI used to append corpus entries but never
        # pass them back as replay_subseeds, so the documented
        # "replayed first by later campaigns" contract silently never
        # happened.
        corpus = tmp_path / "corpus.jsonl"
        base = [
            "fuzz",
            "--protocol",
            "naive",
            "--channel",
            "nonfifo",
            "--seed",
            "7",
            "--runs",
            "3",
            "--no-shrink",
            "--corpus",
            str(corpus),
            "--json",
        ]
        main(base + ["--out", str(tmp_path / "repros1")])
        first = json.loads(capsys.readouterr().out)
        assert first["details"]["corpus_replayed"] == 0
        from repro.conformance import load_corpus

        entries = load_corpus(corpus)
        assert entries
        unique_subseeds = []
        for entry in entries:
            if entry.subseeds not in unique_subseeds:
                unique_subseeds.append(entry.subseeds)

        main(base + ["--out", str(tmp_path / "repros2")])
        second = json.loads(capsys.readouterr().out)
        assert second["details"]["corpus_replayed"] == len(unique_subseeds)
        assert second["counters"]["fuzz.runs"] == 3 + len(unique_subseeds)
        # Replayed entries must not re-append themselves.
        assert len(load_corpus(corpus)) == len(entries)

    def test_corpus_replay_skips_other_combinations(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        main(
            [
                "fuzz",
                "--protocol",
                "naive",
                "--channel",
                "nonfifo",
                "--seed",
                "7",
                "--runs",
                "3",
                "--no-shrink",
                "--corpus",
                str(corpus),
                "--out",
                str(tmp_path / "repros1"),
            ]
        )
        capsys.readouterr()
        main(
            [
                "fuzz",
                "--protocol",
                "stenning",
                "--channel",
                "nonfifo",
                "--seed",
                "7",
                "--runs",
                "2",
                "--no-shrink",
                "--corpus",
                str(corpus),
                "--out",
                str(tmp_path / "repros2"),
                "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert report["details"]["corpus_replayed"] == 0
        assert report["counters"]["fuzz.runs"] == 2

    def test_workers_flag_matches_serial_output(self, tmp_path, capsys):
        reports = {}
        repro_listings = {}
        for workers in ("1", "2"):
            out = tmp_path / f"repros-w{workers}"
            main(
                [
                    "fuzz",
                    "--protocol",
                    "naive",
                    "--channel",
                    "nonfifo",
                    "--seed",
                    "7",
                    "--runs",
                    "4",
                    "--workers",
                    workers,
                    "--out",
                    str(out),
                    "--json",
                ]
            )
            report = json.loads(capsys.readouterr().out)
            report["duration_s"] = None
            report["details"].pop("pool", None)
            report["details"].pop("artifacts", None)
            reports[workers] = report
            repro_listings[workers] = {
                path.name: path.read_text()
                for path in sorted(out.glob("*.json"))
            }
        assert reports["1"] == reports["2"]
        assert repro_listings["1"] == repro_listings["2"]

    def test_list_oracles(self, capsys):
        assert main(["fuzz", "--list-oracles"]) == 0
        out = capsys.readouterr().out
        assert "DL4" in out and "PL5" in out

    def test_unknown_protocol_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "fuzz",
                    "--protocol",
                    "nope",
                    "--out",
                    str(tmp_path / "repros"),
                ]
            )

    def test_missing_protocol_exits(self):
        with pytest.raises(SystemExit):
            main(["fuzz"])

    def test_bad_replay_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code = main(["fuzz", "--replay", str(bad)])
        capsys.readouterr()
        assert code == 2
