"""The message and packet alphabets (paper, Sections 3-4).

The paper fixes an *infinite* alphabet ``M`` of messages and an alphabet
``P`` of packets.  Messages are uninterpreted data: message-independent
protocols (Section 5.3.1) may carry them but never branch on their
contents.  We realize ``M`` as an inexhaustible supply of opaque
:class:`Message` tokens; :class:`MessageFactory` hands out fresh ones,
which is exactly the capability the impossibility proofs require ("let
``m'`` be any message such that ``send_msg(m')`` does not occur in
...").

Packets are structured as ``(header, body)``:

* ``header`` -- the protocol-visible control information (sequence
  numbers, alternating bits, ...).  The paper's *headers* are the
  equivalence classes of packets under the message-independence relation;
  with opaque message bodies those classes are exactly the ``header``
  values (plus the body arity), so bounded headers = finite header space.
* ``body`` -- a tuple of messages carried opaquely (usually 0 or 1).
* ``uid`` -- a ghost label making every sent packet unique, realizing the
  paper's (PL2) convention that "the reader may think of each packet as
  labeled with a unique identifier ... included in the model for ease of
  analysis, but does not correspond to any bits sent on the transmission
  medium".  Protocols never branch on ``uid``; the packet-equivalence
  relation ignores it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple


@dataclass(frozen=True, order=True)
class Message:
    """An opaque message token from the infinite alphabet ``M``.

    ``size`` supports the paper's Section 9 extension: protocols may use
    *simple* content information such as the message length ("the length
    might determine the number of packets needed to contain the
    message").  Message-independence is then relative to the equivalence
    classing messages by size: a protocol may branch on ``size`` but on
    nothing else.  The default size 0 recovers the fully uniform
    alphabet of the main development.
    """

    ident: int
    label: str = "m"
    size: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f"/{self.size}" if self.size else ""
        return f"{self.label}{self.ident}{suffix}"


class MessageFactory:
    """An inexhaustible source of fresh messages.

    Each call to :meth:`fresh` returns a message never produced before by
    this factory.  Engines share a single factory so "fresh" means fresh
    across an entire constructed execution.  The Section 9 arguments need
    a fresh message *in a given size class*; pass ``size``.
    """

    def __init__(self, label: str = "m", start: int = 0):
        self._label = label
        self._counter = itertools.count(start)

    def fresh(self, size: int = 0) -> Message:
        return Message(next(self._counter), self._label, size)

    def fresh_many(self, count: int, size: int = 0) -> Tuple[Message, ...]:
        return tuple(self.fresh(size) for _ in range(count))


@dataclass(frozen=True)
class Packet:
    """A packet ``p`` in the alphabet ``P``.

    ``header`` must be hashable; ``body`` is a tuple of :class:`Message`.
    ``uid`` is the ghost uniqueness label (see module docstring); two
    packets differing only in ``uid`` are *equivalent* in the paper's
    message-independence sense, and additionally carry the same bits on
    the wire if their bodies are equal.
    """

    header: Any
    body: Tuple[Message, ...] = ()
    uid: Optional[int] = None

    def with_uid(self, uid: int) -> "Packet":
        return Packet(self.header, self.body, uid)

    def strip_uid(self) -> "Packet":
        return Packet(self.header, self.body, None)

    @property
    def header_class(self) -> Tuple[Any, int]:
        """The packet's equivalence class under message-independence.

        Two packets are equivalent iff they have the same header and
        their bodies are related by a message renaming; since messages
        are opaque, the class is determined by (header, body arity).
        This is an element of the paper's ``headers(A, ==)``.
        """
        return (self.header, len(self.body))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = ",".join(str(m) for m in self.body)
        uid = "" if self.uid is None else f"#{self.uid}"
        return f"pkt[{self.header!r}|{body}]{uid}"


def rename_messages(value: Any, mapping: Mapping[Message, Message]) -> Any:
    """Apply a message renaming to an arbitrary structured value.

    Walks tuples, frozensets, packets and dataclass-like values,
    replacing every :class:`Message` found via ``mapping`` (identity for
    messages not in the mapping).  This realizes the paper's equivalence
    ``==`` for message-independent protocols: two values are equivalent
    iff some renaming carries one to the other.

    Supported containers: ``Message``, :class:`Packet`, tuples, lists
    (returned as tuples), frozensets, dicts (keys and values), and frozen
    dataclasses composed of supported values.  Scalars pass through.
    """
    if isinstance(value, Message):
        return mapping.get(value, value)
    if isinstance(value, Packet):
        return Packet(
            rename_messages(value.header, mapping),
            tuple(rename_messages(m, mapping) for m in value.body),
            value.uid,
        )
    if isinstance(value, tuple):
        return tuple(rename_messages(v, mapping) for v in value)
    if isinstance(value, list):
        return tuple(rename_messages(v, mapping) for v in value)
    if isinstance(value, frozenset):
        return frozenset(rename_messages(v, mapping) for v in value)
    if isinstance(value, dict):
        return {
            rename_messages(k, mapping): rename_messages(v, mapping)
            for k, v in value.items()
        }
    if hasattr(value, "__dataclass_fields__"):
        import dataclasses

        return dataclasses.replace(
            value,
            **{
                f.name: rename_messages(getattr(value, f.name), mapping)
                for f in dataclasses.fields(value)
            },
        )
    return value


def strip_uids(value: Any) -> Any:
    """Erase packet uids throughout a structured value.

    The uid is the paper's ghost uniqueness label; the equivalence
    relation of Section 5.3.1 ignores it, so comparisons of states and
    actions under message renaming are performed on uid-stripped values.
    """
    if isinstance(value, Packet):
        return Packet(
            strip_uids(value.header),
            tuple(strip_uids(m) for m in value.body),
            None,
        )
    if isinstance(value, Message):
        return value
    if isinstance(value, tuple):
        return tuple(strip_uids(v) for v in value)
    if isinstance(value, list):
        return tuple(strip_uids(v) for v in value)
    if isinstance(value, frozenset):
        return frozenset(strip_uids(v) for v in value)
    if isinstance(value, dict):
        return {strip_uids(k): strip_uids(v) for k, v in value.items()}
    if hasattr(value, "__dataclass_fields__"):
        import dataclasses

        return dataclasses.replace(
            value,
            **{
                f.name: strip_uids(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        )
    return value


def messages_in(value: Any) -> Tuple[Message, ...]:
    """All messages occurring in a structured value, in traversal order."""
    found = []

    def walk(v: Any) -> None:
        if isinstance(v, Message):
            found.append(v)
        elif isinstance(v, Packet):
            walk(v.header)
            for m in v.body:
                walk(m)
        elif isinstance(v, (tuple, list, frozenset, set)):
            for item in v:
                walk(item)
        elif isinstance(v, dict):
            for k, val in v.items():
                walk(k)
                walk(val)
        elif hasattr(v, "__dataclass_fields__"):
            import dataclasses

            for f in dataclasses.fields(v):
                walk(getattr(v, f.name))

    walk(value)
    return tuple(found)
