"""Fair executions and Lemma 2.1 (paper, Section 2.2).

A fair execution gives fair turns to each task (class of ``part(A)``).
For finite executions the definition reduces to: *no* locally-controlled
action is enabled in the final state (the execution is quiescent).

Lemma 2.1 states that any finite execution can be extended, with any
further sequence of inputs, to a fair execution.  In this executable
reproduction we realize the lemma for systems that *quiesce*: the
executor appends the requested inputs and then runs a round-robin
scheduler over tasks until no locally-controlled action is enabled.  All
of the systems manipulated by the impossibility engines quiesce when run
over clean channels; a protocol whose composition fails to quiesce within
the step budget is reported via :class:`FairnessTimeout`, which the
engines convert into a liveness-violation verdict.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional

from .actions import Action
from .automaton import Automaton, State
from .execution import ExecutionFragment


class FairnessTimeout(RuntimeError):
    """The system did not quiesce within the allotted step budget."""

    def __init__(self, fragment: ExecutionFragment, budget: int):
        super().__init__(
            f"system did not quiesce within {budget} steps "
            f"({len(fragment)} steps taken)"
        )
        self.fragment = fragment
        self.budget = budget


def is_fair_finite(automaton: Automaton, fragment: ExecutionFragment) -> bool:
    """Fairness check for a finite execution fragment.

    A finite execution is fair iff no action of any partition class is
    enabled in its final state, i.e. the final state is quiescent.
    """
    return automaton.is_quiescent(fragment.final_state)


def apply_inputs(
    automaton: Automaton, state: State, inputs: Iterable[Action]
) -> ExecutionFragment:
    """Feed a sequence of input actions, taking one step per action.

    Input-enabledness guarantees every step exists; a missing transition
    indicates a broken automaton and raises :class:`TransitionError`.
    """
    fragment = ExecutionFragment.initial(state)
    current = state
    for action in inputs:
        if not automaton.signature.is_input(action):
            raise ValueError(f"{action} is not an input action")
        current = automaton.step(current, action)
        fragment = fragment.append(action, current)
    return fragment


def run_to_quiescence(
    automaton: Automaton,
    state: State,
    max_steps: int = 100_000,
    stop_when: Optional[Callable[[Action], bool]] = None,
    tie_break: Optional[Callable[[List[Action]], Action]] = None,
) -> ExecutionFragment:
    """Run locally-controlled actions fairly until quiescence.

    The scheduler is a round-robin over tasks: at each step it fires an
    enabled action belonging to the least-recently-served task.  This
    gives fair turns to every class of the partition, so the resulting
    finite execution is fair.

    Parameters
    ----------
    stop_when:
        Optional early-exit predicate; the run stops right after the
        first action satisfying it (the result is then a finite, possibly
        non-quiescent fragment -- a prefix of a fair execution).
    tie_break:
        How to pick among the enabled actions of the chosen task
        (default: first in enumeration order, which makes runs
        deterministic).

    Raises
    ------
    FairnessTimeout
        If more than ``max_steps`` steps are taken without quiescing.
    """
    fragment = ExecutionFragment.initial(state)
    current = state
    last_served: Dict[Hashable, int] = {}
    clock = 0
    for _ in range(max_steps):
        enabled = list(automaton.enabled_local_actions(current))
        if not enabled:
            return fragment
        by_task: Dict[Hashable, List[Action]] = {}
        for action in enabled:
            by_task.setdefault(automaton.task_of(action), []).append(action)
        # Serve the task that has waited longest (never-served tasks first).
        task = min(
            by_task,
            key=lambda t: (last_served.get(t, -1), repr(t)),
        )
        candidates = by_task[task]
        action = tie_break(candidates) if tie_break else candidates[0]
        clock += 1
        last_served[task] = clock
        current = automaton.step(current, action)
        fragment = fragment.append(action, current)
        if stop_when is not None and stop_when(action):
            return fragment
    raise FairnessTimeout(fragment, max_steps)


def fair_extension(
    automaton: Automaton,
    fragment: ExecutionFragment,
    inputs: Iterable[Action] = (),
    max_steps: int = 100_000,
    stop_when: Optional[Callable[[Action], bool]] = None,
) -> ExecutionFragment:
    """Lemma 2.1, executably: extend a finite execution fairly.

    Appends the given inputs and then runs the fair scheduler to
    quiescence (or until ``stop_when`` fires).  The returned fragment
    extends ``fragment``; if it ends quiescent it is a fair execution.
    """
    extended = fragment.extend(
        apply_inputs(automaton, fragment.final_state, inputs)
    )
    tail = run_to_quiescence(
        automaton,
        extended.final_state,
        max_steps=max_steps,
        stop_when=stop_when,
    )
    return extended.extend(tail)
