"""High-throughput exploration engine (see :mod:`.core`).

The engine is the backend of :func:`repro.ioa.explorer.explore`; the
pieces are exposed here for direct use and benchmarking:

* :mod:`.core` -- serial trace-free BFS with state interning and
  memoized composition stepping;
* :mod:`.parallel` -- layer-sharded multiprocessing frontier mode;
* :mod:`.interning` -- the dense-id intern table;
* :mod:`.bench` -- the states/sec benchmark emitter behind
  ``bench/BENCH_explore.json``.
"""

from .core import ExplorationResult, explore_engine
from .interning import InternTable
from .parallel import PARALLEL_THRESHOLD, explore_parallel

__all__ = [
    "ExplorationResult",
    "InternTable",
    "PARALLEL_THRESHOLD",
    "explore_engine",
    "explore_parallel",
]
