"""High-throughput exploration engine (see :mod:`.core`).

The engine is the backend of :func:`repro.ioa.explorer.explore`; the
pieces are exposed here for direct use and benchmarking:

* :mod:`.core` -- serial trace-free BFS with state interning and
  memoized composition stepping;
* :mod:`.parallel` -- layer-sharded multiprocessing frontier mode;
* :mod:`.interning` -- the dense-id intern table;
* :mod:`.encoding` -- the flat state encoder (tuple and packed forms)
  shared by every backend;
* :mod:`.accel` -- the compiled packed-key search core (built on
  demand from ``_accel.c``, pure-Python fallback otherwise);
* :mod:`.diskstore` -- the disk-backed sharded frontier/visited store;
* :mod:`.bench` -- the states/sec benchmark emitter behind
  ``bench/BENCH_explore.json``.
"""

from .core import ExplorationResult, explore_engine
from .diskstore import DiskStateSet, DiskStore, explore_disk
from .encoding import EncodingOverflow, StateEncoder, StreamEncoder
from .interning import InternTable
from .parallel import PARALLEL_THRESHOLD, explore_parallel

__all__ = [
    "DiskStateSet",
    "DiskStore",
    "EncodingOverflow",
    "ExplorationResult",
    "InternTable",
    "PARALLEL_THRESHOLD",
    "StateEncoder",
    "StreamEncoder",
    "explore_disk",
    "explore_engine",
    "explore_parallel",
]
