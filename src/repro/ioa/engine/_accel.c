/* Packed-key BFS core behind repro.ioa.engine.accel.
 *
 * One exploration = one AccelSearch.  States are 64-bit packed codes
 * produced by repro.ioa.engine.encoding.StateEncoder (bits_per_slot
 * bits of slice id per component slot); the search never sees a Python
 * state object.  All hot-path data lives in flat C arrays:
 *
 *   - visited: open-addressing table key -> entry index, plus
 *     insertion-order entry arrays (key, parent index, action token)
 *     that double as the BFS queue (a layer is a contiguous index
 *     range) and as the parent log for counterexample reconstruction;
 *   - enabled memo: per (slot, slice id) -> token list, filled by the
 *     enabled_cb Python callback on first miss;
 *   - step memo: per (slot, slice id, token) -> successor slice ids,
 *     filled by the step_cb Python callback on first miss;
 *   - invariant cache: projected key -> verdict, so the invariant_cb
 *     Python callback runs once per distinct projection, not per state.
 *
 * The expansion order replicates the pure-Python engine exactly
 * (slots ascending, enabled order within a slot, cross-product with
 * the last owner varying fastest), as do the budget semantics: the
 * overflow successor is invariant-checked, then dropped, and the
 * whole search stops at once.  Callbacks must not touch the
 * AccelSearch object (the Python wrapper's closures only read the
 * StateEncoder, which holds that contract).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

#define ACCEL_MAX_SLOTS 64

/* push() outcomes */
#define PUSH_OK 0
#define PUSH_DUP 1
#define PUSH_VIOLATION 2
#define PUSH_TRUNCATED 3

/* splitmix64 finalizer: cheap, well-mixed hash for 64-bit keys */
static inline uint64_t
hash64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

typedef struct {
    PyObject_HEAD

    int n;              /* component slots */
    int bits;           /* bits per slot in a packed key */
    uint64_t mask;      /* (1 << bits) - 1 */

    PyObject *enabled_cb; /* (slot, sid) -> ((token, owners), ...) */
    PyObject *step_cb;    /* (slot, sid, token) -> (sid, ...) */

    /* entries in BFS insertion order */
    uint64_t *keys;
    int64_t *parents;   /* entry index of predecessor, -1 for start */
    int32_t *tokens;    /* action token taken from predecessor */
    Py_ssize_t count, cap;

    /* visited: open addressing, key -> entry index (-1 = empty) */
    uint64_t *vis_key;
    int64_t *vis_idx;
    Py_ssize_t vis_cap, vis_used;

    /* token -> owner slots (offset/count into owner_pool; count -1 =
       unregistered) */
    int32_t *tok_off;
    int32_t *tok_cnt;
    Py_ssize_t tok_cap;
    int32_t *owner_pool;
    Py_ssize_t owner_len, owner_cap;

    /* enabled memo: per slot, sid -> offset/count into pair_pool
       (offset -1 = missing) */
    int32_t **en_off;
    int32_t **en_cnt;
    Py_ssize_t *en_cap;
    int32_t *pair_pool; /* tokens */
    Py_ssize_t pair_len, pair_cap;

    /* step memo: open addressing (slot, sid, token) -> offset/count
       into succ_pool (count -1 = empty slot) */
    uint64_t *st_key;
    int32_t *st_off;
    int32_t *st_cnt;
    Py_ssize_t st_cap, st_used;
    int32_t *succ_pool; /* successor sids */
    Py_ssize_t succ_len, succ_cap;

    /* invariant verdict cache: projected key -> verdict
       (state 0 = empty, 1 = violated, 2 = holds) */
    uint64_t *inv_key;
    int8_t *inv_state;
    Py_ssize_t inv_cap, inv_used;

    /* counters surfaced by stats() */
    unsigned long long transitions;
    unsigned long long enabled_calls;
    unsigned long long step_calls;
    unsigned long long invariant_calls;
} AccelSearch;

/* ------------------------------------------------------------------ */
/* allocation helpers                                                  */
/* ------------------------------------------------------------------ */

static int
grow_i32(int32_t **buf, Py_ssize_t *cap, Py_ssize_t need)
{
    Py_ssize_t newcap = *cap ? *cap : 256;
    while (newcap < need)
        newcap *= 2;
    if (newcap == *cap)
        return 0;
    int32_t *fresh = PyMem_Realloc(*buf, (size_t)newcap * sizeof(int32_t));
    if (!fresh) {
        PyErr_NoMemory();
        return -1;
    }
    *buf = fresh;
    *cap = newcap;
    return 0;
}

static int
ensure_entry_cap(AccelSearch *self)
{
    if (self->count < self->cap)
        return 0;
    Py_ssize_t newcap = self->cap * 2;
    uint64_t *k = PyMem_Realloc(self->keys, (size_t)newcap * sizeof(uint64_t));
    if (!k) {
        PyErr_NoMemory();
        return -1;
    }
    self->keys = k;
    int64_t *p =
        PyMem_Realloc(self->parents, (size_t)newcap * sizeof(int64_t));
    if (!p) {
        PyErr_NoMemory();
        return -1;
    }
    self->parents = p;
    int32_t *t = PyMem_Realloc(self->tokens, (size_t)newcap * sizeof(int32_t));
    if (!t) {
        PyErr_NoMemory();
        return -1;
    }
    self->tokens = t;
    self->cap = newcap;
    return 0;
}

/* ------------------------------------------------------------------ */
/* visited table                                                       */
/* ------------------------------------------------------------------ */

/* Entry index if present, else -1 with *slot_out = insert position. */
static Py_ssize_t
vis_probe(AccelSearch *self, uint64_t key, Py_ssize_t *slot_out)
{
    Py_ssize_t msk = self->vis_cap - 1;
    Py_ssize_t pos = (Py_ssize_t)(hash64(key) & (uint64_t)msk);
    while (self->vis_idx[pos] >= 0) {
        if (self->vis_key[pos] == key)
            return (Py_ssize_t)self->vis_idx[pos];
        pos = (pos + 1) & msk;
    }
    *slot_out = pos;
    return -1;
}

static int
vis_maybe_grow(AccelSearch *self)
{
    if (self->vis_used * 10 < self->vis_cap * 7)
        return 0;
    Py_ssize_t newcap = self->vis_cap * 2;
    uint64_t *nk = PyMem_Malloc((size_t)newcap * sizeof(uint64_t));
    int64_t *ni = PyMem_Malloc((size_t)newcap * sizeof(int64_t));
    if (!nk || !ni) {
        PyMem_Free(nk);
        PyMem_Free(ni);
        PyErr_NoMemory();
        return -1;
    }
    memset(ni, 0xFF, (size_t)newcap * sizeof(int64_t)); /* all -1 */
    Py_ssize_t msk = newcap - 1;
    for (Py_ssize_t i = 0; i < self->count; i++) {
        uint64_t key = self->keys[i];
        Py_ssize_t pos = (Py_ssize_t)(hash64(key) & (uint64_t)msk);
        while (ni[pos] >= 0)
            pos = (pos + 1) & msk;
        nk[pos] = key;
        ni[pos] = (int64_t)i;
    }
    PyMem_Free(self->vis_key);
    PyMem_Free(self->vis_idx);
    self->vis_key = nk;
    self->vis_idx = ni;
    self->vis_cap = newcap;
    return 0;
}

/* ------------------------------------------------------------------ */
/* token registration / enabled memo                                   */
/* ------------------------------------------------------------------ */

static int
register_token(AccelSearch *self, int32_t token, PyObject *owners)
{
    if (token < 0) {
        PyErr_SetString(PyExc_ValueError, "negative action token");
        return -1;
    }
    if ((Py_ssize_t)token >= self->tok_cap) {
        Py_ssize_t old = self->tok_cap;
        Py_ssize_t need = (Py_ssize_t)token + 1;
        if (grow_i32(&self->tok_off, &self->tok_cap, need) < 0)
            return -1;
        Py_ssize_t cap2 = old;
        if (grow_i32(&self->tok_cnt, &cap2, need) < 0)
            return -1;
        for (Py_ssize_t j = old; j < self->tok_cap; j++)
            self->tok_cnt[j] = -1;
    }
    if (self->tok_cnt[token] >= 0)
        return 0; /* already registered; owners are immutable */
    if (!PyTuple_Check(owners)) {
        PyErr_SetString(PyExc_TypeError, "owners must be a tuple of ints");
        return -1;
    }
    Py_ssize_t nowners = PyTuple_GET_SIZE(owners);
    if (nowners > ACCEL_MAX_SLOTS) {
        PyErr_SetString(PyExc_OverflowError, "too many owner slots");
        return -1;
    }
    if (self->owner_len + nowners > self->owner_cap) {
        if (grow_i32(&self->owner_pool, &self->owner_cap,
                     self->owner_len + nowners) < 0)
            return -1;
    }
    int32_t off = (int32_t)self->owner_len;
    for (Py_ssize_t j = 0; j < nowners; j++) {
        long slot = PyLong_AsLong(PyTuple_GET_ITEM(owners, j));
        if (slot == -1 && PyErr_Occurred())
            return -1;
        if (slot < 0 || slot >= self->n) {
            PyErr_SetString(PyExc_ValueError, "owner slot out of range");
            return -1;
        }
        self->owner_pool[self->owner_len++] = (int32_t)slot;
    }
    self->tok_off[token] = off;
    self->tok_cnt[token] = (int32_t)nowners;
    return 0;
}

static int
get_enabled(AccelSearch *self, int slot, uint32_t sid, int32_t *off,
            int32_t *cnt)
{
    if ((Py_ssize_t)sid >= self->en_cap[slot]) {
        Py_ssize_t old = self->en_cap[slot];
        Py_ssize_t cap2 = old;
        if (grow_i32(&self->en_off[slot], &cap2, (Py_ssize_t)sid + 1) < 0)
            return -1;
        if (grow_i32(&self->en_cnt[slot], &self->en_cap[slot],
                     (Py_ssize_t)sid + 1) < 0)
            return -1;
        for (Py_ssize_t j = old; j < self->en_cap[slot]; j++)
            self->en_off[slot][j] = -1;
    }
    int32_t cached = self->en_off[slot][sid];
    if (cached >= 0) {
        *off = cached;
        *cnt = self->en_cnt[slot][sid];
        return 0;
    }
    self->enabled_calls++;
    PyObject *cb_args[2];
    cb_args[0] = PyLong_FromLong((long)slot);
    cb_args[1] = PyLong_FromUnsignedLong((unsigned long)sid);
    if (!cb_args[0] || !cb_args[1]) {
        Py_XDECREF(cb_args[0]);
        Py_XDECREF(cb_args[1]);
        return -1;
    }
    PyObject *res = PyObject_Vectorcall(self->enabled_cb, cb_args, 2, NULL);
    Py_DECREF(cb_args[0]);
    Py_DECREF(cb_args[1]);
    if (!res)
        return -1;
    PyObject *fast =
        PySequence_Fast(res, "enabled_cb must return a sequence");
    Py_DECREF(res);
    if (!fast)
        return -1;
    Py_ssize_t npairs = PySequence_Fast_GET_SIZE(fast);
    if (self->pair_len + npairs > self->pair_cap) {
        if (grow_i32(&self->pair_pool, &self->pair_cap,
                     self->pair_len + npairs) < 0) {
            Py_DECREF(fast);
            return -1;
        }
    }
    int32_t newoff = (int32_t)self->pair_len;
    for (Py_ssize_t j = 0; j < npairs; j++) {
        PyObject *pair = PySequence_Fast_GET_ITEM(fast, j);
        if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2) {
            PyErr_SetString(PyExc_TypeError,
                            "enabled_cb items must be (token, owners)");
            Py_DECREF(fast);
            return -1;
        }
        long token = PyLong_AsLong(PyTuple_GET_ITEM(pair, 0));
        if (token == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        if (register_token(self, (int32_t)token,
                           PyTuple_GET_ITEM(pair, 1)) < 0) {
            Py_DECREF(fast);
            return -1;
        }
        self->pair_pool[self->pair_len++] = (int32_t)token;
    }
    Py_DECREF(fast);
    self->en_off[slot][sid] = newoff;
    self->en_cnt[slot][sid] = (int32_t)npairs;
    *off = newoff;
    *cnt = (int32_t)npairs;
    return 0;
}

/* ------------------------------------------------------------------ */
/* step memo                                                           */
/* ------------------------------------------------------------------ */

static int
st_grow(AccelSearch *self)
{
    Py_ssize_t newcap = self->st_cap * 2;
    uint64_t *nk = PyMem_Malloc((size_t)newcap * sizeof(uint64_t));
    int32_t *no = PyMem_Malloc((size_t)newcap * sizeof(int32_t));
    int32_t *nc = PyMem_Malloc((size_t)newcap * sizeof(int32_t));
    if (!nk || !no || !nc) {
        PyMem_Free(nk);
        PyMem_Free(no);
        PyMem_Free(nc);
        PyErr_NoMemory();
        return -1;
    }
    memset(nc, 0xFF, (size_t)newcap * sizeof(int32_t)); /* all -1 */
    Py_ssize_t msk = newcap - 1;
    for (Py_ssize_t i = 0; i < self->st_cap; i++) {
        if (self->st_cnt[i] < 0)
            continue;
        uint64_t key = self->st_key[i];
        Py_ssize_t pos = (Py_ssize_t)(hash64(key) & (uint64_t)msk);
        while (nc[pos] >= 0)
            pos = (pos + 1) & msk;
        nk[pos] = key;
        no[pos] = self->st_off[i];
        nc[pos] = self->st_cnt[i];
    }
    PyMem_Free(self->st_key);
    PyMem_Free(self->st_off);
    PyMem_Free(self->st_cnt);
    self->st_key = nk;
    self->st_off = no;
    self->st_cnt = nc;
    self->st_cap = newcap;
    return 0;
}

static int
get_steps(AccelSearch *self, int slot, uint32_t sid, int32_t token,
          int32_t *off, int32_t *cnt)
{
    if (sid >= (1u << 28) || (uint32_t)token >= (1u << 28)) {
        PyErr_SetString(PyExc_OverflowError,
                        "accel step-memo key capacity exceeded");
        return -1;
    }
    uint64_t key = ((uint64_t)(unsigned)slot << 56) | ((uint64_t)sid << 28) |
                   (uint64_t)(uint32_t)token;
    Py_ssize_t msk = self->st_cap - 1;
    Py_ssize_t pos = (Py_ssize_t)(hash64(key) & (uint64_t)msk);
    while (self->st_cnt[pos] >= 0) {
        if (self->st_key[pos] == key) {
            *off = self->st_off[pos];
            *cnt = self->st_cnt[pos];
            return 0;
        }
        pos = (pos + 1) & msk;
    }
    self->step_calls++;
    PyObject *cb_args[3];
    cb_args[0] = PyLong_FromLong((long)slot);
    cb_args[1] = PyLong_FromUnsignedLong((unsigned long)sid);
    cb_args[2] = PyLong_FromLong((long)token);
    if (!cb_args[0] || !cb_args[1] || !cb_args[2]) {
        Py_XDECREF(cb_args[0]);
        Py_XDECREF(cb_args[1]);
        Py_XDECREF(cb_args[2]);
        return -1;
    }
    PyObject *res = PyObject_Vectorcall(self->step_cb, cb_args, 3, NULL);
    Py_DECREF(cb_args[0]);
    Py_DECREF(cb_args[1]);
    Py_DECREF(cb_args[2]);
    if (!res)
        return -1;
    PyObject *fast = PySequence_Fast(res, "step_cb must return a sequence");
    Py_DECREF(res);
    if (!fast)
        return -1;
    Py_ssize_t nsucc = PySequence_Fast_GET_SIZE(fast);
    if (self->succ_len + nsucc > self->succ_cap) {
        if (grow_i32(&self->succ_pool, &self->succ_cap,
                     self->succ_len + nsucc) < 0) {
            Py_DECREF(fast);
            return -1;
        }
    }
    int32_t newoff = (int32_t)self->succ_len;
    for (Py_ssize_t j = 0; j < nsucc; j++) {
        long sid_succ = PyLong_AsLong(PySequence_Fast_GET_ITEM(fast, j));
        if (sid_succ == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        if (sid_succ < 0 || (uint64_t)sid_succ > self->mask) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_OverflowError,
                            "successor slice id exceeds the slot budget");
            return -1;
        }
        self->succ_pool[self->succ_len++] = (int32_t)sid_succ;
    }
    Py_DECREF(fast);
    /* the callback ran Python but cannot have touched this table */
    self->st_key[pos] = key;
    self->st_off[pos] = newoff;
    self->st_cnt[pos] = (int32_t)nsucc;
    self->st_used++;
    *off = newoff;
    *cnt = (int32_t)nsucc;
    if (self->st_used * 10 >= self->st_cap * 7)
        return st_grow(self);
    return 0;
}

/* ------------------------------------------------------------------ */
/* invariant cache                                                     */
/* ------------------------------------------------------------------ */

static int
inv_call(AccelSearch *self, PyObject *cb, uint64_t key)
{
    self->invariant_calls++;
    PyObject *arg = PyLong_FromUnsignedLongLong(key);
    if (!arg)
        return -1;
    PyObject *res = PyObject_CallFunctionObjArgs(cb, arg, NULL);
    Py_DECREF(arg);
    if (!res)
        return -1;
    int truth = PyObject_IsTrue(res);
    Py_DECREF(res);
    return truth;
}

static int
inv_grow(AccelSearch *self)
{
    Py_ssize_t newcap = self->inv_cap * 2;
    uint64_t *nk = PyMem_Malloc((size_t)newcap * sizeof(uint64_t));
    int8_t *ns = PyMem_Malloc((size_t)newcap * sizeof(int8_t));
    if (!nk || !ns) {
        PyMem_Free(nk);
        PyMem_Free(ns);
        PyErr_NoMemory();
        return -1;
    }
    memset(ns, 0, (size_t)newcap * sizeof(int8_t));
    Py_ssize_t msk = newcap - 1;
    for (Py_ssize_t i = 0; i < self->inv_cap; i++) {
        if (!self->inv_state[i])
            continue;
        uint64_t key = self->inv_key[i];
        Py_ssize_t pos = (Py_ssize_t)(hash64(key) & (uint64_t)msk);
        while (ns[pos])
            pos = (pos + 1) & msk;
        nk[pos] = key;
        ns[pos] = self->inv_state[i];
    }
    PyMem_Free(self->inv_key);
    PyMem_Free(self->inv_state);
    self->inv_key = nk;
    self->inv_state = ns;
    self->inv_cap = newcap;
    return 0;
}

/* Verdict (0/1) of the invariant on key, cached by key & proj_mask. */
static int
inv_cached(AccelSearch *self, PyObject *cb, uint64_t key, uint64_t proj_mask)
{
    uint64_t pk = key & proj_mask;
    Py_ssize_t msk = self->inv_cap - 1;
    Py_ssize_t pos = (Py_ssize_t)(hash64(pk) & (uint64_t)msk);
    while (self->inv_state[pos]) {
        if (self->inv_key[pos] == pk)
            return self->inv_state[pos] - 1;
        pos = (pos + 1) & msk;
    }
    int verdict = inv_call(self, cb, key);
    if (verdict < 0)
        return -1;
    self->inv_key[pos] = pk;
    self->inv_state[pos] = (int8_t)(verdict + 1);
    self->inv_used++;
    if (self->inv_used * 10 >= self->inv_cap * 7) {
        if (inv_grow(self) < 0)
            return -1;
    }
    return verdict;
}

/* ------------------------------------------------------------------ */
/* push one successor                                                  */
/* ------------------------------------------------------------------ */

static int
push(AccelSearch *self, uint64_t key, Py_ssize_t parent, int32_t token,
     PyObject *invariant_cb, uint64_t proj_mask, Py_ssize_t max_states,
     Py_ssize_t *violation_index)
{
    self->transitions++;
    Py_ssize_t slot_pos = 0;
    if (vis_probe(self, key, &slot_pos) >= 0)
        return PUSH_DUP;
    if (ensure_entry_cap(self) < 0)
        return -1;
    Py_ssize_t idx = self->count;
    self->keys[idx] = key;
    self->parents[idx] = (int64_t)parent;
    self->tokens[idx] = token;
    self->count = idx + 1;
    self->vis_key[slot_pos] = key;
    self->vis_idx[slot_pos] = (int64_t)idx;
    self->vis_used++;
    if (vis_maybe_grow(self) < 0)
        return -1;
    if (invariant_cb != Py_None) {
        int verdict = proj_mask
                          ? inv_cached(self, invariant_cb, key, proj_mask)
                          : inv_call(self, invariant_cb, key);
        if (verdict < 0)
            return -1;
        if (!verdict) {
            /* mirror the engine: the violating state is reported even
               when it is the state that would have burst the budget */
            *violation_index = idx;
            return PUSH_VIOLATION;
        }
    }
    if (self->count > max_states) {
        /* budget spent: drop the overflow entry and stop the whole
           search at once (the stale hash slot is harmless -- nothing
           probes after this) */
        self->count = max_states;
        return PUSH_TRUNCATED;
    }
    return PUSH_OK;
}

/* ------------------------------------------------------------------ */
/* methods                                                             */
/* ------------------------------------------------------------------ */

static void
accel_reset(AccelSearch *self)
{
    self->count = 0;
    memset(self->vis_idx, 0xFF, (size_t)self->vis_cap * sizeof(int64_t));
    self->vis_used = 0;
    memset(self->inv_state, 0, (size_t)self->inv_cap * sizeof(int8_t));
    self->inv_used = 0;
    self->transitions = 0;
    self->enabled_calls = 0;
    self->step_calls = 0;
    self->invariant_calls = 0;
}

static PyObject *
AccelSearch_run(AccelSearch *self, PyObject *args)
{
    unsigned long long start_key_ull;
    Py_ssize_t max_states, max_depth;
    PyObject *invariant_cb;
    unsigned long long proj_mask_ull;
    if (!PyArg_ParseTuple(args, "KnnOK", &start_key_ull, &max_states,
                          &max_depth, &invariant_cb, &proj_mask_ull))
        return NULL;
    uint64_t start_key = (uint64_t)start_key_ull;
    uint64_t proj_mask = (uint64_t)proj_mask_ull;

    accel_reset(self);

    /* seed the search (the caller has already invariant-checked the
       start state, matching the pure-Python engine's preamble) */
    Py_ssize_t slot_pos = 0;
    (void)vis_probe(self, start_key, &slot_pos);
    self->keys[0] = start_key;
    self->parents[0] = -1;
    self->tokens[0] = -1;
    self->count = 1;
    self->vis_key[slot_pos] = start_key;
    self->vis_idx[slot_pos] = 0;
    self->vis_used = 1;

    int n = self->n;
    int bits = self->bits;
    uint64_t mask = self->mask;
    int status = 0;
    int truncated = 0;
    Py_ssize_t violation_index = -1;
    Py_ssize_t layer_start = 0;
    Py_ssize_t depth = 0;

    while (layer_start < self->count) {
        if (depth >= max_depth) {
            truncated = 1;
            break;
        }
        Py_ssize_t layer_end = self->count;
        for (Py_ssize_t i = layer_start; i < layer_end; i++) {
            uint64_t key = self->keys[i];
            for (int slot = 0; slot < n; slot++) {
                uint32_t sid = (uint32_t)((key >> (slot * bits)) & mask);
                int32_t eoff, ecnt;
                if (get_enabled(self, slot, sid, &eoff, &ecnt) < 0)
                    return NULL;
                for (int32_t p = 0; p < ecnt; p++) {
                    int32_t token = self->pair_pool[eoff + p];
                    int32_t ooff = self->tok_off[token];
                    int32_t ocnt = self->tok_cnt[token];
                    if (ocnt == 0)
                        continue;
                    if (ocnt == 1) {
                        int oslot = (int)self->owner_pool[ooff];
                        int oshift = oslot * bits;
                        uint32_t osid =
                            (uint32_t)((key >> oshift) & mask);
                        int32_t soff, scnt;
                        if (get_steps(self, oslot, osid, token, &soff,
                                      &scnt) < 0)
                            return NULL;
                        uint64_t cleared = key & ~(mask << oshift);
                        for (int32_t s = 0; s < scnt; s++) {
                            uint64_t nk =
                                cleared |
                                ((uint64_t)(uint32_t)
                                     self->succ_pool[soff + s]
                                 << oshift);
                            int rc = push(self, nk, i, token, invariant_cb,
                                          proj_mask, max_states,
                                          &violation_index);
                            if (rc < 0)
                                return NULL;
                            if (rc == PUSH_VIOLATION) {
                                status = 1;
                                goto done;
                            }
                            if (rc == PUSH_TRUNCATED) {
                                truncated = 1;
                                goto done;
                            }
                        }
                        continue;
                    }
                    /* shared action: cross-product over owner slots,
                       last owner varying fastest */
                    int oslots[ACCEL_MAX_SLOTS];
                    int32_t soffs[ACCEL_MAX_SLOTS];
                    int32_t scnts[ACCEL_MAX_SLOTS];
                    int32_t idxs[ACCEL_MAX_SLOTS];
                    int enabled_everywhere = 1;
                    for (int32_t k = 0; k < ocnt; k++) {
                        int oslot = (int)self->owner_pool[ooff + k];
                        uint32_t osid =
                            (uint32_t)((key >> (oslot * bits)) & mask);
                        int32_t soff, scnt;
                        if (get_steps(self, oslot, osid, token, &soff,
                                      &scnt) < 0)
                            return NULL;
                        if (scnt == 0) {
                            enabled_everywhere = 0;
                            break;
                        }
                        oslots[k] = oslot;
                        soffs[k] = soff;
                        scnts[k] = scnt;
                        idxs[k] = 0;
                    }
                    if (!enabled_everywhere)
                        continue;
                    for (;;) {
                        uint64_t nk = key;
                        for (int32_t k = 0; k < ocnt; k++) {
                            int oshift = oslots[k] * bits;
                            nk = (nk & ~(mask << oshift)) |
                                 ((uint64_t)(uint32_t)self->succ_pool
                                      [soffs[k] + idxs[k]]
                                  << oshift);
                        }
                        int rc = push(self, nk, i, token, invariant_cb,
                                      proj_mask, max_states,
                                      &violation_index);
                        if (rc < 0)
                            return NULL;
                        if (rc == PUSH_VIOLATION) {
                            status = 1;
                            goto done;
                        }
                        if (rc == PUSH_TRUNCATED) {
                            truncated = 1;
                            goto done;
                        }
                        int32_t k = ocnt - 1;
                        while (k >= 0) {
                            if (++idxs[k] < scnts[k])
                                break;
                            idxs[k] = 0;
                            k--;
                        }
                        if (k < 0)
                            break;
                    }
                }
            }
        }
        layer_start = layer_end;
        depth++;
    }

done:
    return Py_BuildValue("(iin)", status, truncated, violation_index);
}

static PyObject *
AccelSearch_count(AccelSearch *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromSsize_t(self->count);
}

static PyObject *
AccelSearch_keys(AccelSearch *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *out = PyList_New(self->count);
    if (!out)
        return NULL;
    for (Py_ssize_t i = 0; i < self->count; i++) {
        PyObject *value = PyLong_FromUnsignedLongLong(
            (unsigned long long)self->keys[i]);
        if (!value) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, value);
    }
    return out;
}

static PyObject *
AccelSearch_entry(AccelSearch *self, PyObject *args)
{
    Py_ssize_t i;
    if (!PyArg_ParseTuple(args, "n", &i))
        return NULL;
    if (i < 0 || i >= self->count) {
        PyErr_SetString(PyExc_IndexError, "entry index out of range");
        return NULL;
    }
    return Py_BuildValue("(KLi)", (unsigned long long)self->keys[i],
                         (long long)self->parents[i], (int)self->tokens[i]);
}

static PyObject *
AccelSearch_stats(AccelSearch *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue(
        "{s:K,s:K,s:K,s:K,s:n}", "transitions",
        (unsigned long long)self->transitions, "enabled_calls",
        (unsigned long long)self->enabled_calls, "step_calls",
        (unsigned long long)self->step_calls, "invariant_calls",
        (unsigned long long)self->invariant_calls, "states", self->count);
}

/* ------------------------------------------------------------------ */
/* lifecycle                                                           */
/* ------------------------------------------------------------------ */

static int
AccelSearch_init(AccelSearch *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"n_slots", "bits_per_slot", "enabled_cb",
                             "step_cb", NULL};
    int n, bits;
    PyObject *enabled_cb, *step_cb;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "iiOO", kwlist, &n, &bits,
                                     &enabled_cb, &step_cb))
        return -1;
    if (n < 1 || n > ACCEL_MAX_SLOTS) {
        PyErr_SetString(PyExc_ValueError, "n_slots out of range");
        return -1;
    }
    if (bits < 1 || bits > 64 || (int64_t)n * bits > 64) {
        PyErr_SetString(PyExc_ValueError,
                        "bits_per_slot must pack n_slots into 64 bits");
        return -1;
    }
    if (!PyCallable_Check(enabled_cb) || !PyCallable_Check(step_cb)) {
        PyErr_SetString(PyExc_TypeError, "callbacks must be callable");
        return -1;
    }
    self->n = n;
    self->bits = bits;
    self->mask = bits >= 64 ? ~(uint64_t)0 : (((uint64_t)1 << bits) - 1);
    Py_INCREF(enabled_cb);
    Py_XSETREF(self->enabled_cb, enabled_cb);
    Py_INCREF(step_cb);
    Py_XSETREF(self->step_cb, step_cb);

    self->cap = 4096;
    self->keys = PyMem_Malloc((size_t)self->cap * sizeof(uint64_t));
    self->parents = PyMem_Malloc((size_t)self->cap * sizeof(int64_t));
    self->tokens = PyMem_Malloc((size_t)self->cap * sizeof(int32_t));
    self->vis_cap = 8192;
    self->vis_key = PyMem_Malloc((size_t)self->vis_cap * sizeof(uint64_t));
    self->vis_idx = PyMem_Malloc((size_t)self->vis_cap * sizeof(int64_t));
    self->st_cap = 4096;
    self->st_key = PyMem_Malloc((size_t)self->st_cap * sizeof(uint64_t));
    self->st_off = PyMem_Malloc((size_t)self->st_cap * sizeof(int32_t));
    self->st_cnt = PyMem_Malloc((size_t)self->st_cap * sizeof(int32_t));
    self->inv_cap = 1024;
    self->inv_key = PyMem_Malloc((size_t)self->inv_cap * sizeof(uint64_t));
    self->inv_state = PyMem_Malloc((size_t)self->inv_cap * sizeof(int8_t));
    self->en_off = PyMem_Malloc((size_t)n * sizeof(int32_t *));
    self->en_cnt = PyMem_Malloc((size_t)n * sizeof(int32_t *));
    self->en_cap = PyMem_Malloc((size_t)n * sizeof(Py_ssize_t));
    if (!self->keys || !self->parents || !self->tokens || !self->vis_key ||
        !self->vis_idx || !self->st_key || !self->st_off || !self->st_cnt ||
        !self->inv_key || !self->inv_state || !self->en_off ||
        !self->en_cnt || !self->en_cap) {
        PyErr_NoMemory();
        return -1;
    }
    for (int slot = 0; slot < n; slot++) {
        self->en_off[slot] = NULL;
        self->en_cnt[slot] = NULL;
        self->en_cap[slot] = 0;
    }
    self->tok_off = NULL;
    self->tok_cnt = NULL;
    self->tok_cap = 0;
    self->owner_pool = NULL;
    self->owner_len = 0;
    self->owner_cap = 0;
    self->pair_pool = NULL;
    self->pair_len = 0;
    self->pair_cap = 0;
    self->succ_pool = NULL;
    self->succ_len = 0;
    self->succ_cap = 0;
    self->st_used = 0;
    memset(self->st_cnt, 0xFF, (size_t)self->st_cap * sizeof(int32_t));
    accel_reset(self);
    return 0;
}

static void
AccelSearch_dealloc(AccelSearch *self)
{
    Py_XDECREF(self->enabled_cb);
    Py_XDECREF(self->step_cb);
    PyMem_Free(self->keys);
    PyMem_Free(self->parents);
    PyMem_Free(self->tokens);
    PyMem_Free(self->vis_key);
    PyMem_Free(self->vis_idx);
    PyMem_Free(self->st_key);
    PyMem_Free(self->st_off);
    PyMem_Free(self->st_cnt);
    PyMem_Free(self->inv_key);
    PyMem_Free(self->inv_state);
    if (self->en_off || self->en_cnt) {
        for (int slot = 0; slot < self->n; slot++) {
            if (self->en_off)
                PyMem_Free(self->en_off[slot]);
            if (self->en_cnt)
                PyMem_Free(self->en_cnt[slot]);
        }
    }
    PyMem_Free(self->en_off);
    PyMem_Free(self->en_cnt);
    PyMem_Free(self->en_cap);
    PyMem_Free(self->tok_off);
    PyMem_Free(self->tok_cnt);
    PyMem_Free(self->owner_pool);
    PyMem_Free(self->pair_pool);
    PyMem_Free(self->succ_pool);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef AccelSearch_methods[] = {
    {"run", (PyCFunction)AccelSearch_run, METH_VARARGS,
     "run(start_key, max_states, max_depth, invariant_cb, proj_mask)\n"
     "-> (status, truncated, violation_index); status 1 = violation."},
    {"count", (PyCFunction)AccelSearch_count, METH_NOARGS,
     "Number of visited entries."},
    {"keys", (PyCFunction)AccelSearch_keys, METH_NOARGS,
     "Packed keys of all entries in BFS insertion order."},
    {"entry", (PyCFunction)AccelSearch_entry, METH_VARARGS,
     "entry(i) -> (key, parent_index, token)."},
    {"stats", (PyCFunction)AccelSearch_stats, METH_NOARGS,
     "Search counters (transitions, callback counts, states)."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject AccelSearchType = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "_repro_accel.AccelSearch",
    .tp_basicsize = sizeof(AccelSearch),
    .tp_itemsize = 0,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Packed-key BFS over encoder callbacks.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)AccelSearch_init,
    .tp_dealloc = (destructor)AccelSearch_dealloc,
    .tp_methods = AccelSearch_methods,
};

static PyModuleDef accel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_repro_accel",
    .m_doc = "Compiled packed-key BFS core for the exploration engine.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__repro_accel(void)
{
    if (PyType_Ready(&AccelSearchType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&accel_module);
    if (!module)
        return NULL;
    Py_INCREF(&AccelSearchType);
    if (PyModule_AddObject(module, "AccelSearch",
                           (PyObject *)&AccelSearchType) < 0) {
        Py_DECREF(&AccelSearchType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
