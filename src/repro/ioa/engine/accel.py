"""Compiled packed-key exploration backend.

:func:`explore_accel` runs the bounded BFS of
:func:`~repro.ioa.explorer.explore` inside a small C extension
(``_accel.c``): states travel as 64-bit packed codes from the shared
:class:`~repro.ioa.engine.encoding.StateEncoder`, the visited table and
the per-slice stepping memos are flat C hash tables, and Python is only
re-entered on cache misses -- once per distinct (slice, action) step,
once per distinct slice's enabled set, and once per distinct invariant
projection.  The expansion order and the budget/violation semantics
replicate the pure-Python engine exactly, so the three-way differential
suite (reference vs engine vs accel) can require identical results.

The extension is built on demand with the system C compiler (``cc -O2
-shared -fPIC``) into a per-source-hash cache directory -- no package
installation involved -- and loaded from there.  Anything that prevents
the fast path (no compiler, a non-composition automaton, an environment
callback, ``validate=True``, or a state space that outgrows the packed
bit budget) raises :class:`AccelUnavailable`, which
:func:`~repro.ioa.explorer.explore` turns into a silent fallback to the
pure-Python engine (counted as ``explore.accel_fallback``).  Set
``REPRO_ACCEL_REQUIRE=1`` to turn the fallback into a hard error (CI
does, so the differential job cannot silently skip the compiled path).

Invariant projection: an invariant callable may declare the component
slots it reads via a ``state_slots`` attribute (a tuple of slot
indices).  The accel backend then caches verdicts per projected key, so
the Python invariant runs once per distinct combination of those
slices instead of once per state.  The declaration is a promise -- the
callable must depend on no other slot -- and is verified by the
differential suite for the shipped invariants.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import subprocess
import sys
import sysconfig
import threading
from typing import Any, Iterator, List, Optional, Set, Tuple

try:  # Python 3.9+: collections.abc.Set is subscriptable but we only subclass
    from collections.abc import Set as AbstractSet
except ImportError:  # pragma: no cover - unreachable on supported versions
    from typing import AbstractSet  # type: ignore[assignment]

from ..automaton import State
from ..composition import Composition
from .core import Environment, ExplorationResult, Invariant
from .encoding import EncodingOverflow, StateEncoder

__all__ = [
    "AccelUnavailable",
    "LazyStateSet",
    "accel_backend_id",
    "ensure_built",
    "explore_accel",
]


class AccelUnavailable(RuntimeError):
    """The compiled backend cannot run this exploration.

    Raised for build/load failures and for explorations outside the
    packed fast path's preconditions; the dispatcher treats it as
    "fall back to the pure-Python engine".
    """


_LOCK = threading.Lock()
_MODULE: Optional[Any] = None
_MODULE_ERROR: Optional[str] = None


def _source_path() -> str:
    return os.path.join(os.path.dirname(__file__), "_accel.c")


def _cache_root() -> str:
    override = os.environ.get("REPRO_ACCEL_CACHE")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-accel")


def _build_dir_and_target() -> Tuple[str, str]:
    """The per-source-hash cache directory and the shared-object path."""
    source = _source_path()
    with open(source, "rb") as handle:
        digest = hashlib.sha256(handle.read()).hexdigest()[:16]
    tag = "cpython-{}{}".format(sys.version_info[0], sys.version_info[1])
    build_dir = os.path.join(_cache_root(), "{}-{}".format(tag, digest))
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return build_dir, os.path.join(build_dir, "_repro_accel" + suffix)


def ensure_built(verbose: bool = False) -> str:
    """Compile the extension if needed; the shared-object path.

    Uses the system compiler directly (honouring ``$CC``), so nothing
    is installed anywhere: the artifact lands in a cache directory
    keyed by Python version and source hash, which doubles as the CI
    cache key.  Raises :class:`AccelUnavailable` when no compiler or
    Python headers are available.
    """
    build_dir, target = _build_dir_and_target()
    if os.path.exists(target):
        return target
    source = _source_path()
    include = sysconfig.get_paths()["include"]
    compiler = os.environ.get("CC") or "cc"
    os.makedirs(build_dir, exist_ok=True)
    scratch = target + ".tmp{}".format(os.getpid())
    command = [
        compiler,
        "-O2",
        "-fPIC",
        "-shared",
        "-I{}".format(include),
        source,
        "-o",
        scratch,
    ]
    if verbose:
        print("building accel backend:", " ".join(command))
    try:
        proc = subprocess.run(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            timeout=300,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        raise AccelUnavailable(
            "cannot run C compiler {!r}: {}".format(compiler, exc)
        ) from exc
    if proc.returncode != 0:
        raise AccelUnavailable(
            "accel build failed ({} exit {}):\n{}".format(
                compiler, proc.returncode, proc.stderr[-2000:]
            )
        )
    # Atomic publish, so concurrent builders cannot load a half-written
    # shared object.
    os.replace(scratch, target)
    return target


def _load_module() -> Any:
    global _MODULE, _MODULE_ERROR
    if _MODULE is not None:
        return _MODULE
    if _MODULE_ERROR is not None:
        raise AccelUnavailable(_MODULE_ERROR)
    with _LOCK:
        if _MODULE is not None:
            return _MODULE
        try:
            target = ensure_built()
            spec = importlib.util.spec_from_file_location(
                "_repro_accel", target
            )
            if spec is None or spec.loader is None:
                raise AccelUnavailable(
                    "cannot load accel extension from {}".format(target)
                )
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
        except AccelUnavailable as exc:
            _MODULE_ERROR = str(exc)
            raise
        except Exception as exc:  # loader errors become unavailability
            _MODULE_ERROR = "accel extension failed to load: {}".format(exc)
            raise AccelUnavailable(_MODULE_ERROR) from exc
        _MODULE = module
    return _MODULE


def accel_backend_id() -> Optional[str]:
    """A short identifier of the loaded backend, or None if unavailable."""
    try:
        _load_module()
    except AccelUnavailable:
        return None
    build_dir, _ = _build_dir_and_target()
    return "c-" + os.path.basename(build_dir)


class LazyStateSet(AbstractSet):
    """Set view over packed state keys, decoded on demand.

    ``explore`` promises a set of decoded states, but most consumers
    only take ``len()`` (the states/sec metric, the run report).
    Decoding and deep-hashing every state eagerly would cost more than
    the whole compiled search, so the accel backend returns this view:
    sized and probe-able without decoding anything, materializing the
    real set only on first iteration or whole-set comparison.
    """

    __slots__ = ("_search", "_count", "_encoder", "_keys", "_key_set",
                 "_materialized")

    def __init__(self, search: Any, encoder: StateEncoder):
        self._search = search
        self._count = search.count()
        self._encoder = encoder
        self._keys: Optional[List[int]] = None
        self._key_set: Optional[Set[int]] = None
        self._materialized: Optional[Set[State]] = None

    def _packed_keys(self) -> List[int]:
        if self._keys is None:
            self._keys = self._search.keys()
        return self._keys

    def _states(self) -> Set[State]:
        if self._materialized is None:
            decode = self._encoder.decode_packed
            self._materialized = {
                decode(key) for key in self._packed_keys()
            }
        return self._materialized

    def __len__(self) -> int:
        # Packed keys are distinct by construction (the visited table
        # deduplicates), and the encoding is a bijection.
        return self._count

    def __iter__(self) -> Iterator[State]:
        return iter(self._states())

    def __contains__(self, state: object) -> bool:
        if self._materialized is not None:
            return state in self._materialized
        encoder = self._encoder
        if not isinstance(state, tuple) or len(state) != encoder.n:
            return False
        key = 0
        for slot, shift in enumerate(encoder.shifts):
            # Non-mutating probe: an unknown slice was never visited.
            try:
                sid = encoder.slice_tables[slot].get(state[slot])
            except TypeError:  # unhashable probe value
                return False
            if sid is None or sid >= encoder.slot_capacity:
                return False
            key |= sid << shift
        if self._key_set is None:
            self._key_set = set(self._packed_keys())
        return key in self._key_set

    def __repr__(self) -> str:
        return "LazyStateSet({} states)".format(self._count)


def _projection_mask(
    invariant: Invariant, encoder: StateEncoder
) -> int:
    """The packed-key mask of the slots an invariant declares it reads.

    Zero (no projection, one call per state) unless the callable
    carries a valid ``state_slots`` declaration.
    """
    slots = getattr(invariant, "state_slots", None)
    if not slots:
        return 0
    mask = 0
    per_slot = (1 << encoder.bits_per_slot) - 1
    try:
        for slot in slots:
            if not 0 <= slot < encoder.n:
                return 0
            mask |= per_slot << encoder.shifts[slot]
    except TypeError:
        return 0
    return mask


def explore_accel(
    automaton: Any,
    environment: Environment = None,
    invariant: Invariant = None,
    max_states: int = 50_000,
    max_depth: int = 10_000,
    validate: bool = False,
    initial_state: Optional[State] = None,
    encoder: Optional[StateEncoder] = None,
) -> ExplorationResult:
    """Compiled-backend exploration (same contract as the engine).

    Raises :class:`AccelUnavailable` whenever the packed fast path does
    not apply; raises :class:`EncodingOverflow` when the state space
    outgrows the 64-bit packing mid-search.  Both are fallback signals,
    never wrong answers.
    """
    if not isinstance(automaton, Composition):
        raise AccelUnavailable("accel backend requires a Composition")
    if environment is not None:
        raise AccelUnavailable(
            "environment callbacks require decoded states per expansion"
        )
    if validate:
        raise AccelUnavailable("validate=True runs on the pure engine")
    module = _load_module()

    if encoder is None:
        encoder = StateEncoder(automaton)
    if encoder.n * encoder.bits_per_slot > 64 or encoder.n > 64:
        raise AccelUnavailable("composition too wide for packed keys")

    start = (
        initial_state
        if initial_state is not None
        else automaton.initial_state()
    )
    if invariant is not None and not invariant(start):
        return ExplorationResult({start}, False, (start, ()))
    start_key = encoder.encode_packed(start)  # may raise EncodingOverflow

    invariant_cb: Any = None
    proj_mask = 0
    if invariant is not None:
        decode_packed = encoder.decode_packed
        checker = invariant

        def _invariant_cb(key: int) -> bool:
            return bool(checker(decode_packed(key)))

        invariant_cb = _invariant_cb
        proj_mask = _projection_mask(invariant, encoder)

    # The C core range-checks every successor slice id against the slot
    # budget (raising OverflowError), so the encoder's bound methods
    # are passed straight through -- no per-call Python wrapper.
    search = module.AccelSearch(
        encoder.n,
        encoder.bits_per_slot,
        encoder.enabled_pairs,
        encoder.successor_sids,
    )
    try:
        status, truncated, violation_index = search.run(
            start_key, max_states, max_depth, invariant_cb, proj_mask
        )
    except OverflowError as exc:
        raise EncodingOverflow(str(exc)) from exc

    from ...obs import current_tracer

    tracer = current_tracer()
    if tracer.enabled:
        stats = search.stats()
        tracer.count("explore.states", stats["states"])
        tracer.count("explore.transitions", stats["transitions"])
        tracer.count(
            "explore.slices_interned", encoder.slices_interned()
        )
        tracer.count(
            "explore.actions_interned", len(encoder.action_of_token)
        )
        tracer.count("explore.accel_steps", stats["step_calls"])
        tracer.count(
            "explore.accel_invariant_calls", stats["invariant_calls"]
        )

    if status == 1:
        # Violation: decode eagerly (counterexample paths are rare and
        # short) and reconstruct the layer-minimal trace from the
        # parent log.
        decode_packed = encoder.decode_packed
        states = {decode_packed(key) for key in search.keys()}
        bad_key, _, _ = search.entry(violation_index)
        actions = []
        index = violation_index
        while True:
            _, parent, token = search.entry(index)
            if parent < 0:
                break
            actions.append(encoder.action_of_token[token])
            index = parent
        actions.reverse()
        return ExplorationResult(
            states,
            bool(truncated),
            (decode_packed(bad_key), tuple(actions)),
        )
    return ExplorationResult(
        LazyStateSet(search, encoder), bool(truncated)
    )
