"""States/sec benchmark emitter for the exploration engine.

Times the exploration-engine backend against the reference naive BFS on
the exhaustive-verification closed systems of the protocol zoo and
writes the results to ``bench/BENCH_explore.json`` so the perf
trajectory is tracked from PR to PR.  Run via::

    python benchmarks/run_experiments.py --bench-explore

or programmatically through :func:`write_bench_json`.

Analysis-layer imports happen inside the functions: this module lives
under :mod:`repro.ioa` and must not import :mod:`repro.analysis` at
module load (the analysis layer imports the ioa layer).
"""

from __future__ import annotations

import json
import os
import time
from statistics import median
from typing import Dict, Iterable, Optional, Tuple

DEFAULT_PATH = os.path.join("bench", "BENCH_explore.json")
TRACE_PATH = os.path.join("bench", "BENCH_explore_trace.jsonl")

#: (protocol key, factory-name, messages, capacity, reorder_depth,
#: expected_ok).  ``expected_ok=False`` marks a case whose invariant
#: violation is the *point* of the case -- abp-reorder-2 exists because
#: the alternating-bit protocol is provably broken under depth-2
#: reordering (the Section 8 contrast), and the benchmark doubles as a
#: regression test that the engine still finds that counterexample.
#:
#: The headline cases run at (messages=3, capacity=3): a few thousand
#: states each, enough for states/sec to measure steady-state stepping
#: throughput rather than the per-run fixed cost (building the closed
#: system and warming the encoder's stepping memos, which every backend
#: pays once per exploration).  ``abp-small`` keeps the old tiny
#: configuration so the fixed-cost regime stays visible in the report.
DEFAULT_CASES: Tuple[Tuple[str, str, int, int, int, bool], ...] = (
    ("abp", "alternating_bit_protocol", 3, 3, 1, True),
    ("sliding-window-2", "sliding_window_protocol:2", 2, 2, 1, True),
    ("stenning", "stenning_protocol", 3, 3, 1, True),
    ("fragmenting", "fragmenting_protocol:1,2", 3, 3, 1, True),
    ("abp-small", "alternating_bit_protocol", 2, 2, 1, True),
    ("abp-reorder-2", "alternating_bit_protocol", 2, 3, 2, False),
)


def _protocol_factory(spec: str):
    """Resolve a ``name`` / ``name:args`` spec to a protocol factory."""
    from repro import protocols as zoo

    if ":" not in spec:
        return getattr(zoo, spec)
    name, raw_args = spec.split(":", 1)
    args = tuple(int(piece) for piece in raw_args.split(","))
    factory = getattr(zoo, name)
    return lambda: factory(*args)


def _time_explore(explore_fn, build_system, repeats: int):
    """Median wall-clock over ``repeats`` runs; returns (seconds, result).

    ``build_system`` returns a fresh (composition, invariant) pair per
    repeat, matching the real workload (``verify_delivery_order``
    constructs a fresh closed system per call), so neither explorer is
    flattered by caches warmed on a previous repeat.
    """
    timings = []
    result = None
    for _ in range(repeats):
        composition, invariant = build_system()
        started = time.perf_counter()
        result = explore_fn(
            composition, invariant=invariant, max_depth=10_000_000
        )
        timings.append(time.perf_counter() - started)
    return median(timings), result


def run_bench(
    cases: Iterable[Tuple[str, str, int, int, int, bool]] = DEFAULT_CASES,
    repeats: int = 3,
    workers: Optional[int] = None,
) -> Dict:
    """Benchmark engine vs. reference BFS on each closed system.

    Every case is cross-checked while it is timed: the engine, the
    reference, and (when the compiled backend is available) the
    accelerated backend must agree on the reachable-state set and the
    ``truncated`` flag, so a benchmark run is also a three-way
    differential test.
    """
    from repro.analysis.model_check import build_closed_system
    from repro.ioa.engine.accel import accel_backend_id
    from repro.ioa.explorer import explore

    backend = accel_backend_id()
    if hasattr(os, "sched_getaffinity"):
        effective_cpus = len(os.sched_getaffinity(0))
    else:  # pragma: no cover - platforms without affinity masks
        effective_cpus = os.cpu_count() or 1
    report: Dict = {
        "generated_by": "repro.ioa.engine.bench",
        "repeats": repeats,
        "workers": workers,
        "accel_backend": backend,
        # Absolute states/sec is host-dependent; regression gates
        # should annotate or skip when the affinity mask is starved
        # (mirrors the fuzz bench's oversubscription annotation).
        "effective_cpus": effective_cpus,
        "protocols": {},
    }
    speedups = []
    accel_speedups = []
    for key, spec, messages, capacity, reorder_depth, expected_ok in cases:

        def build_system(spec=spec, memoize=True):
            # The reference baseline is timed in the seed configuration
            # (no composition memoization): it stands in for the
            # pre-engine explorer, and memoization is part of what this
            # benchmark measures.
            composition, invariant, _ = build_closed_system(
                _protocol_factory(spec)(),
                messages=messages,
                capacity=capacity,
                reorder_depth=reorder_depth,
                memoize=memoize,
            )
            return composition, invariant

        def engine_fn(composition, invariant, max_depth):
            return explore(
                composition,
                invariant=invariant,
                max_depth=max_depth,
                workers=workers,
            )

        def reference_fn(composition, invariant, max_depth):
            return explore(
                composition,
                invariant=invariant,
                max_depth=max_depth,
                engine="reference",
            )

        def accel_fn(composition, invariant, max_depth):
            return explore(
                composition,
                invariant=invariant,
                max_depth=max_depth,
                engine="accel",
            )

        engine_seconds, engine_result = _time_explore(
            engine_fn, build_system, repeats
        )
        reference_seconds, reference_result = _time_explore(
            reference_fn,
            lambda: build_system(memoize=False),
            repeats,
        )
        if backend is not None:
            accel_seconds, accel_result = _time_explore(
                accel_fn, build_system, repeats
            )
        else:
            # No compiler: explore(engine="accel") would silently fall
            # back and time the engine twice, which is not a
            # measurement.  The columns stay null instead.
            accel_seconds, accel_result = None, None
        if engine_result.states != reference_result.states:
            raise AssertionError(
                f"{key}: engine and reference disagree on the "
                "reachable-state set"
            )
        if engine_result.truncated != reference_result.truncated:
            raise AssertionError(
                f"{key}: engine and reference disagree on truncation"
            )
        if accel_result is not None:
            if set(accel_result.states) != engine_result.states:
                raise AssertionError(
                    f"{key}: accel and engine disagree on the "
                    "reachable-state set"
                )
            if accel_result.truncated != engine_result.truncated:
                raise AssertionError(
                    f"{key}: accel and engine disagree on truncation"
                )
            if accel_result.ok != engine_result.ok:
                raise AssertionError(
                    f"{key}: accel and engine disagree on the verdict"
                )
        if engine_result.ok != expected_ok:
            raise AssertionError(
                f"{key}: verdict ok={engine_result.ok} does not match "
                f"expected_ok={expected_ok}"
            )
        states = len(engine_result.states)
        speedup = reference_seconds / engine_seconds
        speedups.append(speedup)
        note = (
            None
            if expected_ok
            else "expected failure: this protocol provably violates the "
            "invariant in this configuration (abp-reorder-2: the "
            "alternating-bit protocol breaks under depth-2 reordering)"
        )
        row = {
            "messages": messages,
            "capacity": capacity,
            "reorder_depth": reorder_depth,
            "states": states,
            "ok": engine_result.ok,
            "expected_ok": expected_ok,
            "note": note,
            "engine_seconds": round(engine_seconds, 6),
            "engine_states_per_sec": round(states / engine_seconds, 1),
            "reference_seconds": round(reference_seconds, 6),
            "reference_states_per_sec": round(
                states / reference_seconds, 1
            ),
            "speedup": round(speedup, 2),
            "accel_seconds": None,
            "accel_states_per_sec": None,
            "accel_speedup": None,
        }
        if accel_seconds is not None:
            accel_speedup = engine_seconds / accel_seconds
            accel_speedups.append(accel_speedup)
            row["accel_seconds"] = round(accel_seconds, 6)
            row["accel_states_per_sec"] = round(
                states / accel_seconds, 1
            )
            row["accel_speedup"] = round(accel_speedup, 2)
        report["protocols"][key] = row
    report["median_speedup"] = round(median(speedups), 2)
    report["median_accel_speedup"] = (
        round(median(accel_speedups), 2) if accel_speedups else None
    )
    return report


def write_bench_trace(
    path: str = TRACE_PATH,
    case: Tuple[str, str, int, int, int, bool] = DEFAULT_CASES[0],
    workers: Optional[int] = None,
) -> Dict:
    """Run one benchmark exploration under full tracing.

    Writes the exploration's structured event stream (layer spans,
    intern/memo counters, frontier gauges) plus the closing run
    manifest to ``path`` as JSONL — the artifact CI uploads so a perf
    regression can be diagnosed from the trace, not just the number.
    """
    from repro.analysis.model_check import build_closed_system
    from repro.ioa.explorer import explore
    from repro.obs import trace_run

    key, spec, messages, capacity, reorder_depth, _expected_ok = case
    composition, invariant, _ = build_closed_system(
        _protocol_factory(spec)(),
        messages=messages,
        capacity=capacity,
        reorder_depth=reorder_depth,
    )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with trace_run(
        path,
        command="bench-explore",
        protocol=key,
        config={
            "messages": messages,
            "capacity": capacity,
            "reorder_depth": reorder_depth,
            "workers": workers,
        },
    ) as tracer:
        result = explore(
            composition,
            invariant=invariant,
            max_depth=10_000_000,
            workers=workers,
        )
    return {
        "path": path,
        "protocol": key,
        "states": len(result.states),
        "counters": tracer.snapshot_counters(),
    }


def write_bench_json(
    path: str = DEFAULT_PATH,
    cases: Iterable[Tuple[str, str, int, int, int, bool]] = DEFAULT_CASES,
    repeats: int = 3,
    workers: Optional[int] = None,
) -> Dict:
    """Run the benchmark and write the JSON report to ``path``."""
    report = run_bench(cases=cases, repeats=repeats, workers=workers)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report
