"""Disk-backed frontier and visited store for bounded BFS.

:func:`explore_disk` runs the same search as
:func:`~repro.ioa.engine.core.explore_engine` -- identical expansion
order, identical budget/violation contract -- but keeps the two
structures that grow with the state space on disk instead of in RAM:

* **Entry log.**  One append-only file of fixed-width records
  ``(slot ids..., parent index, action token)``.  It is simultaneously
  the insertion-order state store, the parent log for counterexample
  reconstruction, and the BFS frontier: a layer is a contiguous index
  range ``[start, stop)`` into the log (the same trick the compiled
  backend plays with its in-RAM entry arrays), so expanding a layer is
  a single sequential read and no frontier list is ever held in memory.

* **Sharded visited membership.**  Encoded states hash into shards;
  each shard keeps a small in-RAM set and, once the global RAM budget
  (``ram_cap`` keys) is spent, merges it into the shard's single sorted
  run file (a streaming merge -- constant memory).  A membership probe
  is a RAM-set hit or a binary search over the shard's run.

Peak resident state is therefore ``O(ram_cap + slices)`` -- the slice
intern tables still live in RAM (they are the *point* of the encoding:
tiny compared to the composed-state space) -- while visited states and
frontier spill to disk.  The result's ``states`` is a lazy
:class:`DiskStateSet` view over the entry log; nothing is decoded until
somebody iterates it.

The store is process-local scratch, not a database: files live in a
temporary directory (removed when the store is garbage collected) or
in a caller-supplied ``directory``, and record layout may change
between versions.
"""

from __future__ import annotations

import heapq
import os
import shutil
import struct
import tempfile
import weakref
from typing import Any, Iterator, List, Optional, Set, Tuple

try:
    from collections.abc import Set as AbstractSet
except ImportError:  # pragma: no cover - unreachable on supported versions
    from typing import AbstractSet  # type: ignore[assignment]

from ...obs import current_tracer
from ..automaton import State
from ..composition import Composition
from .core import (
    Environment,
    ExplorationResult,
    InputEnablednessError,
    Invariant,
    _CompositionSearch,
)
from .encoding import StateEncoder

__all__ = [
    "DiskStateSet",
    "DiskStore",
    "explore_disk",
]

#: Default RAM budget: total encoded keys held across shard sets before
#: they are merged into the sorted disk runs.
DEFAULT_RAM_CAP = 1_000_000

#: Entry-log records read per chunk while streaming a BFS layer.
_LAYER_CHUNK = 4096


class DiskStore:
    """Append-only entry log plus sharded visited membership, on disk.

    ``n_slots`` fixes the record width (one ``u32`` per component slice
    id, a signed 64-bit parent index, a signed 32-bit action token).
    Callers must check :meth:`contains` before :meth:`append`; the
    store never deduplicates on its own.
    """

    def __init__(
        self,
        n_slots: int,
        directory: Optional[str] = None,
        ram_cap: int = DEFAULT_RAM_CAP,
        shards: int = 16,
    ):
        self.n_slots = n_slots
        self.ram_cap = max(1, ram_cap)
        self.shards = max(1, shards)
        owns_directory = directory is None
        if owns_directory:
            directory = tempfile.mkdtemp(prefix="repro-explore-")
        else:
            os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self._entry_struct = struct.Struct("<" + "I" * n_slots + "qi")
        self._key_struct = struct.Struct("<" + "I" * n_slots)
        self._entries_path = os.path.join(directory, "entries.bin")
        self._entries = open(self._entries_path, "wb")
        self._reader: Optional[Any] = None
        #: total entries appended (== distinct states visited)
        self.count = 0
        self.flushes = 0
        self._ram: List[Set[Tuple[int, ...]]] = [
            set() for _ in range(self.shards)
        ]
        self._ram_total = 0
        self._run_paths: List[Optional[str]] = [None] * self.shards
        self._run_counts = [0] * self.shards
        self._run_handles: List[Optional[Any]] = [None] * self.shards
        self._cleanup: Optional[weakref.finalize]
        if owns_directory:
            # Scratch files die with the store (or at interpreter exit),
            # even if the caller never closes it; open handles just get
            # unlinked under themselves, which is fine on POSIX.
            self._cleanup = weakref.finalize(
                self, shutil.rmtree, directory, ignore_errors=True
            )
        else:
            self._cleanup = None

    # -- membership -----------------------------------------------------

    def contains(self, encoded: Tuple[int, ...]) -> bool:
        """Whether the encoded state was ever appended."""
        shard = hash(encoded) % self.shards
        if encoded in self._ram[shard]:
            return True
        if self._run_paths[shard] is None:
            return False
        return self._probe_run(shard, self._key_struct.pack(*encoded))

    def _probe_run(self, shard: int, packed: bytes) -> bool:
        """Binary search over the shard's sorted fixed-width run file."""
        path = self._run_paths[shard]
        if path is None:  # pragma: no cover - contains() guards this
            return False
        handle = self._run_handles[shard]
        if handle is None:
            handle = open(path, "rb")
            self._run_handles[shard] = handle
        size = self._key_struct.size
        lo, hi = 0, self._run_counts[shard]
        while lo < hi:
            mid = (lo + hi) // 2
            handle.seek(mid * size)
            record = handle.read(size)
            if record < packed:
                lo = mid + 1
            elif record > packed:
                hi = mid
            else:
                return True
        return False

    # -- appending ------------------------------------------------------

    def append(
        self, encoded: Tuple[int, ...], parent: int, token: int
    ) -> int:
        """Record a new state; its entry index.

        The RAM budget is enforced *before* the insert, so the freshly
        appended key always sits in its shard's RAM set -- which is
        what lets :meth:`pop_last` retract it without touching disk.
        """
        if self._ram_total >= self.ram_cap:
            self._flush()
        shard = hash(encoded) % self.shards
        self._ram[shard].add(encoded)
        self._ram_total += 1
        self._entries.write(
            self._entry_struct.pack(*encoded, parent, token)
        )
        index = self.count
        self.count += 1
        return index

    def pop_last(self, encoded: Tuple[int, ...]) -> None:
        """Retract the most recent append (the budget-overflow drop).

        The stale record bytes stay in the entry log -- readers go by
        ``count``, never by file size -- mirroring the stale hash slot
        the compiled backend leaves behind on the same code path.
        """
        shard = hash(encoded) % self.shards
        self._ram[shard].discard(encoded)
        self._ram_total -= 1
        self.count -= 1

    def _flush(self) -> None:
        """Merge every shard's RAM set into its sorted disk run.

        Streaming merge: the old run is read sequentially against the
        sorted fresh keys (``heapq.merge``), so flushing never holds
        more than one shard's fresh keys plus O(1) run records in RAM.
        Runs contain no duplicates by construction -- membership is
        checked before every append.
        """
        self.flushes += 1
        size = self._key_struct.size
        pack = self._key_struct.pack
        for shard in range(self.shards):
            fresh = self._ram[shard]
            if not fresh:
                continue
            sorted_new = sorted(pack(*key) for key in fresh)
            final = os.path.join(
                self.directory, "visited-{}.run".format(shard)
            )
            scratch = final + ".tmp"
            with open(scratch, "wb") as out:
                old_path = self._run_paths[shard]
                if old_path is None:
                    out.writelines(sorted_new)
                else:
                    with open(old_path, "rb") as old:
                        old_records = iter(
                            lambda: old.read(size), b""
                        )
                        out.writelines(
                            heapq.merge(old_records, sorted_new)
                        )
            handle = self._run_handles[shard]
            if handle is not None:
                handle.close()
                self._run_handles[shard] = None
            os.replace(scratch, final)
            self._run_paths[shard] = final
            self._run_counts[shard] += len(fresh)
            fresh.clear()
        self._ram_total = 0

    # -- reading back ---------------------------------------------------

    def _ensure_reader(self) -> Any:
        self._entries.flush()
        if self._reader is None:
            self._reader = open(self._entries_path, "rb")
        return self._reader

    def entry(self, index: int) -> Tuple[Tuple[int, ...], int, int]:
        """``(encoded state, parent index, token)`` of one log entry."""
        reader = self._ensure_reader()
        size = self._entry_struct.size
        reader.seek(index * size)
        fields = self._entry_struct.unpack(reader.read(size))
        return fields[: self.n_slots], fields[-2], fields[-1]

    def iter_layer(
        self, start: int, stop: int
    ) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Stream ``(index, encoded state)`` over one entry range.

        Chunked sequential reads; safe to interleave with appends (the
        range ``[start, stop)`` is fully flushed before streaming
        begins, and appends only ever extend the file).
        """
        reader = self._ensure_reader()
        size = self._entry_struct.size
        iter_unpack = self._entry_struct.iter_unpack
        n = self.n_slots
        index = start
        reader.seek(start * size)
        while index < stop:
            want = min(_LAYER_CHUNK, stop - index)
            data = reader.read(want * size)
            for fields in iter_unpack(data):
                yield index, fields[:n]
                index += 1

    def iter_keys(self) -> Iterator[Tuple[int, ...]]:
        """Stream every live entry's encoded state, insertion order."""
        for _, encoded in self.iter_layer(0, self.count):
            yield encoded

    def close(self) -> None:
        """Release file handles and delete owned scratch files."""
        self._entries.close()
        if self._reader is not None:
            self._reader.close()
        for handle in self._run_handles:
            if handle is not None:
                handle.close()
        if self._cleanup is not None:
            self._cleanup()


class DiskStateSet(AbstractSet):
    """Lazy set view over a :class:`DiskStore`'s entry log.

    Sized and probe-able without decoding anything (the disk analogue
    of the accel backend's ``LazyStateSet``); the real decoded set is
    materialized only on first iteration or whole-set comparison.  The
    view keeps the store -- and with it the scratch directory -- alive.
    """

    __slots__ = ("_store", "_encoder", "_count", "_materialized")

    def __init__(self, store: DiskStore, encoder: StateEncoder):
        self._store = store
        self._encoder = encoder
        self._count = store.count
        self._materialized: Optional[Set[State]] = None

    def _states(self) -> Set[State]:
        if self._materialized is None:
            decode = self._encoder.decode
            self._materialized = {
                decode(encoded) for encoded in self._store.iter_keys()
            }
        return self._materialized

    def __len__(self) -> int:
        # Entries are distinct by construction (membership is checked
        # before every append) and the encoding is a bijection.
        return self._count

    def __iter__(self) -> Iterator[State]:
        return iter(self._states())

    def __contains__(self, state: object) -> bool:
        if self._materialized is not None:
            return state in self._materialized
        encoder = self._encoder
        if not isinstance(state, tuple) or len(state) != encoder.n:
            return False
        encoded = []
        for slot, slice_state in enumerate(state):
            # Non-mutating probe: an unknown slice was never visited.
            try:
                sid = encoder.slice_tables[slot].get(slice_state)
            except TypeError:  # unhashable probe value
                return False
            if sid is None:
                return False
            encoded.append(sid)
        return self._store.contains(tuple(encoded))

    def __repr__(self) -> str:
        return "DiskStateSet({} states)".format(self._count)


def explore_disk(
    automaton: Any,
    environment: Environment = None,
    invariant: Invariant = None,
    max_states: int = 50_000,
    max_depth: int = 10_000,
    validate: bool = False,
    initial_state: Optional[State] = None,
    encoder: Optional[StateEncoder] = None,
    ram_cap: Optional[int] = None,
    directory: Optional[str] = None,
    shards: int = 16,
) -> ExplorationResult:
    """Bounded BFS with disk-backed visited set and frontier.

    Same contract as the engine (expansion order, budget semantics,
    layer-minimal counterexamples), but exploration is bounded by disk,
    not RAM: at most ``ram_cap`` encoded keys are resident at once
    (default from ``$REPRO_DISK_RAM_CAP``, else
    ``DEFAULT_RAM_CAP``), everything else spills to sorted runs in
    ``directory`` (a self-cleaning temporary directory by default).

    Compositions only -- the store's record format is the flat slice
    encoding.
    """
    if not isinstance(automaton, Composition):
        raise ValueError(
            "disk-backed exploration requires a Composition (the store "
            "records flat slice encodings); use the default engine"
        )
    if ram_cap is None:
        ram_cap = int(
            os.environ.get("REPRO_DISK_RAM_CAP", DEFAULT_RAM_CAP)
        )
    if encoder is None:
        encoder = StateEncoder(automaton)
    search = _CompositionSearch(automaton, encoder=encoder)
    signature = automaton.signature if validate else None
    start = (
        initial_state
        if initial_state is not None
        else automaton.initial_state()
    )
    if invariant is not None and not invariant(start):
        return ExplorationResult({start}, False, (start, ()))
    store = DiskStore(
        encoder.n, directory=directory, ram_cap=ram_cap, shards=shards
    )
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("explore.states", 1)  # the start state
    store.append(encoder.encode(start), -1, -1)
    layer_start, layer_end = 0, 1
    depth = 0
    truncated = False
    decode = encoder.decode
    expand = search.expand

    def trace(index: int) -> Tuple:
        actions = []
        while True:
            _, parent, token = store.entry(index)
            if parent < 0:
                break
            actions.append(encoder.action_of_token[token])
            index = parent
        actions.reverse()
        return tuple(actions)

    def totals() -> None:
        if not tracer.enabled:
            return
        tracer.count(
            "explore.slices_interned", encoder.slices_interned()
        )
        tracer.count(
            "explore.actions_interned", len(encoder.action_of_token)
        )
        tracer.count("explore.disk_flushes", store.flushes)

    while layer_start < layer_end:
        if depth >= max_depth:
            truncated = True
            break
        with tracer.span(
            "explore.layer", depth=depth, width=layer_end - layer_start
        ):
            fired = 0
            extra: Iterable[Action]
            for index, encoded in store.iter_layer(
                layer_start, layer_end
            ):
                if environment is not None:
                    current = decode(encoded)
                    extra = list(environment(current))
                    if signature is not None:
                        for action in extra:
                            if signature.is_input(
                                action
                            ) and not automaton.transitions(
                                current, action
                            ):
                                raise InputEnablednessError(
                                    automaton, current, action
                                )
                else:
                    extra = ()
                for token, succ_enc in expand(encoded, extra):
                    fired += 1
                    if store.contains(succ_enc):
                        continue
                    succ_index = store.append(succ_enc, index, token)
                    if invariant is not None:
                        real = decode(succ_enc)
                        if not invariant(real):
                            totals()
                            return ExplorationResult(
                                DiskStateSet(store, encoder),
                                truncated,
                                (real, trace(succ_index)),
                            )
                    if store.count > max_states:
                        # Budget spent: retract and stop the whole
                        # search at once (the engine contract).
                        store.pop_last(succ_enc)
                        truncated = True
                        break
                if truncated:
                    break
            if tracer.enabled:
                tracer.count("explore.transitions", fired)
                tracer.count(
                    "explore.states", store.count - layer_end
                )
                tracer.gauge(
                    "explore.frontier", store.count - layer_end
                )
        if truncated:
            break
        layer_start, layer_end = layer_end, store.count
        depth += 1
    totals()
    return ExplorationResult(DiskStateSet(store, encoder), truncated)
