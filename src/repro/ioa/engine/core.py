"""High-throughput bounded BFS over I/O automata.

This is the serial heart of the exploration engine behind
:func:`repro.ioa.explorer.explore`.  It returns exactly what the naive
breadth-first explorer returns -- the same reachable-state set, the
same ``truncated`` flag, and a shortest (layer-minimal) counterexample
-- but restructures the search around three ideas:

* **Trace-free frontiers.**  The naive explorer carries the full
  ``(action, ...)`` trace tuple in every frontier entry, an O(depth)
  copy per enqueued state that dominates allocation on deep runs.  The
  engine instead records a parent-pointer map ``state -> (predecessor,
  action)`` (one dict slot per state) and reconstructs the
  counterexample by walking the pointers only when a violation is
  actually found.

* **State interning.**  For compositions, every component slice is
  assigned a dense integer id (:class:`.interning.InternTable`) and the
  search runs over *encoded* states -- tuples of ints -- so ``seen``
  probes hash machine integers instead of nested dataclasses.  The
  decode tables double as the canonical-state store: decoded tuples
  share slice objects, giving identity fast paths to any later
  equality check.

* **Memoized stepping.**  Per-slot caches map (slice id, action token)
  to successor slice ids and slice id to the slice's enabled local
  actions, so the cross-product step never re-asks a component about a
  slice value it has already answered for.  Most steps touch 1-2 of
  the components; every other slice's answers come from the caches.

Budget semantics (documented contract): when the ``max_states`` budget
is hit the search stops *immediately* -- it breaks out of both the
successor and the frontier loops -- rather than grinding through the
remaining successors of the current layer.  Every state counted in
``states`` was invariant-checked when it was first reached, including
the queued-but-unexpanded frontier tail, so a truncated ``ok`` result
still certifies every reported state.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...obs import RunReport

from ...obs import current_tracer
from ..actions import Action
from ..automaton import Automaton, State
from ..composition import Composition
from .encoding import StateEncoder

Environment = Optional[Callable[[State], Iterable[Action]]]
Invariant = Optional[Callable[[State], bool]]


class InputEnablednessError(RuntimeError):
    """An environment-offered input action was not enabled (Section 2.2).

    Raised only in ``validate=True`` debug runs: input-enabledness demands
    that every input action be enabled in every state, so an exploration
    that offers an input with no transition has found a broken automaton
    (this is :meth:`~repro.ioa.automaton.Automaton.check_input_enabled`
    wired into the engine's expansion loop).
    """

    def __init__(self, automaton: Automaton, state: State, action: Action):
        super().__init__(
            f"{automaton.name}: input action {action} is not enabled in "
            f"reachable state {state!r} (automaton is not input-enabled)"
        )
        self.automaton = automaton
        self.state = state
        self.action = action


@dataclass
class ExplorationResult:
    """Outcome of a bounded exploration.

    ``states`` is the set of distinct reachable states visited -- a
    plain ``set`` from the Python backends, or a lazy set view
    (:class:`~repro.ioa.engine.accel.LazyStateSet`,
    :class:`~repro.ioa.engine.diskstore.DiskStateSet`) from backends
    whose states would be expensive to decode eagerly; every view
    supports ``len``/``in``/iteration/equality like a real set.
    ``truncated`` is True when the state or depth budget was exhausted
    before the frontier emptied; ``violation`` carries the first
    invariant violation found, as a (state, trace) pair.
    """

    states: AbstractSet[State]
    truncated: bool
    violation: Optional[Tuple[State, Tuple[Action, ...]]] = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def report(self, duration_s: float = 0.0) -> "RunReport":
        """This result as the unified :class:`~repro.obs.RunReport`."""
        from ...obs import STATUS_OK, STATUS_VIOLATION, RunReport

        details: Dict[str, object] = {"truncated": self.truncated}
        if self.violation is not None:
            _, trace = self.violation
            details["counterexample"] = [str(action) for action in trace]
        return RunReport(
            command="explore",
            status=STATUS_OK if self.ok else STATUS_VIOLATION,
            counters={"explore.states": len(self.states)},
            duration_s=duration_s,
            details=details,
        )


def explore_engine(
    automaton: Automaton,
    environment: Environment = None,
    invariant: Invariant = None,
    max_states: int = 50_000,
    max_depth: int = 10_000,
    validate: bool = False,
    initial_state: Optional[State] = None,
    encoder: Optional[StateEncoder] = None,
) -> ExplorationResult:
    """Serial engine entry point (see module docstring).

    Compositions take the interned fast path; any other automaton gets
    the generic trace-free BFS.  ``validate=True`` additionally checks,
    at every expanded state, that each environment-offered input action
    is enabled, raising :class:`InputEnablednessError` otherwise.
    ``initial_state`` starts the search from the given (possibly
    unreachable) state instead of the automaton's own initial state.
    ``encoder`` lets a caller share a pre-warmed :class:`StateEncoder`
    (ids and stepping memos) with this search.
    """
    if isinstance(automaton, Composition):
        return _CompositionSearch(automaton, encoder=encoder).run(
            environment,
            invariant,
            max_states,
            max_depth,
            validate,
            initial_state,
        )
    return _explore_generic(
        automaton,
        environment,
        invariant,
        max_states,
        max_depth,
        validate,
        initial_state,
    )


# ----------------------------------------------------------------------
# Generic trace-free BFS (any automaton)
# ----------------------------------------------------------------------


def _reconstruct(parents: Dict, state) -> Tuple[Action, ...]:
    """Walk parent pointers back to the start, returning the action trace."""
    actions: List[Action] = []
    cursor = state
    while True:
        entry = parents[cursor]
        if entry is None:
            break
        cursor, action = entry
        actions.append(action)
    actions.reverse()
    return tuple(actions)


def _explore_generic(
    automaton: Automaton,
    environment: Environment,
    invariant: Invariant,
    max_states: int,
    max_depth: int,
    validate: bool = False,
    initial_state: Optional[State] = None,
) -> ExplorationResult:
    start = (
        initial_state
        if initial_state is not None
        else automaton.initial_state()
    )
    signature = automaton.signature if validate else None
    if invariant is not None and not invariant(start):
        return ExplorationResult({start}, False, (start, ()))
    # parents doubles as the seen set: state -> (predecessor, action),
    # None for the start state.
    parents: Dict[State, Optional[Tuple[State, Action]]] = {start: None}
    layer: List[State] = [start]
    depth = 0
    truncated = False
    transitions = automaton.transitions
    enabled = automaton.enabled_local_actions
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("explore.states", 1)  # the start state
    while layer:
        if depth >= max_depth:
            truncated = True
            break
        # Instrumentation is per-layer, never per-state: one span plus
        # three aggregate emissions per BFS layer (no-ops when tracing
        # is off), so the hot successor loop stays untouched.
        with tracer.span("explore.layer", depth=depth, width=len(layer)):
            next_layer: List[State] = []
            fired = 0
            for state in layer:
                actions: List[Action] = list(enabled(state))
                if environment is not None:
                    offered = list(environment(state))
                    if signature is not None:
                        for action in offered:
                            if signature.is_input(
                                action
                            ) and not transitions(state, action):
                                raise InputEnablednessError(
                                    automaton, state, action
                                )
                    actions.extend(offered)
                for action in actions:
                    for successor in transitions(state, action):
                        fired += 1
                        if successor in parents:
                            continue
                        parents[successor] = (state, action)
                        if invariant is not None and not invariant(
                            successor
                        ):
                            return ExplorationResult(
                                set(parents),
                                truncated,
                                (
                                    successor,
                                    _reconstruct(parents, successor),
                                ),
                            )
                        if len(parents) > max_states:
                            # Budget spent: stop the whole search at once
                            # (see module docstring for the contract).
                            del parents[successor]
                            truncated = True
                            break
                        next_layer.append(successor)
                    if truncated:
                        break
                if truncated:
                    break
            if tracer.enabled:
                tracer.count("explore.transitions", fired)
                tracer.count("explore.states", len(next_layer))
                tracer.gauge("explore.frontier", len(next_layer))
        if truncated:
            break
        layer = next_layer
        depth += 1
    return ExplorationResult(set(parents), truncated)


# ----------------------------------------------------------------------
# Interned fast path for compositions
# ----------------------------------------------------------------------


class _CompositionSearch:
    """BFS over interned (encoded) states of a :class:`Composition`.

    Encoded states are tuples of per-slot slice ids.  The mapping and
    the stepping caches live in a shared :class:`StateEncoder` -- one
    per search, or one handed in by a caller that wants to reuse the
    ids (the parallel frontier and the accelerated backend do) --
    mapping ``sid`` to the slice's enabled (token, owners) pairs and
    ``(sid, token)`` to the successor slice ids, so a slice value is
    only ever stepped once per action no matter how many composed
    states contain it.
    """

    def __init__(
        self,
        composition: Composition,
        encoder: Optional[StateEncoder] = None,
    ):
        self.composition = composition
        self.n = len(composition.components)
        self.encoder = encoder if encoder is not None else StateEncoder(
            composition
        )

    # -- encoding (delegated to the shared encoder) ---------------------

    def encode(self, state: State) -> Tuple[int, ...]:
        return self.encoder.encode(state)

    def decode(self, encoded: Tuple[int, ...]) -> State:
        return self.encoder.decode(encoded)

    def _token(self, action: Action) -> int:
        return self.encoder.token(action)

    def _enabled_pairs(
        self, slot: int, sid: int
    ) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
        return self.encoder.enabled_pairs(slot, sid)

    def _successor_sids(
        self, slot: int, sid: int, token: int
    ) -> Tuple[int, ...]:
        return self.encoder.successor_sids(slot, sid, token)

    # -- expansion ------------------------------------------------------

    def expand(
        self, encoded: Tuple[int, ...], extra_actions: Iterable[Action]
    ) -> Iterable[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(action token, successor encoded state)`` in the same
        deterministic order the naive explorer visits successors."""
        encoder = self.encoder
        pairs: List[Tuple[int, Tuple[int, ...]]] = []
        for slot in range(self.n):
            pairs.extend(encoder.enabled_pairs(slot, encoded[slot]))
        for action in extra_actions:
            token = encoder.token(action)
            pairs.append((token, encoder.owners_of_token[token]))
        for token, owners in pairs:
            if not owners:
                continue
            if len(owners) == 1:
                slot = owners[0]
                for sid in self._successor_sids(slot, encoded[slot], token):
                    yield token, encoded[:slot] + (sid,) + encoded[slot + 1 :]
                continue
            per_owner: List[Tuple[int, ...]] = []
            enabled_everywhere = True
            for slot in owners:
                successors = self._successor_sids(
                    slot, encoded[slot], token
                )
                if not successors:
                    enabled_everywhere = False
                    break
                per_owner.append(successors)
            if not enabled_everywhere:
                continue
            for combo in product(*per_owner):
                successor = list(encoded)
                for position, slot in enumerate(owners):
                    successor[slot] = combo[position]
                yield token, tuple(successor)

    # -- search ---------------------------------------------------------

    def run(
        self,
        environment: Environment,
        invariant: Invariant,
        max_states: int,
        max_depth: int,
        validate: bool = False,
        initial_state: Optional[State] = None,
    ) -> ExplorationResult:
        signature = self.composition.signature if validate else None
        start = (
            initial_state
            if initial_state is not None
            else self.composition.initial_state()
        )
        if invariant is not None and not invariant(start):
            return ExplorationResult({start}, False, (start, ()))
        tracer = current_tracer()
        if tracer.enabled:
            self._install_memo_counters()
            tracer.count("explore.states", 1)  # the start state
        start_enc = self.encode(start)
        # Encoded parent pointers: enc -> (predecessor enc, action token).
        parents: Dict[Tuple[int, ...], Optional[Tuple]] = {start_enc: None}
        layer: List[Tuple[int, ...]] = [start_enc]
        depth = 0
        truncated = False
        decode = self.decode
        expand = self.expand
        while layer:
            if depth >= max_depth:
                truncated = True
                break
            # One span + aggregate counters per layer (no-op when
            # tracing is off); the per-state expansion loop is untouched.
            with tracer.span(
                "explore.layer", depth=depth, width=len(layer)
            ):
                next_layer: List[Tuple[int, ...]] = []
                fired = 0
                extra: Iterable[Action]
                for encoded in layer:
                    if environment is not None:
                        current = decode(encoded)
                        extra = list(environment(current))
                        if signature is not None:
                            for action in extra:
                                if signature.is_input(
                                    action
                                ) and not self.composition.transitions(
                                    current, action
                                ):
                                    raise InputEnablednessError(
                                        self.composition, current, action
                                    )
                    else:
                        extra = ()
                    for token, succ_enc in expand(encoded, extra):
                        fired += 1
                        if succ_enc in parents:
                            continue
                        parents[succ_enc] = (encoded, token)
                        if invariant is not None:
                            real = decode(succ_enc)
                            if not invariant(real):
                                self._emit_totals(tracer)
                                return ExplorationResult(
                                    self._decode_all(parents),
                                    truncated,
                                    (real, self._trace(parents, succ_enc)),
                                )
                        if len(parents) > max_states:
                            # Budget spent: break out of every loop at once
                            # (module docstring documents the contract).
                            del parents[succ_enc]
                            truncated = True
                            break
                        next_layer.append(succ_enc)
                    if truncated:
                        break
                if tracer.enabled:
                    tracer.count("explore.transitions", fired)
                    tracer.count("explore.states", len(next_layer))
                    tracer.gauge("explore.frontier", len(next_layer))
            if truncated:
                break
            layer = next_layer
            depth += 1
        self._emit_totals(tracer)
        return ExplorationResult(self._decode_all(parents), truncated)

    # -- observability (only active under an enabled tracer) ------------

    def _install_memo_counters(self) -> None:
        """Shadow the cached-query methods with counting wrappers.

        Installed per-instance and only when tracing is on, so the
        tracing-off hot path carries no extra branches or increments.
        """
        self._step_queries = 0
        self._step_hits = 0
        inner = self._successor_sids
        steps_by_sid = self.encoder.steps_by_sid

        def counting(slot: int, sid: int, token: int) -> Tuple[int, ...]:
            self._step_queries += 1
            if token in steps_by_sid[slot][sid]:
                self._step_hits += 1
            return inner(slot, sid, token)

        self._successor_sids = counting  # type: ignore[method-assign]

    def _emit_totals(self, tracer) -> None:
        """Counters/gauges summarizing the interning and memo caches."""
        if not tracer.enabled:
            return
        tracer.count(
            "explore.slices_interned", self.encoder.slices_interned()
        )
        tracer.count(
            "explore.actions_interned", len(self.encoder.action_of_token)
        )
        queries = getattr(self, "_step_queries", 0)
        if queries:
            tracer.gauge(
                "explore.memo_hit_rate", self._step_hits / queries
            )
            tracer.count("explore.memo_queries", queries)
            tracer.count("explore.memo_hits", self._step_hits)

    def _trace(
        self, parents: Dict, encoded: Tuple[int, ...]
    ) -> Tuple[Action, ...]:
        actions: List[Action] = []
        cursor = encoded
        while True:
            entry = parents[cursor]
            if entry is None:
                break
            cursor, token = entry
            actions.append(self.encoder.action_of_token[token])
        actions.reverse()
        return tuple(actions)

    def _decode_all(self, parents: Dict) -> Set[State]:
        decode = self.decode
        return {decode(encoded) for encoded in parents}
