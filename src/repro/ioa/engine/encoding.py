"""Flat-encoded state representation for composed automata.

The exploration engine's hot loop must never touch nested dataclass
states: a composed state is encoded as a flat tuple of per-slot slice
ids (dense ints assigned by per-slot :class:`.interning.InternTable`\\ s)
or, when every slot fits its bit budget, packed into a *single* machine
integer.  :class:`StateEncoder` owns that mapping plus the per-slice
successor memo tables keyed by ``(slice id, action token)``, so every
backend of :func:`repro.ioa.explorer.explore` -- the pure-Python
engine, the parallel frontier and the compiled accelerated core --
shares one encoding and one set of stepping caches.

What the encoding preserves (and what it does not): encoding is a
bijection between the composed states seen so far and their flat
codes -- ``decode(encode(s)) == s`` and equal states always receive
equal codes, so reachable-state sets, invariant verdicts and
counterexample traces are invariant under the representation.  It does
*not* preserve any ordering of states (ids are first-come dense) and it
is process-local: codes must never cross process boundaries or runs
(the same state can receive different ids in a different exploration
order).

:class:`StreamEncoder` is the cheap cousin used on execution streams
(the fuzz harness): consecutive states of a run share almost all their
slice *objects*, so an ``id()``-based memo turns per-state deep hashing
into a few pointer lookups.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..actions import Action
from ..automaton import State
from ..composition import Composition
from .interning import InternTable

__all__ = [
    "EncodingOverflow",
    "StateEncoder",
    "StreamEncoder",
]

#: Total bit budget of a packed state.  64 keeps the key a single
#: machine word in the compiled backend's tables.
PACK_BITS = 64


class EncodingOverflow(RuntimeError):
    """A slot outgrew its packed bit budget.

    Raised by :meth:`StateEncoder.pack` when some slice table holds
    more distinct values than the slot's bit width can address.  The
    tuple encoding is unaffected (it has no width limit); callers on
    the packed fast path catch this and fall back to the pure-Python
    engine.
    """


class StateEncoder:
    """Encoder between composed states and flat int codes.

    One encoder per exploration: it owns the per-slot slice
    :class:`InternTable`\\ s, the action-token table and the stepping
    memos, so any number of backends can share the same ids.

    Flat forms:

    * ``encode(state)`` -> tuple of per-slot slice ids (unbounded);
    * ``pack(encoded)`` -> one int, ``bits_per_slot`` bits per slot
      (raises :class:`EncodingOverflow` past the budget).
    """

    __slots__ = (
        "composition",
        "components",
        "n",
        "family_owners",
        "slice_tables",
        "enabled_by_sid",
        "steps_by_sid",
        "token_of_action",
        "action_of_token",
        "owners_of_token",
        "bits_per_slot",
        "shifts",
        "slot_capacity",
    )

    def __init__(self, composition: Composition, pack_bits: int = PACK_BITS):
        self.composition = composition
        self.components = composition.components
        self.n = len(self.components)
        self.family_owners = composition.family_owners
        self.slice_tables: List[InternTable] = [
            InternTable() for _ in range(self.n)
        ]
        # sid -> tuple[(token, owners)] of enabled local actions (lazy).
        self.enabled_by_sid: List[
            List[Optional[Tuple[Tuple[int, Tuple[int, ...]], ...]]]
        ] = [[] for _ in range(self.n)]
        # sid -> {token: tuple[successor sid, ...]} (lazy per token).
        self.steps_by_sid: List[List[Dict[int, Tuple[int, ...]]]] = [
            [] for _ in range(self.n)
        ]
        # Action interning: token ids are dense.
        self.token_of_action: Dict[Action, int] = {}
        self.action_of_token: List[Action] = []
        self.owners_of_token: List[Tuple[int, ...]] = []
        # Packed form: an equal split of the bit budget across slots.
        self.bits_per_slot = max(1, pack_bits // max(1, self.n))
        self.shifts: Tuple[int, ...] = tuple(
            slot * self.bits_per_slot for slot in range(self.n)
        )
        self.slot_capacity = 1 << self.bits_per_slot

    # -- slice and action interning -------------------------------------

    def intern_slice(self, slot: int, slice_state: State) -> int:
        """The dense id of one component slice, growing the side tables."""
        sid = self.slice_tables[slot].intern(slice_state)
        if sid == len(self.enabled_by_sid[slot]):
            self.enabled_by_sid[slot].append(None)
            self.steps_by_sid[slot].append({})
        return sid

    def token(self, action: Action) -> int:
        """The dense token id of an action (owners resolved on first sight)."""
        token = self.token_of_action.get(action)
        if token is None:
            token = len(self.action_of_token)
            self.token_of_action[action] = token
            self.action_of_token.append(action)
            self.owners_of_token.append(
                tuple(self.family_owners.get(action.key, ()))
            )
        return token

    # -- encoding -------------------------------------------------------

    def encode(self, state: State) -> Tuple[int, ...]:
        """The flat tuple code of a composed state."""
        return tuple(
            self.intern_slice(slot, slice_state)
            for slot, slice_state in enumerate(state)
        )

    def decode(self, encoded: Sequence[int]) -> State:
        """The composed state behind a flat tuple code.

        Decoded tuples share their slice objects with the intern
        tables, so equality checks between decoded states hit
        CPython's per-element identity fast path.
        """
        return tuple(
            table.values[sid]
            for table, sid in zip(self.slice_tables, encoded)
        )

    def pack(self, encoded: Sequence[int]) -> int:
        """The single-int code of a flat tuple (packed mixed-radix).

        Raises :class:`EncodingOverflow` when any slice id exceeds its
        slot's bit budget -- the signal for packed-path callers to fall
        back to the tuple representation.
        """
        key = 0
        capacity = self.slot_capacity
        for shift, sid in zip(self.shifts, encoded):
            if sid >= capacity:
                raise EncodingOverflow(
                    f"slice id {sid} does not fit the "
                    f"{self.bits_per_slot}-bit slot budget "
                    f"({self.n} slots in {self.bits_per_slot * self.n} bits)"
                )
            key |= sid << shift
        return key

    def unpack(self, key: int) -> Tuple[int, ...]:
        """The flat tuple behind a packed single-int code."""
        mask = self.slot_capacity - 1
        return tuple((key >> shift) & mask for shift in self.shifts)

    def encode_packed(self, state: State) -> int:
        """``pack(encode(state))``."""
        return self.pack(self.encode(state))

    def decode_packed(self, key: int) -> State:
        """``decode(unpack(key))``."""
        mask = self.slot_capacity - 1
        tables = self.slice_tables
        return tuple(
            tables[slot].values[(key >> shift) & mask]
            for slot, shift in enumerate(self.shifts)
        )

    # -- memoized component stepping ------------------------------------

    def enabled_pairs(
        self, slot: int, sid: int
    ) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
        """``(token, owners)`` pairs of the slice's enabled local actions."""
        pairs = self.enabled_by_sid[slot][sid]
        if pairs is None:
            slice_state = self.slice_tables[slot].values[sid]
            fresh: List[Tuple[int, Tuple[int, ...]]] = []
            for action in self.components[slot].enabled_local_actions(
                slice_state
            ):
                token = self.token(action)
                fresh.append((token, self.owners_of_token[token]))
            pairs = tuple(fresh)
            self.enabled_by_sid[slot][sid] = pairs
        return pairs

    def successor_sids(
        self, slot: int, sid: int, token: int
    ) -> Tuple[int, ...]:
        """Successor slice ids of ``(slot, sid)`` under action ``token``.

        This is the per-slice successor memo: a slice value is stepped
        at most once per action token no matter how many composed
        states contain it or how many backends ask.
        """
        steps = self.steps_by_sid[slot][sid]
        successors = steps.get(token)
        if successors is None:
            table = self.slice_tables[slot]
            values = table.values
            ids = table._ids
            raw = self.components[slot].transitions(
                values[sid], self.action_of_token[token]
            )
            # Inlined intern_slice: this is the warmup hot path (one
            # call per distinct (slice, action) pair, straight off the
            # compiled backend's cache-miss callback).
            fresh = []
            enabled_side = self.enabled_by_sid[slot]
            steps_side = self.steps_by_sid[slot]
            for post in raw:
                post_sid = ids.get(post)
                if post_sid is None:
                    post_sid = len(values)
                    ids[post] = post_sid
                    values.append(post)
                    enabled_side.append(None)
                    steps_side.append({})
                fresh.append(post_sid)
            successors = tuple(fresh)
            steps[token] = successors
        return successors

    # -- statistics -----------------------------------------------------

    def slices_interned(self) -> int:
        """Total distinct slice values across all slots."""
        return sum(len(table) for table in self.slice_tables)


class StreamEncoder:
    """Identity-memoized encoder for execution-state streams.

    Consecutive states of one simulated run share almost every slice
    *object* (a step rebuilds only the 1-2 slices its action owns), so
    the fuzz harness can fingerprint a whole execution with a handful
    of deep hashes: each slice object's id is memoized to its slice id
    on first sight, and every later state containing the same object
    encodes with pointer lookups only.

    The memo keeps a reference to every memoized object
    (``_keepalive``), so ids cannot be recycled while the encoder is
    alive.  Process-local, like all encodings.
    """

    __slots__ = ("_tables", "_id_memo", "_keepalive")

    def __init__(self) -> None:
        self._tables: List[InternTable] = []
        self._id_memo: List[Dict[int, int]] = []
        self._keepalive: List[Any] = []

    def key_of(self, state: Sequence[Any]) -> Tuple[int, ...]:
        """The flat tuple code of one state of the stream."""
        width = len(state)
        while len(self._tables) < width:
            self._tables.append(InternTable())
            self._id_memo.append({})
        encoded = []
        for slot, slice_state in enumerate(state):
            memo = self._id_memo[slot]
            ident = id(slice_state)
            sid = memo.get(ident)
            if sid is None:
                sid = self._tables[slot].intern(slice_state)
                memo[ident] = sid
                self._keepalive.append(slice_state)
            encoded.append(sid)
        return tuple(encoded)

    def distinct(self, states: Iterable[Sequence[Any]]) -> List[Any]:
        """First-occurrence distinct states of a stream.

        Equality is decided by the encoding (value equality via the
        intern tables), but the common case -- an unchanged slice
        object -- never re-hashes anything.
        """
        seen = set()
        out: List[Any] = []
        for state in states:
            key = self.key_of(state)
            if key not in seen:
                seen.add(key)
                out.append(state)
        return out
