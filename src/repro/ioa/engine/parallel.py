"""Parallel layer expansion for the exploration engine.

Each BFS layer is embarrassingly parallel: expanding one state touches
only that state, so a layer can be sharded across a ``multiprocessing``
pool and the per-layer results merged by the parent.  The merge is a
barrier -- layer ``d+1`` is not started until layer ``d`` is fully
merged -- so BFS layer structure, and with it counterexample
minimality (shortest-by-layers), is preserved exactly.

Determinism: workers return successor edges in the order the serial
engine would visit them, chunks are merged in layer order, and the
parent alone applies the seen-set / invariant / budget logic in that
order.  The result is therefore identical to a serial run.

For compositions the parent's side of the search runs over *encoded*
states (the flat slice-id tuples of
:class:`~repro.ioa.engine.encoding.StateEncoder`): the seen set and
parent pointers hash machine integers instead of nested dataclasses,
narrow layers expand in-process through the engine's memoized stepping
caches, and only the raw states crossing the pool boundary are ever
decoded.  Workers still receive and return raw states -- encodings are
process-local by contract, and fork-inherited intern tables would
diverge from the parent's as both sides grow them.

Workers are forked (the automaton, environment closure and caches are
inherited by the child processes; nothing needs to pickle except the
states and actions flowing through the pool).  Small layers are
expanded in-process -- forking pays off only once a layer is wide
enough to amortize the serialization -- and if no ``fork`` start
method is available the search silently degrades to serial.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ...obs import current_tracer
from ..actions import Action
from ..automaton import Automaton, State
from ..composition import Composition
from .core import (
    Environment,
    ExplorationResult,
    Invariant,
    _CompositionSearch,
    _reconstruct,
)

#: below this layer width, expansion stays in-process
PARALLEL_THRESHOLD = 128

# Worker-side globals, installed by the fork initializer.
_WORKER: Dict[str, object] = {}


def _init_worker(automaton: Automaton, environment: Environment) -> None:
    _WORKER["automaton"] = automaton
    _WORKER["environment"] = environment


def _expand_one(state: State) -> List[Tuple[Action, State]]:
    """All (action, successor) edges of one state, in serial-visit order."""
    automaton: Automaton = _WORKER["automaton"]  # type: ignore[assignment]
    environment: Environment = _WORKER["environment"]  # type: ignore[assignment]
    return _edges(automaton, environment, state)


def _edges(
    automaton: Automaton, environment: Environment, state: State
) -> List[Tuple[Action, State]]:
    actions: List[Action] = list(automaton.enabled_local_actions(state))
    if environment is not None:
        actions.extend(environment(state))
    edges: List[Tuple[Action, State]] = []
    for action in actions:
        for successor in automaton.transitions(state, action):
            edges.append((action, successor))
    return edges


def _make_pool(context, workers, automaton, environment):
    if context is None:
        return None
    try:
        return context.Pool(
            workers,
            initializer=_init_worker,
            initargs=(automaton, environment),
        )
    except OSError:  # pragma: no cover - fork denied
        return None


def explore_parallel(
    automaton: Automaton,
    environment: Environment = None,
    invariant: Invariant = None,
    max_states: int = 50_000,
    max_depth: int = 10_000,
    workers: int = 2,
    parallel_threshold: int = PARALLEL_THRESHOLD,
    initial_state: Optional[State] = None,
) -> ExplorationResult:
    """Layer-sharded BFS; results identical to the serial engine."""
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        context = None
    if isinstance(automaton, Composition):
        return _explore_parallel_composition(
            automaton,
            environment,
            invariant,
            max_states,
            max_depth,
            workers,
            parallel_threshold,
            initial_state,
            context,
        )
    return _explore_parallel_generic(
        automaton,
        environment,
        invariant,
        max_states,
        max_depth,
        workers,
        parallel_threshold,
        initial_state,
        context,
    )


# ----------------------------------------------------------------------
# Encoded merge loop for compositions
# ----------------------------------------------------------------------


def _explore_parallel_composition(
    composition: Composition,
    environment: Environment,
    invariant: Invariant,
    max_states: int,
    max_depth: int,
    workers: int,
    parallel_threshold: int,
    initial_state: Optional[State],
    context,
) -> ExplorationResult:
    """The composition fast path: the parent merges over encoded states.

    Sharded layers are decoded for dispatch and the returned raw edges
    re-encoded on merge (interning order follows merge order, which
    follows layer order -- deterministic); narrow layers never leave
    the encoded domain at all, running through the serial engine's
    memoized ``expand``.
    """
    search = _CompositionSearch(composition)
    encoder = search.encoder
    start = (
        initial_state
        if initial_state is not None
        else composition.initial_state()
    )
    if invariant is not None and not invariant(start):
        return ExplorationResult({start}, False, (start, ()))
    start_enc = encoder.encode(start)
    parents: Dict[Tuple[int, ...], Optional[Tuple]] = {start_enc: None}
    layer: List[Tuple[int, ...]] = [start_enc]
    depth = 0
    truncated = False
    decode = encoder.decode
    pool = None
    try:
        pool = _make_pool(context, workers, composition, environment)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("explore.states", 1)  # the start state
        while layer:
            if depth >= max_depth:
                truncated = True
                break
            sharded = (
                pool is not None and len(layer) >= parallel_threshold
            )
            with tracer.span(
                "explore.layer",
                depth=depth,
                width=len(layer),
                mode="parallel" if sharded else "serial",
            ):
                per_state: Iterable[
                    Iterable[Tuple[int, Tuple[int, ...]]]
                ]
                if sharded:
                    chunksize = max(1, len(layer) // (workers * 4))
                    edge_lists = pool.map(
                        _expand_one,
                        [decode(encoded) for encoded in layer],
                        chunksize,
                    )
                    per_state = (
                        [
                            (
                                encoder.token(action),
                                encoder.encode(successor),
                            )
                            for action, successor in edges
                        ]
                        for edges in edge_lists
                    )
                else:
                    per_state = (
                        search.expand(
                            encoded,
                            ()
                            if environment is None
                            else list(environment(decode(encoded))),
                        )
                        for encoded in layer
                    )
                next_layer: List[Tuple[int, ...]] = []
                fired = 0
                for encoded, pairs in zip(layer, per_state):
                    for token, succ_enc in pairs:
                        fired += 1
                        if succ_enc in parents:
                            continue
                        parents[succ_enc] = (encoded, token)
                        if invariant is not None:
                            real = decode(succ_enc)
                            if not invariant(real):
                                return ExplorationResult(
                                    search._decode_all(parents),
                                    truncated,
                                    (
                                        real,
                                        search._trace(parents, succ_enc),
                                    ),
                                )
                        if len(parents) > max_states:
                            del parents[succ_enc]
                            truncated = True
                            break
                        next_layer.append(succ_enc)
                    if truncated:
                        break
                if tracer.enabled:
                    tracer.count("explore.transitions", fired)
                    tracer.count("explore.states", len(next_layer))
                    tracer.gauge("explore.frontier", len(next_layer))
            if truncated:
                break
            layer = next_layer
            depth += 1
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    return ExplorationResult(search._decode_all(parents), truncated)


# ----------------------------------------------------------------------
# Raw-state merge loop (any other automaton)
# ----------------------------------------------------------------------


def _explore_parallel_generic(
    automaton: Automaton,
    environment: Environment,
    invariant: Invariant,
    max_states: int,
    max_depth: int,
    workers: int,
    parallel_threshold: int,
    initial_state: Optional[State],
    context,
) -> ExplorationResult:
    start = (
        initial_state
        if initial_state is not None
        else automaton.initial_state()
    )
    if invariant is not None and not invariant(start):
        return ExplorationResult({start}, False, (start, ()))
    parents: Dict[State, Optional[Tuple[State, Action]]] = {start: None}
    layer: List[State] = [start]
    depth = 0
    truncated = False
    pool = None
    try:
        pool = _make_pool(context, workers, automaton, environment)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("explore.states", 1)  # the start state
        while layer:
            if depth >= max_depth:
                truncated = True
                break
            sharded = pool is not None and len(layer) >= parallel_threshold
            with tracer.span(
                "explore.layer",
                depth=depth,
                width=len(layer),
                mode="parallel" if sharded else "serial",
            ):
                if sharded:
                    chunksize = max(1, len(layer) // (workers * 4))
                    edge_lists = pool.map(_expand_one, layer, chunksize)
                else:
                    edge_lists = (
                        _edges(automaton, environment, state)
                        for state in layer
                    )
                next_layer: List[State] = []
                fired = 0
                for state, edges in zip(layer, edge_lists):
                    for action, successor in edges:
                        fired += 1
                        if successor in parents:
                            continue
                        parents[successor] = (state, action)
                        if invariant is not None and not invariant(
                            successor
                        ):
                            return ExplorationResult(
                                set(parents),
                                truncated,
                                (
                                    successor,
                                    _reconstruct(parents, successor),
                                ),
                            )
                        if len(parents) > max_states:
                            del parents[successor]
                            truncated = True
                            break
                        next_layer.append(successor)
                    if truncated:
                        break
                if tracer.enabled:
                    tracer.count("explore.transitions", fired)
                    tracer.count("explore.states", len(next_layer))
                    tracer.gauge("explore.frontier", len(next_layer))
            if truncated:
                break
            layer = next_layer
            depth += 1
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    return ExplorationResult(set(parents), truncated)
