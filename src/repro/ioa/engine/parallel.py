"""Parallel layer expansion for the exploration engine.

Each BFS layer is embarrassingly parallel: expanding one state touches
only that state, so a layer can be sharded across a ``multiprocessing``
pool and the per-layer results merged by the parent.  The merge is a
barrier -- layer ``d+1`` is not started until layer ``d`` is fully
merged -- so BFS layer structure, and with it counterexample
minimality (shortest-by-layers), is preserved exactly.

Determinism: workers return successor edges in the order the serial
engine would visit them, chunks are merged in layer order, and the
parent alone applies the seen-set / invariant / budget logic in that
order.  The result is therefore identical to a serial run.

Workers are forked (the automaton, environment closure and caches are
inherited by the child processes; nothing needs to pickle except the
states and actions flowing through the pool).  Small layers are
expanded in-process -- forking pays off only once a layer is wide
enough to amortize the serialization -- and if no ``fork`` start
method is available the search silently degrades to serial.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...obs import current_tracer
from ..actions import Action
from ..automaton import Automaton, State
from .core import (
    Environment,
    ExplorationResult,
    Invariant,
    _reconstruct,
)

#: below this layer width, expansion stays in-process
PARALLEL_THRESHOLD = 128

# Worker-side globals, installed by the fork initializer.
_WORKER: Dict[str, object] = {}


def _init_worker(automaton: Automaton, environment: Environment) -> None:
    _WORKER["automaton"] = automaton
    _WORKER["environment"] = environment


def _expand_one(state: State) -> List[Tuple[Action, State]]:
    """All (action, successor) edges of one state, in serial-visit order."""
    automaton: Automaton = _WORKER["automaton"]  # type: ignore[assignment]
    environment: Environment = _WORKER["environment"]  # type: ignore[assignment]
    return _edges(automaton, environment, state)


def _edges(
    automaton: Automaton, environment: Environment, state: State
) -> List[Tuple[Action, State]]:
    actions: List[Action] = list(automaton.enabled_local_actions(state))
    if environment is not None:
        actions.extend(environment(state))
    edges: List[Tuple[Action, State]] = []
    for action in actions:
        for successor in automaton.transitions(state, action):
            edges.append((action, successor))
    return edges


def explore_parallel(
    automaton: Automaton,
    environment: Environment = None,
    invariant: Invariant = None,
    max_states: int = 50_000,
    max_depth: int = 10_000,
    workers: int = 2,
    parallel_threshold: int = PARALLEL_THRESHOLD,
    initial_state: Optional[State] = None,
) -> ExplorationResult:
    """Layer-sharded BFS; results identical to the serial engine."""
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        context = None
    start = (
        initial_state
        if initial_state is not None
        else automaton.initial_state()
    )
    if invariant is not None and not invariant(start):
        return ExplorationResult({start}, False, (start, ()))
    parents: Dict[State, Optional[Tuple[State, Action]]] = {start: None}
    layer: List[State] = [start]
    depth = 0
    truncated = False
    pool = None
    try:
        if context is not None:
            try:
                pool = context.Pool(
                    workers,
                    initializer=_init_worker,
                    initargs=(automaton, environment),
                )
            except OSError:  # pragma: no cover - fork denied
                pool = None
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("explore.states", 1)  # the start state
        while layer:
            if depth >= max_depth:
                truncated = True
                break
            sharded = pool is not None and len(layer) >= parallel_threshold
            with tracer.span(
                "explore.layer",
                depth=depth,
                width=len(layer),
                mode="parallel" if sharded else "serial",
            ):
                if sharded:
                    chunksize = max(1, len(layer) // (workers * 4))
                    edge_lists = pool.map(_expand_one, layer, chunksize)
                else:
                    edge_lists = (
                        _edges(automaton, environment, state)
                        for state in layer
                    )
                next_layer: List[State] = []
                fired = 0
                for state, edges in zip(layer, edge_lists):
                    for action, successor in edges:
                        fired += 1
                        if successor in parents:
                            continue
                        parents[successor] = (state, action)
                        if invariant is not None and not invariant(
                            successor
                        ):
                            return ExplorationResult(
                                set(parents),
                                truncated,
                                (
                                    successor,
                                    _reconstruct(parents, successor),
                                ),
                            )
                        if len(parents) > max_states:
                            del parents[successor]
                            truncated = True
                            break
                        next_layer.append(successor)
                    if truncated:
                        break
                if tracer.enabled:
                    tracer.count("explore.transitions", fired)
                    tracer.count("explore.states", len(next_layer))
                    tracer.gauge("explore.frontier", len(next_layer))
            if truncated:
                break
            layer = next_layer
            depth += 1
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    return ExplorationResult(set(parents), truncated)
