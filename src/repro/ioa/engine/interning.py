"""State and action interning for the exploration engine.

Composed states are tuples of component slices; during exhaustive
exploration the same slice values recur across thousands of composed
states (a step changes only the 1-2 slices that own its action).  The
engine therefore assigns every distinct slice value a small integer id
and works over *encoded* states -- tuples of ints -- whose hashing and
equality are an order of magnitude cheaper than re-hashing nested
dataclass states on every ``seen``-set probe.

The table also serves as the canonical-state store: the id -> value
list keeps exactly one object per distinct value, so decoded composed
tuples share their slice objects and equality checks between them hit
CPython's per-element identity fast path.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional


class InternTable:
    """Assigns dense integer ids to hashable values, first-come order.

    ``intern`` is the only mutator; ``values[id]`` decodes.  Ids are
    dense (0, 1, 2, ...), so per-id side tables can be plain lists that
    callers extend whenever ``len(table)`` grows.
    """

    __slots__ = ("_ids", "values")

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self.values: List[Any] = []

    def intern(self, value: Hashable) -> int:
        """The id of ``value``, assigning a fresh one on first sight."""
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self.values)
            self._ids[value] = ident
            self.values.append(value)
        return ident

    def get(self, value: Hashable) -> Optional[int]:
        """The id of ``value`` or ``None`` if it was never interned.

        A pure probe: unlike :meth:`intern` it never assigns an id, so
        membership checks (the lazy state-set views use them) cannot
        grow the table as a side effect.
        """
        return self._ids.get(value)

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids
