"""The I/O automaton model (paper, Section 2), as an executable library.

This subpackage is a general-purpose implementation of the Lynch-Tuttle
input/output automaton model: actions and signatures, automata with
input-enabled transition relations and task partitions, executions /
schedules / behaviors, fairness (with an executable form of Lemma 2.1),
composition (Lemmas 2.2-2.4), output hiding, and schedule modules with
the ``solves`` relation.
"""

from .actions import Action, Direction, action_family, directed
from .automaton import Automaton, State, TransitionError
from .composition import Composition
from .execution import (
    ExecutionFragment,
    Schedule,
    external_of,
    inputs_of,
    project_schedule,
    replay_schedule,
)
from .explorer import (
    ExplorationResult,
    InputEnablednessError,
    explore,
    explore_reference,
    reachable_states,
)
from .fairness import (
    FairnessTimeout,
    apply_inputs,
    fair_extension,
    is_fair_finite,
    run_to_quiescence,
)
from .hiding import Hidden, hide
from .patching import PatchError, patch_executions, patch_schedules
from .refinement import RefinementResult, check_refinement
from .schedule_module import (
    ModuleVerdict,
    PropertyResult,
    ScheduleModule,
    check_solves_on,
)
from .signature import (
    ActionSignature,
    FamilyKey,
    SignatureError,
    compatibility_conflicts,
    compose_signatures,
    strongly_compatible,
)

__all__ = [
    "Action",
    "ActionSignature",
    "Automaton",
    "Composition",
    "Direction",
    "ExecutionFragment",
    "ExplorationResult",
    "FairnessTimeout",
    "FamilyKey",
    "Hidden",
    "InputEnablednessError",
    "ModuleVerdict",
    "PatchError",
    "RefinementResult",
    "PropertyResult",
    "Schedule",
    "ScheduleModule",
    "SignatureError",
    "State",
    "TransitionError",
    "action_family",
    "apply_inputs",
    "check_refinement",
    "check_solves_on",
    "compatibility_conflicts",
    "compose_signatures",
    "directed",
    "explore",
    "explore_reference",
    "external_of",
    "fair_extension",
    "hide",
    "inputs_of",
    "patch_executions",
    "patch_schedules",
    "is_fair_finite",
    "project_schedule",
    "reachable_states",
    "replay_schedule",
    "run_to_quiescence",
    "strongly_compatible",
]
