"""The I/O automaton abstraction (paper, Section 2.2).

An I/O automaton has an action signature, states, start states, a
transition relation that is *input-enabled* (every input action is enabled
in every state), and a partition of its locally-controlled actions into
*tasks* used to define fairness.

States are arbitrary hashable immutable Python values.  The transition
relation is exposed through two methods:

* :meth:`Automaton.transitions` -- the set of post-states for a (state,
  action) pair; for input actions this must be non-empty in every state;
* :meth:`Automaton.enabled_local_actions` -- the locally-controlled actions
  enabled in a state (the outputs and internals with a true precondition).

The partition ``part(A)`` is exposed as :meth:`Automaton.task_of`, mapping
each locally-controlled action to a hashable task identifier.  A fair
execution gives fair turns to every task.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable, Iterable, Tuple

from .actions import Action
from .signature import ActionSignature

State = Any


class TransitionError(RuntimeError):
    """Raised when an automaton is asked to take a step it cannot take."""


class Automaton(ABC):
    """Abstract base class for I/O automata.

    Subclasses provide a name, a signature, an initial state, the
    transition relation and (optionally) a task partition.  The default
    partition places all locally-controlled actions in a single task,
    which is what the paper's channels use.
    """

    name: str = "automaton"

    # ------------------------------------------------------------------
    # Interface to implement
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def signature(self) -> ActionSignature:
        """The action signature ``sig(A)``."""

    @abstractmethod
    def initial_state(self) -> State:
        """A start state of the automaton.

        The paper allows a set of start states; automata with genuinely
        nondeterministic starts (the permissive channels, whose delivery
        set is arbitrary) are parameterized by their start choice at
        construction time, so a single state suffices here.
        """

    @abstractmethod
    def transitions(self, state: State, action: Action) -> Tuple[State, ...]:
        """All states ``s`` with ``(state, action, s)`` in ``steps(A)``.

        Must return a non-empty tuple whenever ``action`` is an input
        action of the automaton (input-enabledness).  May return the
        empty tuple for a locally-controlled action whose precondition
        does not hold in ``state``.
        """

    @abstractmethod
    def enabled_local_actions(self, state: State) -> Iterable[Action]:
        """The locally-controlled actions enabled in ``state``."""

    # ------------------------------------------------------------------
    # Partition / tasks
    # ------------------------------------------------------------------

    def task_of(self, action: Action) -> Hashable:
        """The task (equivalence class of ``part(A)``) of a local action.

        The default is a single class containing all locally-controlled
        actions of the automaton.
        """
        return (self.name, "main")

    def tasks(self) -> Iterable[Hashable]:
        """Best-effort enumeration of this automaton's task identifiers.

        Used by fair executors to give turns; automata with richer
        partitions should override.  The default single-task partition
        is returned here.
        """
        return [(self.name, "main")]

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------

    def is_enabled(self, state: State, action: Action) -> bool:
        """True iff some step ``(state, action, s)`` exists."""
        return bool(self.transitions(state, action))

    def step(self, state: State, action: Action) -> State:
        """Take a step, returning the unique (or first) post-state.

        Raises :class:`TransitionError` if the action is not enabled.
        Most automata in this repository are deterministic, in which
        case this is *the* post-state.
        """
        post = self.transitions(state, action)
        if not post:
            raise TransitionError(
                f"{self.name}: action {action} not enabled in state {state!r}"
            )
        return post[0]

    def is_quiescent(self, state: State) -> bool:
        """True iff no locally-controlled action is enabled in ``state``.

        A finite execution ending in a quiescent state is fair (paper,
        Section 2.2: no class of the partition has an enabled action).
        """
        for _ in self.enabled_local_actions(state):
            return False
        return True

    def check_input_enabled(self, state: State, actions: Iterable[Action]) -> bool:
        """Spot-check input-enabledness for the given input actions."""
        for action in actions:
            if self.signature.is_input(action) and not self.is_enabled(
                state, action
            ):
                return False
        return True
