"""Bounded state-space exploration for I/O automata.

Small utilities used by tests and examples to exhaustively explore the
reachable states of an automaton (or composition) under a bounded input
environment.  This provides lightweight model checking of safety
invariants -- e.g. "the alternating-bit protocol never delivers out of
order over any FIFO-channel adversary with at most N in-flight packets".

:func:`explore` is the public entry point; since the exploration-engine
rewrite it delegates to :mod:`repro.ioa.engine`, which keeps trace-free
parent-pointer frontiers, interns composed states, memoizes component
stepping, and (with ``workers > 1``) shards each BFS layer across a
process pool.  The original naive breadth-first search is preserved
verbatim behind ``explore(engine="reference")``: it is the
differential-testing oracle the engine is validated against, and the
ground truth for the result contract.  The old public name
:func:`explore_reference` survives as a thin shim that emits a
:class:`DeprecationWarning`.

Budget contract (both explorers): when the ``max_states`` budget is
reached the search stops immediately -- no further successors of the
current state or layer are expanded.  States that were queued but never
expanded still had the invariant checked when they were first reached,
so every state in ``ExplorationResult.states`` is certified even on a
truncated run.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Iterable, List, Optional, Set

from ..obs import current_tracer
from .actions import Action
from .automaton import Automaton, State
from .engine.core import (
    ExplorationResult,
    InputEnablednessError,
    explore_engine,
)

__all__ = [
    "ExplorationResult",
    "InputEnablednessError",
    "explore",
    "explore_reference",
    "reachable_states",
]


def explore(
    automaton: Automaton,
    environment: Optional[Callable[[State], Iterable[Action]]] = None,
    invariant: Optional[Callable[[State], bool]] = None,
    max_states: int = 50_000,
    max_depth: int = 10_000,
    workers: Optional[int] = None,
    validate: bool = False,
    engine: str = "auto",
    initial_state: Optional[State] = None,
) -> ExplorationResult:
    """Breadth-first exploration of reachable states.

    ``initial_state`` overrides the automaton's own initial state --
    the self-stabilization workloads start the search from a corrupted
    composed state instead of the clean one.  The override must be a
    structurally valid state for the automaton; no reachability from
    the clean start is assumed (that is the point).

    At each state, the successors are all enabled locally-controlled
    actions plus whatever input actions the ``environment`` callback
    offers for that state.  ``invariant`` (if given) is checked at every
    reachable state; the first violating state and its action trace are
    reported (the trace is layer-minimal: BFS finds a shortest
    counterexample by action count).

    Nondeterministic transitions are followed exhaustively.

    ``workers > 1`` shards each BFS layer across a forked process pool
    (falling back to serial for narrow layers and on platforms without
    ``fork``).  The per-layer merge is a barrier, so the reachable set,
    the ``truncated`` flag and counterexample minimality are identical
    to a serial run.

    ``validate=True`` is a debug mode that checks input-enabledness at
    every expanded state: if the environment offers an input action with
    no transition, :class:`InputEnablednessError` is raised (this is
    ``Automaton.check_input_enabled`` wired into the engine).  Validation
    runs serially -- ``workers`` is ignored when it is on.

    ``engine`` selects the backend: ``"auto"`` (the default) is the
    high-throughput engine; ``"accel"`` opts into the compiled
    packed-key core (built on demand from ``engine/_accel.c``; falls
    back to the engine -- counted as ``explore.accel_fallback`` --
    when no C compiler is available, the automaton is not a
    composition, an ``environment``/``validate`` is requested, or the
    state space outgrows the 64-bit packing; set
    ``REPRO_ACCEL_REQUIRE=1`` to make the fallback a hard error);
    ``"disk"`` spills the visited set and frontier to a self-cleaning
    scratch directory so exploration is bounded by disk rather than
    RAM (compositions only; RAM budget from ``$REPRO_DISK_RAM_CAP``,
    see :func:`repro.ioa.engine.diskstore.explore_disk`);
    ``"reference"`` is the original naive BFS kept verbatim as the
    differential-testing oracle (serial only -- ``workers`` and
    ``validate`` are not supported with it).
    """
    if engine == "accel":
        from .engine.accel import AccelUnavailable, explore_accel
        from .engine.encoding import EncodingOverflow

        try:
            return explore_accel(
                automaton,
                environment=environment,
                invariant=invariant,
                max_states=max_states,
                max_depth=max_depth,
                validate=validate,
                initial_state=initial_state,
            )
        except (AccelUnavailable, EncodingOverflow) as exc:
            if os.environ.get("REPRO_ACCEL_REQUIRE"):
                raise
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count(
                    "explore.accel_fallback", 1, reason=str(exc)[:200]
                )
            engine = "auto"
    if engine == "disk":
        from .engine.diskstore import explore_disk

        return explore_disk(
            automaton,
            environment=environment,
            invariant=invariant,
            max_states=max_states,
            max_depth=max_depth,
            validate=validate,
            initial_state=initial_state,
        )
    if engine == "reference":
        if validate:
            raise ValueError(
                "validate=True is not supported by the reference "
                "explorer; use the default engine"
            )
        if workers is not None and workers > 1:
            raise ValueError(
                "workers > 1 is not supported by the reference explorer"
            )
        result = _explore_reference(
            automaton,
            environment=environment or (lambda _: ()),
            invariant=invariant,
            max_states=max_states,
            max_depth=max_depth,
            initial_state=initial_state,
        )
        # The oracle body stays uninstrumented (it is the verbatim
        # baseline); the dispatcher reports its one headline figure.
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("explore.states", len(result.states))
        return result
    if engine != "auto":
        raise ValueError(
            f"unknown engine {engine!r}; expected 'auto', 'accel', "
            "'disk' or 'reference'"
        )
    if validate:
        return explore_engine(
            automaton,
            environment=environment,
            invariant=invariant,
            max_states=max_states,
            max_depth=max_depth,
            validate=True,
            initial_state=initial_state,
        )
    if workers is not None and workers > 1:
        from .engine.parallel import explore_parallel

        return explore_parallel(
            automaton,
            environment=environment,
            invariant=invariant,
            max_states=max_states,
            max_depth=max_depth,
            workers=workers,
            initial_state=initial_state,
        )
    return explore_engine(
        automaton,
        environment=environment,
        invariant=invariant,
        max_states=max_states,
        max_depth=max_depth,
        initial_state=initial_state,
    )


def explore_reference(
    automaton: Automaton,
    environment: Callable[[State], Iterable[Action]] = lambda _: (),
    invariant: Optional[Callable[[State], bool]] = None,
    max_states: int = 50_000,
    max_depth: int = 10_000,
) -> ExplorationResult:
    """Deprecated alias for ``explore(engine="reference")``.

    The reference explorer is an engine *backend* now, not a second
    public entry point; this shim keeps old call sites working while
    they migrate.
    """
    warnings.warn(
        "explore_reference is deprecated; call "
        "explore(..., engine='reference') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return explore(
        automaton,
        environment=environment,
        invariant=invariant,
        max_states=max_states,
        max_depth=max_depth,
        engine="reference",
    )


def _explore_reference(
    automaton: Automaton,
    environment: Callable[[State], Iterable[Action]] = lambda _: (),
    invariant: Optional[Callable[[State], bool]] = None,
    max_states: int = 50_000,
    max_depth: int = 10_000,
    initial_state: Optional[State] = None,
) -> ExplorationResult:
    """The original naive BFS, kept as the differential-testing oracle.

    Carries the full action trace in every frontier entry (O(depth)
    memory per state) and re-derives every component step; the engine
    behind :func:`explore` must return exactly this reachable-state
    set, ``truncated`` flag, and an equally short counterexample.
    """
    from collections import deque

    start = (
        initial_state
        if initial_state is not None
        else automaton.initial_state()
    )
    if invariant is not None and not invariant(start):
        return ExplorationResult({start}, False, (start, ()))

    seen: Set[State] = {start}
    frontier = deque([(start, (), 0)])
    truncated = False
    while frontier:
        state, trace, depth = frontier.popleft()
        if depth >= max_depth:
            truncated = True
            continue
        actions: List[Action] = list(automaton.enabled_local_actions(state))
        actions.extend(environment(state))
        for action in actions:
            for successor in automaton.transitions(state, action):
                if successor in seen:
                    continue
                new_trace = trace + (action,)
                if invariant is not None and not invariant(successor):
                    seen.add(successor)
                    return ExplorationResult(
                        seen, truncated, (successor, new_trace)
                    )
                if len(seen) >= max_states:
                    # Budget spent: stop at once instead of grinding
                    # through the remaining successors and frontier
                    # (every queued state was already invariant-checked
                    # when it was enqueued).
                    return ExplorationResult(seen, True)
                seen.add(successor)
                frontier.append((successor, new_trace, depth + 1))
    return ExplorationResult(seen, truncated)


def reachable_states(
    automaton: Automaton,
    environment: Optional[Callable[[State], Iterable[Action]]] = None,
    max_states: int = 50_000,
    workers: Optional[int] = None,
) -> Set[State]:
    """The set of states reachable under the given environment."""
    return explore(
        automaton,
        environment=environment,
        max_states=max_states,
        workers=workers,
    ).states
