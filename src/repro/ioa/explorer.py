"""Bounded state-space exploration for I/O automata.

Small utilities used by tests and examples to exhaustively explore the
reachable states of an automaton (or composition) under a bounded input
environment.  This provides lightweight model checking of safety
invariants -- e.g. "the alternating-bit protocol never delivers out of
order over any FIFO-channel adversary with at most N in-flight packets".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .actions import Action
from .automaton import Automaton, State


@dataclass
class ExplorationResult:
    """Outcome of a bounded exploration.

    ``states`` is the set of distinct reachable states visited;
    ``truncated`` is True when the state or depth budget was exhausted
    before the frontier emptied; ``violation`` carries the first
    invariant violation found, as a (state, trace) pair.
    """

    states: Set[State]
    truncated: bool
    violation: Optional[Tuple[State, Tuple[Action, ...]]] = None

    @property
    def ok(self) -> bool:
        return self.violation is None


def explore(
    automaton: Automaton,
    environment: Callable[[State], Iterable[Action]] = lambda _: (),
    invariant: Optional[Callable[[State], bool]] = None,
    max_states: int = 50_000,
    max_depth: int = 10_000,
) -> ExplorationResult:
    """Breadth-first exploration of reachable states.

    At each state, the successors are all enabled locally-controlled
    actions plus whatever input actions the ``environment`` callback
    offers for that state.  ``invariant`` (if given) is checked at every
    reachable state; the first violating state and its action trace are
    reported.

    Nondeterministic transitions are followed exhaustively.
    """
    start = automaton.initial_state()
    if invariant is not None and not invariant(start):
        return ExplorationResult({start}, False, (start, ()))

    seen: Set[State] = {start}
    frontier = deque([(start, (), 0)])
    truncated = False
    while frontier:
        if truncated:
            # The state budget is spent: every queued state was already
            # invariant-checked when enqueued, so stop expanding rather
            # than grind through an arbitrarily large frontier.
            break
        state, trace, depth = frontier.popleft()
        if depth >= max_depth:
            truncated = True
            continue
        actions: List[Action] = list(automaton.enabled_local_actions(state))
        actions.extend(environment(state))
        for action in actions:
            for successor in automaton.transitions(state, action):
                if successor in seen:
                    continue
                new_trace = trace + (action,)
                if invariant is not None and not invariant(successor):
                    seen.add(successor)
                    return ExplorationResult(
                        seen, truncated, (successor, new_trace)
                    )
                if len(seen) >= max_states:
                    truncated = True
                    continue
                seen.add(successor)
                frontier.append((successor, new_trace, depth + 1))
    return ExplorationResult(seen, truncated)


def reachable_states(
    automaton: Automaton,
    environment: Callable[[State], Iterable[Action]] = lambda _: (),
    max_states: int = 50_000,
) -> Set[State]:
    """The set of states reachable under the given environment."""
    return explore(
        automaton, environment=environment, max_states=max_states
    ).states
