"""Refinement mappings: proving ``solves`` structurally (paper, Section 2.4).

The paper's ``A solves H`` is an inclusion of behavior sets.  The
classical way to *prove* such inclusions in the I/O-automaton tradition
is a simulation; this module implements its simplest form, a
**refinement mapping**: a function ``f`` from implementation states to
specification states such that

* ``f(start_impl)`` is the specification's start state,
* for every reachable implementation step ``(s, a, s')``:

  - if ``a`` is an action of the specification, then
    ``(f(s), a, f(s'))`` is a specification step;
  - otherwise the step *stutters*: ``f(s') = f(s)``.

Every behavior of the implementation (projected onto specification
actions) is then a behavior of the specification.  The check is run
exhaustively over the implementation's reachable states (under an
optional input environment), so at bounded scope it is a proof, with a
concrete failing step reported otherwise.

Used by the tests to prove, e.g., that the alternating-bit protocol
composed with arbitrary bounded lossy FIFO channels refines a
one-queue reliable-delivery specification automaton -- the structural
counterpart of the harness' sampled ``DL`` conformance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Set, Tuple

from .actions import Action
from .automaton import Automaton, State


@dataclass
class RefinementResult:
    """Outcome of an exhaustive refinement check."""

    holds: bool
    states_checked: int
    exhaustive: bool
    failure: Optional[str] = None
    failing_trace: Tuple[Action, ...] = ()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def check_refinement(
    implementation: Automaton,
    specification: Automaton,
    mapping: Callable[[State], State],
    environment: Callable[[State], Iterable[Action]] = lambda _: (),
    max_states: int = 200_000,
) -> RefinementResult:
    """Exhaustively check that ``mapping`` is a refinement mapping.

    Explores the implementation's reachable states (locally-controlled
    actions plus whatever inputs ``environment`` offers) and validates
    the two refinement conditions at every step.  Specification actions
    are those in ``specification.signature``; all other implementation
    actions must stutter.
    """
    start = implementation.initial_state()
    if mapping(start) != specification.initial_state():
        return RefinementResult(
            False,
            0,
            True,
            failure=(
                f"start state maps to {mapping(start)!r}, not the "
                f"specification start {specification.initial_state()!r}"
            ),
        )
    seen: Set[State] = {start}
    frontier = deque([(start, ())])
    truncated = False
    while frontier:
        state, trace = frontier.popleft()
        abstract = mapping(state)
        actions: List[Action] = list(
            implementation.enabled_local_actions(state)
        )
        actions.extend(environment(state))
        for action in actions:
            for successor in implementation.transitions(state, action):
                new_trace = trace + (action,)
                new_abstract = mapping(successor)
                if specification.signature.contains(action):
                    if new_abstract not in specification.transitions(
                        abstract, action
                    ):
                        return RefinementResult(
                            False,
                            len(seen),
                            not truncated,
                            failure=(
                                f"step {action} maps {abstract!r} to "
                                f"{new_abstract!r}, which is not a "
                                "specification step"
                            ),
                            failing_trace=new_trace,
                        )
                elif new_abstract != abstract:
                    return RefinementResult(
                        False,
                        len(seen),
                        not truncated,
                        failure=(
                            f"non-specification step {action} failed to "
                            f"stutter: {abstract!r} became "
                            f"{new_abstract!r}"
                        ),
                        failing_trace=new_trace,
                    )
                if successor in seen:
                    continue
                if len(seen) >= max_states:
                    truncated = True
                    continue
                seen.add(successor)
                frontier.append((successor, new_trace))
    return RefinementResult(True, len(seen), not truncated)
