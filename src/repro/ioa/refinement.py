"""Refinement mappings: proving ``solves`` structurally (paper, Section 2.4).

The paper's ``A solves H`` is an inclusion of behavior sets.  The
classical way to *prove* such inclusions in the I/O-automaton tradition
is a simulation; this module implements its simplest form, a
**refinement mapping**: a function ``f`` from implementation states to
specification states such that

* ``f(start_impl)`` is the specification's start state,
* for every reachable implementation step ``(s, a, s')``:

  - if ``a`` is an action of the specification, then
    ``(f(s), a, f(s'))`` is a specification step;
  - otherwise the step *stutters*: ``f(s') = f(s)``.

Every behavior of the implementation (projected onto specification
actions) is then a behavior of the specification.  The check is run
exhaustively over the implementation's reachable states (under an
optional input environment), so at bounded scope it is a proof, with a
concrete failing step reported otherwise.

Used by the tests to prove, e.g., that the alternating-bit protocol
composed with arbitrary bounded lossy FIFO channels refines a
one-queue reliable-delivery specification automaton -- the structural
counterpart of the harness' sampled ``DL`` conformance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .actions import Action
from .automaton import Automaton, State
from .engine.core import _reconstruct


@dataclass
class RefinementResult:
    """Outcome of an exhaustive refinement check."""

    holds: bool
    states_checked: int
    exhaustive: bool
    failure: Optional[str] = None
    failing_trace: Tuple[Action, ...] = ()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def check_refinement(
    implementation: Automaton,
    specification: Automaton,
    mapping: Callable[[State], State],
    environment: Callable[[State], Iterable[Action]] = lambda _: (),
    max_states: int = 200_000,
) -> RefinementResult:
    """Exhaustively check that ``mapping`` is a refinement mapping.

    Explores the implementation's reachable states (locally-controlled
    actions plus whatever inputs ``environment`` offers) and validates
    the two refinement conditions at every step.  Specification actions
    are those in ``specification.signature``; all other implementation
    actions must stutter.

    The walk is trace-free: instead of carrying an O(depth) action
    trace per frontier entry, a parent-pointer map records one
    (predecessor, action) pair per state and the failing trace is
    reconstructed only when a condition is actually violated.  The
    composition's memoized component stepping makes the per-step
    transition queries cache hits.
    """
    start = implementation.initial_state()
    if mapping(start) != specification.initial_state():
        return RefinementResult(
            False,
            0,
            True,
            failure=(
                f"start state maps to {mapping(start)!r}, not the "
                f"specification start {specification.initial_state()!r}"
            ),
        )
    # parents doubles as the seen set: state -> (predecessor, action),
    # None for the start state.
    parents: Dict[State, Optional[Tuple[State, Action]]] = {start: None}
    frontier: List[State] = [start]
    truncated = False

    def failing_trace(state: State, action: Action) -> Tuple[Action, ...]:
        return _reconstruct(parents, state) + (action,)

    while frontier:
        next_frontier: List[State] = []
        for state in frontier:
            abstract = mapping(state)
            actions: List[Action] = list(
                implementation.enabled_local_actions(state)
            )
            actions.extend(environment(state))
            for action in actions:
                spec_action = specification.signature.contains(action)
                for successor in implementation.transitions(state, action):
                    new_abstract = mapping(successor)
                    if spec_action:
                        if new_abstract not in specification.transitions(
                            abstract, action
                        ):
                            return RefinementResult(
                                False,
                                len(parents),
                                not truncated,
                                failure=(
                                    f"step {action} maps {abstract!r} to "
                                    f"{new_abstract!r}, which is not a "
                                    "specification step"
                                ),
                                failing_trace=failing_trace(state, action),
                            )
                    elif new_abstract != abstract:
                        return RefinementResult(
                            False,
                            len(parents),
                            not truncated,
                            failure=(
                                f"non-specification step {action} failed "
                                f"to stutter: {abstract!r} became "
                                f"{new_abstract!r}"
                            ),
                            failing_trace=failing_trace(state, action),
                        )
                    if successor in parents:
                        continue
                    if len(parents) >= max_states:
                        truncated = True
                        continue
                    parents[successor] = (state, action)
                    next_frontier.append(successor)
        frontier = next_frontier
    return RefinementResult(True, len(parents), not truncated)
