"""Action signatures and their composition (paper, Sections 2.1 and 2.5.1).

An action signature partitions a set of actions into input, output and
internal actions.  The paper's signatures are infinite (one action per
message in an infinite alphabet), so we represent a signature by *families*:
the ``(name, direction)`` key of an action determines its classification,
independent of payload.  This matches the paper exactly -- no specification
there ever classifies two payload variants of the same directed action
differently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .actions import Action, Direction

FamilyKey = Tuple[str, Direction]

#: A conflicting family key plus a human-readable description of the
#: conflict, e.g. ``(("ping", ("a", "b")), "an output of both 'a' and 'b'")``.
Conflict = Tuple[FamilyKey, str]


class SignatureError(ValueError):
    """Raised for ill-formed or incompatible signatures.

    ``kind`` distinguishes the failure modes so tooling (notably
    ``repro lint``) can classify without parsing the message:

    * ``"disjointness"`` -- the input/output/internal sets of a single
      signature overlap (Section 2.1 well-formedness);
    * ``"compatibility"`` -- a collection of signatures violates strong
      compatibility (Section 2.5.1);
    * ``"generic"`` -- anything else.

    ``conflicts`` enumerates the offending ``(name, direction)`` family
    keys, each paired with a description of its role in the conflict.
    """

    def __init__(
        self,
        message: str,
        kind: str = "generic",
        conflicts: Iterable[Conflict] = (),
    ):
        super().__init__(message)
        self.kind = kind
        self.conflicts: Tuple[Conflict, ...] = tuple(conflicts)


def _describe_conflicts(conflicts: Sequence[Conflict]) -> str:
    return "; ".join(f"{family!r} is {role}" for family, role in conflicts)


def _as_keys(families: Iterable[FamilyKey]) -> FrozenSet[FamilyKey]:
    return frozenset(families)


@dataclass(frozen=True)
class ActionSignature:
    """An action signature ``S = (in(S), out(S), int(S))``.

    The three components are given as sets of family keys (see
    :data:`FamilyKey`); they must be pairwise disjoint.
    """

    inputs: FrozenSet[FamilyKey] = field(default_factory=frozenset)
    outputs: FrozenSet[FamilyKey] = field(default_factory=frozenset)
    internals: FrozenSet[FamilyKey] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        conflicts: List[Conflict] = []
        for family in sorted(self.inputs & self.outputs, key=repr):
            conflicts.append((family, "both an input and an output"))
        for family in sorted(self.inputs & self.internals, key=repr):
            conflicts.append((family, "both an input and an internal"))
        for family in sorted(self.outputs & self.internals, key=repr):
            conflicts.append((family, "both an output and an internal"))
        if conflicts:
            raise SignatureError(
                "input, output and internal action sets must be pairwise "
                "disjoint: " + _describe_conflicts(conflicts),
                kind="disjointness",
                conflicts=conflicts,
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def make(
        inputs: Iterable[FamilyKey] = (),
        outputs: Iterable[FamilyKey] = (),
        internals: Iterable[FamilyKey] = (),
    ) -> "ActionSignature":
        """Build a signature from iterables of family keys."""
        return ActionSignature(
            _as_keys(inputs), _as_keys(outputs), _as_keys(internals)
        )

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def classify(self, action: Action) -> Optional[str]:
        """Return ``"input"``, ``"output"``, ``"internal"`` or ``None``."""
        key = action.key
        if key in self.inputs:
            return "input"
        if key in self.outputs:
            return "output"
        if key in self.internals:
            return "internal"
        return None

    def contains(self, action: Action) -> bool:
        """True iff ``action`` is in ``acts(S)``."""
        return self.classify(action) is not None

    def is_input(self, action: Action) -> bool:
        return action.key in self.inputs

    def is_output(self, action: Action) -> bool:
        return action.key in self.outputs

    def is_internal(self, action: Action) -> bool:
        return action.key in self.internals

    def is_external(self, action: Action) -> bool:
        """True iff ``action`` is in ``ext(S) = in(S) + out(S)``."""
        key = action.key
        return key in self.inputs or key in self.outputs

    def is_local(self, action: Action) -> bool:
        """True iff ``action`` is in ``local(S) = out(S) + int(S)``."""
        key = action.key
        return key in self.outputs or key in self.internals

    # ------------------------------------------------------------------
    # Derived sets
    # ------------------------------------------------------------------

    @property
    def external(self) -> FrozenSet[FamilyKey]:
        return self.inputs | self.outputs

    @property
    def local(self) -> FrozenSet[FamilyKey]:
        return self.outputs | self.internals

    @property
    def all_families(self) -> FrozenSet[FamilyKey]:
        return self.inputs | self.outputs | self.internals

    def is_external_signature(self) -> bool:
        """True iff the signature has no internal actions (paper 2.1)."""
        return not self.internals

    def external_signature(self) -> "ActionSignature":
        """The external action signature obtained by dropping internals."""
        return ActionSignature(self.inputs, self.outputs, frozenset())

    # ------------------------------------------------------------------
    # Hiding (paper, Section 2.6)
    # ------------------------------------------------------------------

    def hide(self, families: Iterable[FamilyKey]) -> "ActionSignature":
        """Reclassify the given output families as internal.

        Implements the signature component of ``hide_Phi`` from the paper.
        ``families`` must all be output families of this signature.
        """
        phi = _as_keys(families)
        if not phi <= self.outputs:
            raise SignatureError(
                "can only hide output actions: %r are not outputs"
                % sorted(phi - self.outputs)
            )
        return ActionSignature(
            self.inputs, self.outputs - phi, self.internals | phi
        )


# ----------------------------------------------------------------------
# Composition of signatures (paper, Section 2.5.1)
# ----------------------------------------------------------------------


def strongly_compatible(signatures: Iterable[ActionSignature]) -> bool:
    """Check the strong-compatibility conditions of Section 2.5.1.

    For a finite collection the third condition (no action in infinitely
    many signatures) is automatic, so the checks are:

    1. no family is an output of two signatures, and
    2. no internal family of one signature appears in another.
    """
    sigs = list(signatures)
    for i, si in enumerate(sigs):
        for j, sj in enumerate(sigs):
            if i == j:
                continue
            if si.outputs & sj.outputs:
                return False
            if si.internals & sj.all_families:
                return False
    return True


def compatibility_conflicts(
    signatures: Iterable[ActionSignature],
    names: Optional[Sequence[str]] = None,
) -> List[Conflict]:
    """Every strong-compatibility violation in the collection.

    Returns one :data:`Conflict` per offending family key, naming the
    components that own it (``names`` defaults to positional labels).
    Empty iff :func:`strongly_compatible` holds.
    """
    sigs = list(signatures)
    if names is None:
        names = [f"component {i}" for i in range(len(sigs))]
    conflicts: List[Conflict] = []
    for i, si in enumerate(sigs):
        for j in range(i + 1, len(sigs)):
            for family in sorted(si.outputs & sigs[j].outputs, key=repr):
                conflicts.append(
                    (family, f"an output of both {names[i]} and {names[j]}")
                )
    for i, si in enumerate(sigs):
        for j, sj in enumerate(sigs):
            if i == j:
                continue
            for family in sorted(si.internals & sj.all_families, key=repr):
                conflicts.append(
                    (
                        family,
                        f"internal to {names[i]} but also an action of "
                        f"{names[j]}",
                    )
                )
    return conflicts


def compose_signatures(signatures: Iterable[ActionSignature]) -> ActionSignature:
    """The composition ``S = prod_i S_i`` of strongly compatible signatures.

    Per the paper: outputs are the union of component outputs; internals
    the union of component internals; inputs are component inputs that are
    outputs of no component.
    """
    sigs = list(signatures)
    conflicts = compatibility_conflicts(sigs)
    if conflicts:
        raise SignatureError(
            "signatures are not strongly compatible: "
            + _describe_conflicts(conflicts),
            kind="compatibility",
            conflicts=conflicts,
        )
    all_inputs: FrozenSet[FamilyKey] = frozenset().union(
        *(s.inputs for s in sigs)
    ) if sigs else frozenset()
    all_outputs: FrozenSet[FamilyKey] = frozenset().union(
        *(s.outputs for s in sigs)
    ) if sigs else frozenset()
    all_internals: FrozenSet[FamilyKey] = frozenset().union(
        *(s.internals for s in sigs)
    ) if sigs else frozenset()
    return ActionSignature(
        all_inputs - all_outputs, all_outputs, all_internals
    )
