"""Actions and events of the I/O automaton model (paper, Section 2.1).

The paper assumes a universal set of *actions*; an *event* is an occurrence
of an action in a sequence.  In this reproduction an action is a small
immutable value carrying:

* a ``name`` -- the action kind, e.g. ``"send_msg"`` or ``"wake"``;
* a ``direction`` -- the ordered endpoint pair the action is superscripted
  with in the paper, e.g. ``("t", "r")`` for ``send_msg^{t,r}(m)``.  Actions
  with no endpoint pair (used by tests and generic automata) use ``None``;
* a ``payload`` -- the message or packet parameter, or ``None`` for
  parameterless actions such as ``wake``/``fail``/``crash``.

Actions compare by value and are hashable, so they can live in sets,
signatures and schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

Direction = Optional[Tuple[str, str]]


@dataclass(frozen=True)
class Action:
    """A single action of the universal action alphabet.

    Parameters
    ----------
    name:
        Kind of action (``"send_pkt"``, ``"wake"``...).
    direction:
        The ordered pair of endpoint names the action belongs to, or
        ``None`` for undirected actions.
    payload:
        Message/packet parameter.  Must be hashable.
    """

    name: str
    direction: Direction = None
    payload: Any = None

    def with_payload(self, payload: Any) -> "Action":
        """Return a copy of this action carrying ``payload``."""
        return Action(self.name, self.direction, payload)

    @property
    def key(self) -> Tuple[str, Direction]:
        """The (name, direction) pair identifying this action's family.

        Signatures classify actions by family: every payload variant of
        ``send_msg^{t,r}`` has the same classification.
        """
        return (self.name, self.direction)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        direction = (
            "" if self.direction is None else "^{%s,%s}" % self.direction
        )
        payload = "" if self.payload is None else "(%r)" % (self.payload,)
        return f"{self.name}{direction}{payload}"


def directed(name: str, src: str, dst: str, payload: Any = None) -> Action:
    """Convenience constructor for an action superscripted with ``(src, dst)``."""
    return Action(name, (src, dst), payload)


def action_family(name: str, src: str, dst: str) -> Tuple[str, Direction]:
    """The family key for all payload variants of a directed action."""
    return (name, (src, dst))
