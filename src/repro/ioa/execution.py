"""Executions, schedules and behaviors (paper, Section 2.2).

An execution fragment is an alternating sequence of states and actions
``s0 pi1 s1 pi2 ... pin sn`` such that every ``(s_i, pi_{i+1}, s_{i+1})``
is a step of the automaton.  Its *schedule* is the action subsequence and
its *behavior* is the external-action subsequence.

This module represents finite fragments only; the impossibility arguments
in the paper manipulate finite executions plus fair extensions, which the
executor in :mod:`repro.ioa.fairness` provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Tuple

from .actions import Action
from .automaton import Automaton, State
from .signature import ActionSignature

Schedule = Tuple[Action, ...]


@dataclass(frozen=True)
class ExecutionFragment:
    """A finite execution fragment of an automaton.

    ``states`` has exactly one more element than ``actions``.  A fragment
    whose first state is a start state is an *execution*.
    """

    states: Tuple[State, ...]
    actions: Tuple[Action, ...]

    def __post_init__(self) -> None:
        if len(self.states) != len(self.actions) + 1:
            raise ValueError(
                "an execution fragment has exactly one more state than "
                "actions: got %d states and %d actions"
                % (len(self.states), len(self.actions))
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def initial(state: State) -> "ExecutionFragment":
        """The empty fragment sitting at ``state``."""
        return ExecutionFragment((state,), ())

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def first_state(self) -> State:
        return self.states[0]

    @property
    def final_state(self) -> State:
        return self.states[-1]

    def __len__(self) -> int:
        """The number of steps (events) in the fragment."""
        return len(self.actions)

    def schedule(self) -> Schedule:
        """``sched(alpha)``: the action subsequence."""
        return self.actions

    def behavior(self, signature: ActionSignature) -> Schedule:
        """``beh(alpha)``: the subsequence of external actions."""
        return tuple(a for a in self.actions if signature.is_external(a))

    def state_before(self, index: int) -> State:
        """The state immediately before action ``index`` (0-based)."""
        return self.states[index]

    def state_after(self, index: int) -> State:
        """The state immediately after action ``index`` (0-based)."""
        return self.states[index + 1]

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------

    def append(self, action: Action, state: State) -> "ExecutionFragment":
        """The fragment extended by one step."""
        return ExecutionFragment(
            self.states + (state,), self.actions + (action,)
        )

    def extend(self, other: "ExecutionFragment") -> "ExecutionFragment":
        """Concatenate ``other`` onto this fragment.

        ``other.first_state`` must equal this fragment's final state.
        """
        if other.first_state != self.final_state:
            raise ValueError(
                "fragments do not compose: final state differs from the "
                "extension's first state"
            )
        return ExecutionFragment(
            self.states + other.states[1:], self.actions + other.actions
        )

    def prefix(self, steps: int) -> "ExecutionFragment":
        """The prefix consisting of the first ``steps`` steps."""
        if not 0 <= steps <= len(self.actions):
            raise ValueError(f"prefix length {steps} out of range")
        return ExecutionFragment(
            self.states[: steps + 1], self.actions[:steps]
        )

    def suffix_from(self, steps: int) -> "ExecutionFragment":
        """The fragment starting after the first ``steps`` steps."""
        if not 0 <= steps <= len(self.actions):
            raise ValueError(f"suffix start {steps} out of range")
        return ExecutionFragment(self.states[steps:], self.actions[steps:])

    def truncate_after(
        self, predicate: Callable[[Action], bool]
    ) -> Optional["ExecutionFragment"]:
        """The shortest prefix whose last action satisfies ``predicate``.

        Returns ``None`` if no action satisfies it.
        """
        for i, action in enumerate(self.actions):
            if predicate(action):
                return self.prefix(i + 1)
        return None

    def with_final_state(self, state: State) -> "ExecutionFragment":
        """Replace the final state (used for adversary channel surgery).

        The impossibility engines use this to realize the paper's "``beta``
        can leave the channel in state ``s``" arguments (Lemmas 6.3, 6.5,
        6.6, 6.7): the same schedule is compatible with a different final
        channel state because the channel's start-state nondeterminism is
        resolved retroactively.
        """
        return ExecutionFragment(self.states[:-1] + (state,), self.actions)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def is_valid_for(self, automaton: Automaton) -> bool:
        """True iff every triple in this fragment is a step of ``automaton``."""
        for i, action in enumerate(self.actions):
            if self.states[i + 1] not in automaton.transitions(
                self.states[i], action
            ):
                return False
        return True

    def is_execution_of(self, automaton: Automaton) -> bool:
        """True iff this fragment is an execution (starts at a start state)."""
        return (
            self.first_state == automaton.initial_state()
            and self.is_valid_for(automaton)
        )


def replay_schedule(
    automaton: Automaton, state: State, schedule: Iterable[Action]
) -> ExecutionFragment:
    """Drive ``automaton`` from ``state`` along ``schedule`` deterministically.

    Every action must be enabled where it occurs; the first post-state is
    taken at each step.  Raises :class:`TransitionError` otherwise.
    """
    fragment = ExecutionFragment.initial(state)
    current = state
    for action in schedule:
        current = automaton.step(current, action)
        fragment = fragment.append(action, current)
    return fragment


def project_schedule(
    schedule: Iterable[Action], signature: ActionSignature
) -> Schedule:
    """``beta | A``: the subsequence of actions in ``acts(A)``."""
    return tuple(a for a in schedule if signature.contains(a))


def external_of(
    schedule: Iterable[Action], signature: ActionSignature
) -> Schedule:
    """The behavior of a schedule: its external-action subsequence."""
    return tuple(a for a in schedule if signature.is_external(a))


def inputs_of(
    schedule: Iterable[Action], signature: ActionSignature
) -> Schedule:
    """``beta | in(A)``: the input-action subsequence."""
    return tuple(a for a in schedule if signature.is_input(a))
