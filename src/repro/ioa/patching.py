"""Patching component executions into composed executions (Lemmas 2.3/2.4).

Lemma 2.3: given executions ``alpha_i`` of strongly compatible
components and an external-action sequence ``beta`` with
``beta | A_i = beh(alpha_i)`` for every ``i``, there is an execution of
the composition with behavior ``beta`` projecting onto each
``alpha_i``.  The constructive content: walk ``beta`` in order; before
firing each external action, flush the internal actions each involved
component performs before its next external action (internal actions of
distinct components are independent, so any flushing order works); at
the end flush all remaining internal steps.

:func:`patch_executions` implements exactly that, validating the
hypotheses as it goes.  :func:`patch_schedules` is the schedule-level
Lemma 2.4 analogue.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .actions import Action
from .composition import Composition
from .execution import ExecutionFragment


class PatchError(ValueError):
    """The given pieces do not satisfy the lemma's hypotheses."""


def _flush_internal(
    composition: Composition,
    fragments: Sequence[ExecutionFragment],
    cursors: List[int],
    index: int,
    composed: ExecutionFragment,
) -> ExecutionFragment:
    """Advance component ``index`` through its internal steps."""
    component = composition.components[index]
    fragment = fragments[index]
    while cursors[index] < len(fragment.actions):
        action = fragment.actions[cursors[index]]
        if component.signature.is_external(action):
            break
        state = composed.final_state
        new_component_state = fragment.state_after(cursors[index])
        expected = fragment.state_before(cursors[index])
        if state[index] != expected:
            raise PatchError(
                f"component {component.name} diverged: composed state "
                f"holds {state[index]!r}, its execution expects "
                f"{expected!r}"
            )
        new_state = state[:index] + (new_component_state,) + state[index + 1 :]
        composed = composed.append(action, new_state)
        cursors[index] += 1
    return composed


def patch_executions(
    composition: Composition,
    fragments: Sequence[ExecutionFragment],
    behavior: Sequence[Action],
) -> ExecutionFragment:
    """Lemma 2.3: assemble a composed execution from component pieces.

    ``fragments[i]`` must be an execution fragment of component ``i``
    and ``behavior`` a sequence of external actions of the composition
    whose projection onto each component equals that component's
    external actions in its fragment.  Returns a composed execution
    fragment with the given behavior whose projections are exactly the
    given fragments.
    """
    components = composition.components
    if len(fragments) != len(components):
        raise PatchError(
            f"need one fragment per component: got {len(fragments)} "
            f"for {len(components)}"
        )
    for action in behavior:
        if not composition.signature.is_external(action):
            raise PatchError(
                f"{action} is not external to the composition"
            )
    for index, (component, fragment) in enumerate(
        zip(components, fragments)
    ):
        expected = tuple(
            a
            for a in fragment.actions
            if component.signature.is_external(a)
        )
        projected = tuple(
            a for a in behavior if component.signature.contains(a)
        )
        if expected != projected:
            raise PatchError(
                f"behavior projection onto {component.name} does not "
                "match its execution's behavior"
            )

    cursors = [0] * len(components)
    composed = ExecutionFragment.initial(
        tuple(fragment.first_state for fragment in fragments)
    )
    for action in behavior:
        if not composition.signature.is_external(action):
            raise PatchError(f"{action} is not external to the composition")
        involved = [
            index
            for index, component in enumerate(components)
            if component.signature.contains(action)
        ]
        # Flush internal prefixes of every involved component so each
        # is poised at this external action.
        for index in involved:
            composed = _flush_internal(
                composition, fragments, cursors, index, composed
            )
            fragment = fragments[index]
            if (
                cursors[index] >= len(fragment.actions)
                or fragment.actions[cursors[index]] != action
            ):
                raise PatchError(
                    f"component {components[index].name} is not poised "
                    f"at {action}"
                )
        state = composed.final_state
        new_state = list(state)
        for index in involved:
            new_state[index] = fragments[index].state_after(cursors[index])
            cursors[index] += 1
        composed = composed.append(action, tuple(new_state))
    # Flush trailing internal steps.
    for index in range(len(components)):
        composed = _flush_internal(
            composition, fragments, cursors, index, composed
        )
        if cursors[index] != len(fragments[index].actions):
            raise PatchError(
                f"component {components[index].name} has unconsumed "
                "external actions beyond the given behavior"
            )
    return composed


def patch_schedules(
    composition: Composition,
    schedules: Sequence[Sequence[Action]],
    behavior: Sequence[Action],
) -> Tuple[Action, ...]:
    """Lemma 2.4, on schedules: replay each component schedule from its
    start state, patch, and return the composed schedule."""
    from .execution import replay_schedule

    fragments = [
        replay_schedule(component, component.initial_state(), schedule)
        for component, schedule in zip(composition.components, schedules)
    ]
    return patch_executions(composition, fragments, behavior).schedule()
