"""The output-hiding operator ``hide_Phi`` (paper, Section 2.6).

``hide_Phi(A)`` is identical to ``A`` except that the output families in
``Phi`` become internal.  The paper applies it to the composition of a
data link protocol with its physical channels, hiding the ``send_pkt`` and
``receive_pkt`` actions so that only data-link-layer actions remain
external.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Tuple

from .actions import Action
from .automaton import Automaton, State
from .signature import ActionSignature, FamilyKey


class Hidden(Automaton):
    """``hide_Phi(inner)``: reclassify some output families as internal."""

    def __init__(self, inner: Automaton, families: Iterable[FamilyKey]):
        self._inner = inner
        self._families = frozenset(families)
        self._signature = inner.signature.hide(self._families)
        self.name = f"hide({inner.name})"

    @property
    def inner(self) -> Automaton:
        return self._inner

    @property
    def hidden_families(self) -> frozenset:
        return self._families

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> State:
        return self._inner.initial_state()

    def transitions(self, state: State, action: Action) -> Tuple[State, ...]:
        return self._inner.transitions(state, action)

    def enabled_local_actions(self, state: State) -> Iterable[Action]:
        return self._inner.enabled_local_actions(state)

    def task_of(self, action: Action) -> Hashable:
        return self._inner.task_of(action)

    def tasks(self) -> Iterable[Hashable]:
        return self._inner.tasks()


def hide(automaton: Automaton, families: Iterable[FamilyKey]) -> Hidden:
    """Functional spelling of :class:`Hidden`."""
    return Hidden(automaton, families)
