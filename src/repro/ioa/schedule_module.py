"""Schedule modules and the "solves" relation (paper, Sections 2.3-2.4).

A schedule module ``H`` is an action signature plus a set of schedules; it
is the paper's formal notion of a *problem specification*.  The sets used
in the paper (``PL``, ``PL-FIFO``, ``DL``, ``WDL``) are infinite, so we
represent ``scheds(H)`` by a membership predicate over finite sequences.

An automaton ``A`` *solves* ``H`` when ``fairbehs(A) <= behs(H)``.  That
inclusion is not decidable in general; this module provides the checkable
instance used throughout the repository: testing that particular (fair)
behaviors produced by executors belong to ``behs(H)``, and reporting a
structured verdict when they do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

from .actions import Action
from .signature import ActionSignature


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of evaluating one trace property.

    ``holds`` is the verdict; when False, ``witness`` describes the
    violation (typically event indices and the offending actions) in a
    human-readable way.
    """

    name: str
    holds: bool
    witness: Optional[str] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds

    @staticmethod
    def ok(name: str) -> "PropertyResult":
        return PropertyResult(name, True)

    @staticmethod
    def violated(name: str, witness: str) -> "PropertyResult":
        return PropertyResult(name, False, witness)


@dataclass(frozen=True)
class ModuleVerdict:
    """Result of checking a schedule against a schedule module.

    ``in_module`` is True when the sequence belongs to ``scheds(H)``.
    ``vacuous`` is True when membership holds only because the
    environment-side assumptions failed (the specification's implication
    is vacuously true).  ``failures`` lists the violated guaranteed
    properties when ``in_module`` is False.
    """

    in_module: bool
    vacuous: bool = False
    assumption_failures: Tuple[PropertyResult, ...] = ()
    failures: Tuple[PropertyResult, ...] = ()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.in_module


class ScheduleModule:
    """A problem specification: signature + assumption/guarantee properties.

    All of the paper's modules have the same shape: *if* the sequence is
    well-formed and satisfies some environment-controlled properties,
    *then* it must satisfy some module-guaranteed properties.  We encode
    that implication directly: ``assumptions`` and ``guarantees`` are
    lists of named predicates over finite action sequences.
    """

    def __init__(
        self,
        name: str,
        signature: ActionSignature,
        assumptions: Sequence[Callable[[Sequence[Action]], PropertyResult]],
        guarantees: Sequence[Callable[[Sequence[Action]], PropertyResult]],
    ):
        self.name = name
        self.signature = signature
        self.assumptions = list(assumptions)
        self.guarantees = list(guarantees)

    # ------------------------------------------------------------------

    def check(self, schedule: Sequence[Action]) -> ModuleVerdict:
        """Membership test for ``scheds(H)`` on a finite sequence."""
        assumption_failures = tuple(
            r
            for r in (check(schedule) for check in self.assumptions)
            if not r.holds
        )
        if assumption_failures:
            # The implication holds vacuously: any sequence violating the
            # environment assumptions is in the module.
            return ModuleVerdict(
                True, vacuous=True, assumption_failures=assumption_failures
            )
        failures = tuple(
            r
            for r in (check(schedule) for check in self.guarantees)
            if not r.holds
        )
        return ModuleVerdict(not failures, failures=failures)

    def contains(self, schedule: Sequence[Action]) -> bool:
        return self.check(schedule).in_module

    def behavior_of(self, schedule: Sequence[Action]) -> Tuple[Action, ...]:
        """``beh(beta)`` with respect to this module's signature."""
        return tuple(
            a for a in schedule if self.signature.is_external(a)
        )

    def weaker_than(
        self, other: "ScheduleModule", samples: Iterable[Sequence[Action]]
    ) -> bool:
        """Sampled check that ``scheds(other) <= scheds(self)``.

        Used by tests to confirm, e.g., ``scheds(DL) <= scheds(WDL)``
        (paper, Section 4) on generated trace corpora.
        """
        return all(
            self.contains(s) for s in samples if other.contains(s)
        )


def check_solves_on(
    module: ScheduleModule,
    fair_behaviors: Iterable[Sequence[Action]],
) -> Tuple[bool, Optional[ModuleVerdict]]:
    """Test ``fairbehs(A) <= behs(H)`` on a corpus of fair behaviors.

    Returns (True, None) if every given behavior is in the module, else
    (False, verdict) for the first failure.  This is the checkable slice
    of the paper's ``solves`` relation.
    """
    for behavior in fair_behaviors:
        verdict = module.check(behavior)
        if not verdict.in_module:
            return False, verdict
    return True, None
