"""Composition of I/O automata (paper, Section 2.5.2).

The composition of a strongly compatible collection of automata is itself
an automaton whose state is the vector of component states.  A step on
action ``pi`` makes every component with ``pi`` in its signature take a
``pi``-step simultaneously while all other components stay put.

This module also provides the projection operation of Lemma 2.2 (an
execution of the composition projects to an execution of each component).
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .actions import Action
from .automaton import Automaton, State
from .execution import ExecutionFragment
from .signature import (
    ActionSignature,
    SignatureError,
    compatibility_conflicts,
    compose_signatures,
)


class Composition(Automaton):
    """The composition ``A = prod_i A_i`` of strongly compatible automata.

    The composed state is a tuple with one slot per component, in the
    order the components were given.
    """

    #: sentinel marking a component name shared by several components
    _AMBIGUOUS = -1

    def __init__(
        self,
        components: Sequence[Automaton],
        name: str = "composition",
        memoize: bool = False,
    ):
        components = list(components)
        conflicts = compatibility_conflicts(
            [c.signature for c in components],
            names=[repr(c.name) for c in components],
        )
        if conflicts:
            raise SignatureError(
                "component automata are not strongly compatible: "
                + "; ".join(
                    f"{family!r} is {role}" for family, role in conflicts
                ),
                kind="compatibility",
                conflicts=conflicts,
            )
        self.name = name
        self._components: Tuple[Automaton, ...] = tuple(components)
        self._signature = compose_signatures(
            c.signature for c in components
        )
        # Pre-compute, per component, which action families it knows.
        self._family_owners: Dict[Tuple, List[int]] = {}
        for i, component in enumerate(self._components):
            for family in component.signature.all_families:
                self._family_owners.setdefault(family, []).append(i)
        # Name -> index lookup table (with_component_state is hit inside
        # the impossibility engines' surgery loops, so the per-call linear
        # scan became measurable).  Duplicated names map to _AMBIGUOUS so
        # lookups still fail loudly.
        self._index_by_name: Dict[str, int] = {}
        for i, component in enumerate(self._components):
            if component.name in self._index_by_name:
                self._index_by_name[component.name] = self._AMBIGUOUS
            else:
                self._index_by_name[component.name] = i
        # Family -> owning-component index for locally-controlled actions.
        # Strong compatibility makes the owner unique (outputs belong to
        # one signature; internals are private), so task_of is a dict hit
        # instead of a linear signature scan.
        self._local_owner: Dict[Tuple, int] = {}
        for i, component in enumerate(self._components):
            for family in component.signature.local:
                self._local_owner[family] = i
        # Memoization for composition stepping (see transitions /
        # enabled_local_actions): per-component successor choices keyed on
        # (component index, component state, action), and per-component
        # enabled local actions keyed on (component index, component
        # state).  Components are pure functions of their state, so the
        # caches are sound; they are bounded by the explored state space.
        # Opt-in (``memoize=True``) because it pays off only on workloads
        # that revisit component slices -- exhaustive exploration and
        # refinement checking -- and costs hashing and memory on
        # simulation-style workloads whose uid-stamped states rarely
        # repeat.
        self._step_cache: Optional[
            Dict[Tuple[int, State, Action], Tuple[State, ...]]
        ] = {} if memoize else None
        self._enabled_cache: Optional[
            Dict[Tuple[int, State], Tuple[Action, ...]]
        ] = {} if memoize else None

    # ------------------------------------------------------------------
    # Component access
    # ------------------------------------------------------------------

    @property
    def components(self) -> Tuple[Automaton, ...]:
        return self._components

    @property
    def family_owners(self) -> Dict[Tuple, List[int]]:
        """Action family key -> indices of components with that family.

        Exposed for the exploration engine, which drives the component
        cross-product itself over interned states.
        """
        return self._family_owners

    def component_index(self, name: str) -> int:
        """Index of the (unique) component with the given name."""
        index = self._index_by_name.get(name)
        if index is None or index == self._AMBIGUOUS:
            found = sum(1 for c in self._components if c.name == name)
            raise KeyError(
                f"expected exactly one component named {name!r}, "
                f"found {found}"
            )
        return index

    def component_state(self, state: State, name: str) -> State:
        """The slice of the composed ``state`` belonging to component ``name``."""
        return state[self.component_index(name)]

    def with_component_state(
        self, state: State, name: str, new_component_state: State
    ) -> State:
        """Composed state with one component's slice replaced.

        This is the hook the impossibility engines use for adversary
        surgery on channel states (paper Lemmas 6.3 and 6.5-6.7): the
        surgery functions justify that the replacement state is reachable
        under the same schedule via a different start-state choice.
        """
        index = self.component_index(name)
        return state[:index] + (new_component_state,) + state[index + 1 :]

    # ------------------------------------------------------------------
    # Automaton interface
    # ------------------------------------------------------------------

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> State:
        return tuple(c.initial_state() for c in self._components)

    def component_transitions(
        self, index: int, component_state: State, action: Action
    ) -> Tuple[State, ...]:
        """Memoized ``components[index].transitions(component_state, action)``.

        The cross-product in :meth:`transitions` asks every owning
        component for its choices on every step; during exhaustive
        exploration the same (component state, action) pair recurs across
        thousands of composed states (most steps change only 1-2 of the
        slices), so the answers are cached here.
        """
        if self._step_cache is None:
            return self._components[index].transitions(
                component_state, action
            )
        key = (index, component_state, action)
        cached = self._step_cache.get(key)
        if cached is None:
            cached = self._components[index].transitions(
                component_state, action
            )
            self._step_cache[key] = cached
        return cached

    def component_enabled_local_actions(
        self, index: int, component_state: State
    ) -> Tuple[Action, ...]:
        """Memoized enabled-local-action list of one component slice."""
        if self._enabled_cache is None:
            return tuple(
                self._components[index].enabled_local_actions(
                    component_state
                )
            )
        key = (index, component_state)
        cached = self._enabled_cache.get(key)
        if cached is None:
            cached = tuple(
                self._components[index].enabled_local_actions(
                    component_state
                )
            )
            self._enabled_cache[key] = cached
        return cached

    def transitions(self, state: State, action: Action) -> Tuple[State, ...]:
        owners = self._family_owners.get(action.key)
        if not owners:
            return ()
        # Every owning component must be able to take the step.
        per_component_choices: List[Tuple[State, ...]] = []
        for i in owners:
            choices = self.component_transitions(i, state[i], action)
            if not choices:
                return ()
            per_component_choices.append(choices)
        results: List[State] = []
        for combo in itertools.product(*per_component_choices):
            new_state = list(state)
            for slot, i in enumerate(owners):
                new_state[i] = combo[slot]
            results.append(tuple(new_state))
        return tuple(results)

    def enabled_local_actions(self, state: State) -> Iterable[Action]:
        # An action locally controlled by one component may be an input
        # of others; it is enabled in the composition since inputs are
        # always enabled.
        if self._enabled_cache is None:
            # Stay lazy: callers like is_quiescent stop at the first
            # action, so nothing should be materialized up front.
            for i, component in enumerate(self._components):
                yield from component.enabled_local_actions(state[i])
        else:
            for i in range(len(self._components)):
                yield from self.component_enabled_local_actions(
                    i, state[i]
                )

    def task_of(self, action: Action) -> Hashable:
        owner = self._local_owner.get(action.key)
        if owner is None:
            raise KeyError(
                f"{action} is not locally controlled by any component"
            )
        return (owner, self._components[owner].task_of(action))

    def tasks(self) -> Iterable[Hashable]:
        for i, component in enumerate(self._components):
            for task in component.tasks():
                yield (i, task)

    # ------------------------------------------------------------------
    # Lemma 2.2: projection
    # ------------------------------------------------------------------

    def project_execution(
        self, fragment: ExecutionFragment, index: int
    ) -> ExecutionFragment:
        """``alpha | A_i``: project a composed execution onto component ``index``.

        Deletes steps whose action is not in the component's signature and
        keeps the component's slice of each remaining state (Lemma 2.2
        guarantees the result is an execution fragment of the component).
        """
        component = self._components[index]
        states: List[State] = [fragment.states[0][index]]
        actions: List[Action] = []
        for i, action in enumerate(fragment.actions):
            if component.signature.contains(action):
                actions.append(action)
                states.append(fragment.states[i + 1][index])
        return ExecutionFragment(tuple(states), tuple(actions))

    def project_schedule(
        self, schedule: Iterable[Action], index: int
    ) -> Tuple[Action, ...]:
        """``beta | A_i`` on schedules."""
        signature = self._components[index].signature
        return tuple(a for a in schedule if signature.contains(a))
