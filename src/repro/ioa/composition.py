"""Composition of I/O automata (paper, Section 2.5.2).

The composition of a strongly compatible collection of automata is itself
an automaton whose state is the vector of component states.  A step on
action ``pi`` makes every component with ``pi`` in its signature take a
``pi``-step simultaneously while all other components stay put.

This module also provides the projection operation of Lemma 2.2 (an
execution of the composition projects to an execution of each component).
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from .actions import Action
from .automaton import Automaton, State
from .execution import ExecutionFragment
from .signature import (
    ActionSignature,
    SignatureError,
    compose_signatures,
    strongly_compatible,
)


class Composition(Automaton):
    """The composition ``A = prod_i A_i`` of strongly compatible automata.

    The composed state is a tuple with one slot per component, in the
    order the components were given.
    """

    def __init__(self, components: Sequence[Automaton], name: str = "composition"):
        components = list(components)
        if not strongly_compatible(c.signature for c in components):
            raise SignatureError(
                "component automata are not strongly compatible"
            )
        self.name = name
        self._components: Tuple[Automaton, ...] = tuple(components)
        self._signature = compose_signatures(
            c.signature for c in components
        )
        # Pre-compute, per component, which action families it knows.
        self._family_owners: Dict[Tuple, List[int]] = {}
        for i, component in enumerate(self._components):
            for family in component.signature.all_families:
                self._family_owners.setdefault(family, []).append(i)

    # ------------------------------------------------------------------
    # Component access
    # ------------------------------------------------------------------

    @property
    def components(self) -> Tuple[Automaton, ...]:
        return self._components

    def component_index(self, name: str) -> int:
        """Index of the (unique) component with the given name."""
        matches = [
            i for i, c in enumerate(self._components) if c.name == name
        ]
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one component named {name!r}, "
                f"found {len(matches)}"
            )
        return matches[0]

    def component_state(self, state: State, name: str) -> State:
        """The slice of the composed ``state`` belonging to component ``name``."""
        return state[self.component_index(name)]

    def with_component_state(
        self, state: State, name: str, new_component_state: State
    ) -> State:
        """Composed state with one component's slice replaced.

        This is the hook the impossibility engines use for adversary
        surgery on channel states (paper Lemmas 6.3 and 6.5-6.7): the
        surgery functions justify that the replacement state is reachable
        under the same schedule via a different start-state choice.
        """
        index = self.component_index(name)
        return state[:index] + (new_component_state,) + state[index + 1 :]

    # ------------------------------------------------------------------
    # Automaton interface
    # ------------------------------------------------------------------

    @property
    def signature(self) -> ActionSignature:
        return self._signature

    def initial_state(self) -> State:
        return tuple(c.initial_state() for c in self._components)

    def transitions(self, state: State, action: Action) -> Tuple[State, ...]:
        owners = self._family_owners.get(action.key)
        if not owners:
            return ()
        # Every owning component must be able to take the step.
        per_component_choices: List[Tuple[State, ...]] = []
        for i in owners:
            choices = self._components[i].transitions(state[i], action)
            if not choices:
                return ()
            per_component_choices.append(choices)
        results: List[State] = []
        for combo in itertools.product(*per_component_choices):
            new_state = list(state)
            for slot, i in enumerate(owners):
                new_state[i] = combo[slot]
            results.append(tuple(new_state))
        return tuple(results)

    def enabled_local_actions(self, state: State) -> Iterable[Action]:
        for i, component in enumerate(self._components):
            for action in component.enabled_local_actions(state[i]):
                # An action locally controlled by one component may be an
                # input of others; it is enabled in the composition since
                # inputs are always enabled.
                yield action

    def task_of(self, action: Action) -> Hashable:
        for i, component in enumerate(self._components):
            if component.signature.is_local(action):
                return (i, component.task_of(action))
        raise KeyError(f"{action} is not locally controlled by any component")

    def tasks(self) -> Iterable[Hashable]:
        for i, component in enumerate(self._components):
            for task in component.tasks():
                yield (i, task)

    # ------------------------------------------------------------------
    # Lemma 2.2: projection
    # ------------------------------------------------------------------

    def project_execution(
        self, fragment: ExecutionFragment, index: int
    ) -> ExecutionFragment:
        """``alpha | A_i``: project a composed execution onto component ``index``.

        Deletes steps whose action is not in the component's signature and
        keeps the component's slice of each remaining state (Lemma 2.2
        guarantees the result is an execution fragment of the component).
        """
        component = self._components[index]
        states: List[State] = [fragment.states[0][index]]
        actions: List[Action] = []
        for i, action in enumerate(fragment.actions):
            if component.signature.contains(action):
                actions.append(action)
                states.append(fragment.states[i + 1][index])
        return ExecutionFragment(tuple(states), tuple(actions))

    def project_schedule(
        self, schedule: Iterable[Action], index: int
    ) -> Tuple[Action, ...]:
        """``beta | A_i`` on schedules."""
        signature = self._components[index].signature
        return tuple(a for a in schedule if signature.contains(a))
