"""Executable reproduction of Lynch, Mansour & Fekete (1988),
"The Data Link Layer: Two Impossibility Results" (MIT/LCS/TM-355, PODC).

The package provides:

* :mod:`repro.ioa` -- the I/O automaton model (Section 2);
* :mod:`repro.channels` -- the physical layer: PL/PL-FIFO specs and the
  permissive channels C-bar / C-hat (Sections 3 and 6);
* :mod:`repro.datalink` -- the data link layer: DL/WDL specs, protocol
  interfaces, message-independence / crashing / k-boundedness (Sections
  4-5, 8.1);
* :mod:`repro.protocols` -- ABP, sliding window, Stenning, Baratz-Segall;
* :mod:`repro.impossibility` -- Theorems 7.5 and 8.5 as constructive
  engines emitting machine-checked violation certificates;
* :mod:`repro.sim` / :mod:`repro.analysis` -- simulation and auditing.

Quickstart::

    from repro.protocols import alternating_bit_protocol
    from repro.impossibility import refute_crash_tolerance

    certificate = refute_crash_tolerance(alternating_bit_protocol())
    print(certificate.describe())
"""

from .alphabets import Message, MessageFactory, Packet

__version__ = "1.0.0"

__all__ = ["Message", "MessageFactory", "Packet", "__version__"]
