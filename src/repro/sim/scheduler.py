"""Scheduling strategies for fair execution.

The default executor (:func:`repro.ioa.fairness.run_to_quiescence`)
serves tasks round-robin and breaks ties deterministically.  Property
tests want to explore *many* fair interleavings; this module provides
seeded tie-breakers and a convenience wrapper that runs a system under
several schedules and collects all resulting behaviors.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Tuple

from ..ioa.actions import Action
from ..ioa.automaton import Automaton, State
from ..ioa.fairness import run_to_quiescence

TieBreak = Callable[[List[Action]], Action]


def deterministic_tie_break(candidates: List[Action]) -> Action:
    """The default policy: first candidate in enumeration order."""
    return candidates[0]


def seeded_tie_break(seed) -> TieBreak:
    """A tie-breaker choosing uniformly among a task's enabled actions.

    Deterministic in the seed, so failing runs replay exactly.  ``seed``
    may also be a :class:`random.Random` instance, letting callers
    thread one RNG through every source of schedule randomness.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)

    def pick(candidates: List[Action]) -> Action:
        return candidates[rng.randrange(len(candidates))]

    return pick


def behaviors_under_schedules(
    automaton: Automaton,
    state: State,
    seeds: Iterable[int],
    max_steps: int = 100_000,
) -> Tuple[Tuple[Action, ...], ...]:
    """Run to quiescence under several seeded schedules.

    Returns one behavior (external-action sequence) per seed.  Raises
    :class:`~repro.ioa.fairness.FairnessTimeout` if any schedule fails
    to quiesce -- non-quiescence under *some* fair schedule is itself a
    finding for the systems in this repository.
    """
    behaviors = []
    for seed in seeds:
        fragment = run_to_quiescence(
            automaton,
            state,
            max_steps=max_steps,
            tie_break=seeded_tie_break(seed),
        )
        behaviors.append(fragment.behavior(automaton.signature))
    return tuple(behaviors)
