"""Multi-session load generator: thousands of sessions, one report.

This is the ROADMAP's "millions of users" workload: instead of one
sender/receiver pair per process (:mod:`repro.sim.runner`), a load run
schedules ``N`` concurrent protocol **sessions** -- each a (protocol,
channel family, SubSeed-derived per-session seed) triple with its own
generated script and fault schedule -- and multiplexes them through
the batched warm-worker pool (:func:`repro.conformance.pool.run_partitioned`,
the PR-6 engine the fuzzer runs on).

Determinism contract, inherited from the pool: the per-session
:class:`~repro.conformance.harness.SubSeeds` schedule is derived
serially up front from one master seed (session id = schedule index),
sessions are sharded across workers in contiguous batches **by session
id**, and the master's merge loop consumes shard streams strictly in
session-index order -- so every aggregate (throughput counters,
latency and delivery-ratio percentiles, per-shard summaries, the
``--trace`` event stream) is byte-identical whatever ``--workers`` or
``--batch-size`` says.  Sessions share no state (each is its own
composed system over its own seeded channel adversaries), which is
what makes the multiplexing trivial to reason about: any interleaving
of independent sessions yields the same per-session outcomes, so the
shard driver runs each session to quiescence and the "event loop" is
the lazy batch merge.

While merging, the master emits live dashboard telemetry through the
obs layer: ``load.sessions_done`` / ``load.sessions_active`` gauges,
``load.sessions`` / ``load.shard.sessions`` counters (the latter
tagged with its shard id), and per-session spans absorbed from the
workers' captured event chunks.

The CLI entry point is ``repro load --sessions N --steps S``; the
result is the unified :class:`~repro.obs.RunReport` envelope with
p50/p95/p99 latency (steps from ``send_msg`` to ``receive_msg``) and
per-session delivery-ratio percentiles.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import (
    STATUS_ERROR,
    STATUS_OK,
    RunReport,
    current_tracer,
)
from .metrics import percentile_summary
from .runner import _dropped
from .session import Session

#: Fraction digits kept for ratio/mean fields in the report details --
#: fixed so serial and pooled JSON renderings are byte-identical.
_ROUND = 6


@dataclass(frozen=True)
class LoadConfig:
    """Knobs for one load run.

    ``sessions`` is the number of concurrent conversations;
    ``messages`` (the CLI's ``--steps``) how many fresh messages each
    session's script offers.  The channel and fault knobs mirror
    :class:`~repro.conformance.harness.FuzzConfig`, so a load session
    is constructed exactly like a fuzz run -- apply a named fault mix
    with :func:`with_load_mix`.
    """

    sessions: int = 100
    messages: int = 4
    mix: str = "default"
    loss_rate: float = 0.2
    reorder_window: int = 4
    horizon: int = 1024
    max_interleave: int = 8
    max_steps: int = 60_000
    fail_probability: float = 0.05
    receiver_fail_probability: float = 0.05
    crash_probability: float = 0.0


def with_load_mix(config: LoadConfig, mix: str) -> LoadConfig:
    """``config`` with the named fuzz fault mix's overrides applied.

    The mixes are shared with ``repro fuzz`` (one vocabulary:
    ``default``, ``clean``, ``drop-flood``, ``reorder-flood``,
    ``crash-storm``); the chosen name is recorded on the config for
    the report.
    """
    from ..conformance.harness import FAULT_MIXES

    if mix not in FAULT_MIXES:
        raise KeyError(
            f"unknown fault mix {mix!r}; available: "
            + ", ".join(sorted(FAULT_MIXES))
        )
    return replace(config, mix=mix, **FAULT_MIXES[mix])


def _fuzz_config(config: LoadConfig):
    """The harness-facing view of a load config (script/channel knobs)."""
    from ..conformance.harness import FuzzConfig

    return FuzzConfig(
        messages=config.messages,
        loss_rate=config.loss_rate,
        reorder_window=config.reorder_window,
        horizon=config.horizon,
        max_interleave=config.max_interleave,
        max_steps=config.max_steps,
        fail_probability=config.fail_probability,
        receiver_fail_probability=config.receiver_fail_probability,
        crash_probability=config.crash_probability,
        shrink=False,
    )


@dataclass
class SessionOutcome:
    """Everything one session ships back to the load master.

    Compact by construction: per-message latencies (step counts) and
    the delivery tallies, never the execution fragment -- a
    thousand-session run must not pickle a thousand executions.
    ``events`` is the session's captured obs chunk (empty unless the
    master is tracing), absorbed into the master stream at merge time.
    ``duration_s`` is wall-clock telemetry and excluded from the
    cross-worker identity contract.
    """

    index: int
    subseeds: object = None
    steps: int = 0
    quiescent: bool = False
    sent: int = 0
    delivered: int = 0
    duplicates: int = 0
    dropped: int = 0
    latencies: Tuple[int, ...] = ()
    events: Tuple = ()
    error: Optional[str] = None
    timed_out: bool = False
    duration_s: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        """Delivered / sent, degenerate cases pinned like
        :class:`~repro.sim.metrics.DeliveryStats`."""
        if self.sent:
            return self.delivered / self.sent
        return 0.0 if self.delivered else 1.0


@dataclass
class SessionBatch:
    """One shard's worth of session outcomes, in session-index order."""

    start: int
    outcomes: Tuple[SessionOutcome, ...]


def run_session(
    protocol: str,
    channel: str,
    index: int,
    subseeds,
    config: LoadConfig,
    capture: bool = False,
    run_timeout: Optional[float] = None,
    resolved=None,
) -> SessionOutcome:
    """One complete session: build, run to quiescence, summarize.

    Pure in ``(protocol, channel, subseeds, config)`` modulo the
    wall-clock fields, which is what lets shards execute anywhere and
    merge deterministically.  Every exception is contained into a
    failed-session outcome, mirroring the fuzz pool's hardening.
    """
    from ..conformance.pool import RunTimeout, _alarm, _capturing
    from .metrics import channel_stats, delivery_stats

    started = time.perf_counter()
    try:
        with _alarm(run_timeout):
            with _capturing(capture) as events:
                session = Session.from_spec(
                    protocol,
                    channel,
                    subseeds,
                    _fuzz_config(config),
                    resolved=resolved,
                )
                result = session.run()
                stats = delivery_stats(result.fragment)
                dropped = _dropped(
                    channel_stats(result.fragment, "t", "r")
                ) + _dropped(channel_stats(result.fragment, "r", "t"))
    except RunTimeout as exc:
        return SessionOutcome(
            index=index,
            subseeds=subseeds,
            error=str(exc),
            timed_out=True,
            duration_s=time.perf_counter() - started,
        )
    except Exception as exc:  # containment: one session, not the run
        return SessionOutcome(
            index=index,
            subseeds=subseeds,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - started,
        )
    return SessionOutcome(
        index=index,
        subseeds=subseeds,
        steps=result.steps,
        quiescent=result.quiescent,
        sent=stats.sent,
        delivered=stats.delivered,
        duplicates=stats.duplicates,
        dropped=dropped,
        latencies=stats.latencies,
        events=tuple(events),
        duration_s=time.perf_counter() - started,
    )


def run_session_batch(
    protocol: str,
    channel: str,
    start: int,
    batch: Sequence,
    config: LoadConfig,
    capture: bool = False,
    run_timeout: Optional[float] = None,
    resolved=None,
    clock: Callable[[], float] = time.perf_counter,
) -> SessionBatch:
    """Execute one shard of consecutive sessions inside a single worker.

    Applies the same per-batch wall-clock budget accounting as the
    fuzz pool: a shard of N sessions gets ``N * run_timeout`` seconds
    total, each session is individually bounded, and a shard that
    exhausts its budget records its remaining sessions as timed out
    instead of overrunning.  ``clock`` exists so tests can drive the
    accounting deterministically.
    """
    budget = run_timeout * len(batch) if run_timeout else None
    batch_started = clock()
    outcomes: List[SessionOutcome] = []
    for offset, subseeds in enumerate(batch):
        index = start + offset
        allowance = run_timeout
        if budget is not None:
            remaining = budget - (clock() - batch_started)
            if remaining <= 0:
                outcomes.append(
                    SessionOutcome(
                        index=index,
                        subseeds=subseeds,
                        error=(
                            f"shard exhausted its {budget}s wall-clock "
                            f"budget before session {index}"
                        ),
                        timed_out=True,
                    )
                )
                continue
            allowance = min(run_timeout, remaining)
        outcomes.append(
            run_session(
                protocol,
                channel,
                index,
                subseeds,
                config,
                capture=capture,
                run_timeout=allowance,
                resolved=resolved,
            )
        )
    return SessionBatch(start=start, outcomes=tuple(outcomes))


# Worker-side globals, installed by the fork initializer (the load
# counterpart of the fuzz pool's ``_WORKER``).
_LOAD_WORKER: dict = {}


def _init_load_worker(
    protocol: str,
    channel: str,
    config: LoadConfig,
    capture: bool,
    run_timeout: Optional[float],
) -> None:
    from ..conformance.harness import resolve_pair
    from ..obs import set_tracer

    # Detach the tracer inherited across fork (it may hold the
    # master's open JSONL sink); workers capture into per-session
    # MemorySinks and the master replays the chunks.
    set_tracer(None)
    _LOAD_WORKER.update(
        protocol=protocol,
        channel=channel,
        config=config,
        capture=capture,
        run_timeout=run_timeout,
        resolved=resolve_pair(protocol, channel),
    )


def _load_pool_batch(task: Tuple[int, Tuple]) -> SessionBatch:
    start, batch = task
    return run_session_batch(
        _LOAD_WORKER["protocol"],
        _LOAD_WORKER["channel"],
        start,
        batch,
        _LOAD_WORKER["config"],
        capture=_LOAD_WORKER["capture"],
        run_timeout=_LOAD_WORKER["run_timeout"],
        resolved=_LOAD_WORKER["resolved"],
    )


@dataclass
class LoadResult:
    """Everything one load run produced, in session-index order."""

    protocol: str
    channel: str
    seed: int
    config: LoadConfig
    sessions: List[SessionOutcome]
    pool: Dict[str, object] = field(default_factory=dict)
    duration_s: float = 0.0

    @property
    def failed_sessions(self) -> int:
        return sum(1 for s in self.sessions if s.error is not None)

    @property
    def timeouts(self) -> int:
        return sum(1 for s in self.sessions if s.timed_out)

    @property
    def completed(self) -> List[SessionOutcome]:
        return [s for s in self.sessions if s.error is None]

    @property
    def latencies(self) -> Tuple[int, ...]:
        """All per-message latencies, pooled across sessions."""
        pooled: List[int] = []
        for outcome in self.completed:
            pooled.extend(outcome.latencies)
        return tuple(pooled)

    def shard_summaries(self) -> List[Dict[str, int]]:
        """Per-shard aggregates (sessions, failures, steps, deliveries).

        Shards are the pool's contiguous session-id batches, so the
        summary is a pure function of the outcomes and the batch size
        -- identical whichever worker executed each shard.
        """
        size = int(self.pool.get("batch_size") or 1) or 1
        shards: List[Dict[str, int]] = []
        for start in range(0, len(self.sessions), size):
            chunk = self.sessions[start : start + size]
            shards.append(
                {
                    "start": start,
                    "sessions": len(chunk),
                    "failed": sum(
                        1 for s in chunk if s.error is not None
                    ),
                    "steps": sum(s.steps for s in chunk),
                    "delivered": sum(s.delivered for s in chunk),
                }
            )
        return shards

    def report(self) -> RunReport:
        """The unified envelope: aggregate throughput and percentiles.

        Identity contract: everything here is a pure function of
        ``(protocol, channel, seed, config)`` **except**
        ``duration_s``, ``details.throughput`` (wall-clock derived)
        and ``details.pool`` (execution telemetry) -- normalize those
        three away and ``--workers N`` is byte-identical to serial.
        """
        completed = self.completed
        latencies = self.latencies
        ratios = [s.delivery_ratio for s in completed]
        latency: Dict[str, object] = {"unit": "steps", "count": len(latencies)}
        latency.update(percentile_summary(latencies))
        latency["mean"] = round(
            sum(latencies) / len(latencies), _ROUND
        ) if latencies else 0.0
        latency["max"] = max(latencies) if latencies else 0
        ratio_summary = {
            name: round(value, _ROUND)
            for name, value in percentile_summary(ratios).items()
        }
        ratio_summary["min"] = round(min(ratios), _ROUND) if ratios else 0.0
        ratio_summary["mean"] = (
            round(sum(ratios) / len(ratios), _ROUND) if ratios else 0.0
        )
        wall = self.duration_s or 0.0
        throughput = {
            "sessions_per_sec": round(len(self.sessions) / wall, 1)
            if wall
            else None,
            "steps_per_sec": round(
                sum(s.steps for s in self.sessions) / wall, 1
            )
            if wall
            else None,
            "deliveries_per_sec": round(
                sum(s.delivered for s in self.sessions) / wall, 1
            )
            if wall
            else None,
        }
        counters = {
            "load.sessions": len(self.sessions),
            "load.failed_sessions": self.failed_sessions,
            "load.timeouts": self.timeouts,
            "load.nonquiescent_sessions": sum(
                1 for s in completed if not s.quiescent
            ),
            "load.steps": sum(s.steps for s in self.sessions),
            "load.messages_sent": sum(s.sent for s in self.sessions),
            "load.messages_delivered": sum(
                s.delivered for s in self.sessions
            ),
            "load.duplicate_deliveries": sum(
                s.duplicates for s in self.sessions
            ),
            "load.packets_dropped": sum(
                s.dropped for s in self.sessions
            ),
        }
        status = STATUS_OK
        if self.sessions and not completed:
            status = STATUS_ERROR
        return RunReport(
            command="load",
            status=status,
            counters=counters,
            duration_s=self.duration_s,
            details={
                "protocol": self.protocol,
                "channel": self.channel,
                "seed": self.seed,
                "sessions": len(self.sessions),
                "messages_per_session": self.config.messages,
                "mix": self.config.mix,
                "latency": latency,
                "delivery_ratio": ratio_summary,
                "throughput": throughput,
                # Shard layout follows the pool's batch size, so it is
                # execution telemetry, normalized away with the rest.
                "pool": {**self.pool, "shards": self.shard_summaries()},
            },
        )


def run_load(
    protocol: str,
    channel: str,
    seed: int,
    config: Optional[LoadConfig] = None,
    workers: int = 1,
    run_timeout: Optional[float] = None,
    batch_size: Optional[int] = None,
) -> LoadResult:
    """Run one multi-session load campaign.

    Derives ``config.sessions`` per-session SubSeeds bundles from the
    master ``seed`` (session id = derivation index), shards them
    across ``workers`` persistent forked workers in ``batch_size``
    chunks of consecutive session ids, and merges the shard streams in
    session-index order, emitting the live obs gauges as sessions
    complete.  ``run_timeout`` bounds each session's wall-clock
    seconds (shards are additionally held to a ``len(batch) *
    run_timeout`` total); a session that exceeds it, raises, or loses
    its worker is recorded as a failed :class:`SessionOutcome` instead
    of aborting the run.
    """
    from ..conformance.harness import SubSeeds
    from ..conformance.pool import run_partitioned
    from ..conformance.registry import (
        resolve_fuzz_channel,
        resolve_fuzz_protocol,
    )

    # Configuration errors are not contained failures: validate the
    # registry names (and the derived harness config) eagerly.
    resolve_fuzz_protocol(protocol)
    resolve_fuzz_channel(channel)

    config = config or LoadConfig()
    tracer = current_tracer()
    started = time.perf_counter()
    master = random.Random(seed)
    schedule = [SubSeeds.derive(master) for _ in range(config.sessions)]

    def _serial_batch(start, items):
        return run_session_batch(
            protocol,
            channel,
            start,
            items,
            config,
            capture=tracer.enabled,
            run_timeout=run_timeout,
        ).outcomes

    def _failed(index, subseeds, message):
        return SessionOutcome(
            index=index, subseeds=subseeds, error=message
        )

    sessions: List[SessionOutcome] = []
    with tracer.span("load.run", sessions=len(schedule), seed=seed):
        outcomes, pool_info = run_partitioned(
            schedule,
            serial_batch=_serial_batch,
            pool_task=_load_pool_batch,
            initializer=_init_load_worker,
            initargs=(
                protocol,
                channel,
                config,
                tracer.enabled,
                run_timeout,
            ),
            failed_outcome=_failed,
            workers=workers,
            batch_size=batch_size,
        )
        if tracer.enabled:
            tracer.count("load.sessions_scheduled", len(schedule))
        for outcome in outcomes:
            with tracer.span("load.session", index=outcome.index):
                tracer.absorb(outcome.events)
                outcome.events = ()  # absorbed; free the chunk
                sessions.append(outcome)
                if tracer.enabled:
                    shard = outcome.index // pool_info.batch_size
                    tracer.count("load.sessions")
                    tracer.count("load.shard.sessions", 1, shard=shard)
                    if outcome.error is not None:
                        tracer.count("load.failed_sessions")
                    tracer.gauge("load.sessions_done", len(sessions))
                    tracer.gauge(
                        "load.sessions_active",
                        len(schedule) - len(sessions),
                    )

    return LoadResult(
        protocol=protocol,
        channel=channel,
        seed=seed,
        config=config,
        sessions=sessions,
        pool={
            "mode": pool_info.mode,
            "workers": max(1, int(workers)),
            "batch_size": pool_info.batch_size,
            "batches": pool_info.batches,
            "run_timeout": run_timeout,
            **(
                {"fallback_reason": pool_info.fallback_reason}
                if pool_info.fallback_reason
                else {}
            ),
        },
        duration_s=time.perf_counter() - started,
    )


def normalized_report(report_dict: Dict) -> Dict:
    """A load RunReport dict with the wall-clock keys normalized away.

    This is the identity the ``--workers N`` contract is stated over:
    ``normalized_report(serial) == normalized_report(pooled)``.
    """
    import copy

    normalized = copy.deepcopy(report_dict)
    normalized["duration_s"] = None
    normalized.get("details", {}).pop("pool", None)
    normalized.get("details", {}).pop("throughput", None)
    return normalized
