"""Simulation harness: sessions, schedulers, faults, metrics, load.

The public construction surface is the :class:`Session` façade
(:mod:`repro.sim.session`); :mod:`repro.sim.load` multiplexes
thousands of such sessions through the batched warm-worker pool.
"""

# Anchor the sim <-> datalink import cycle: datalink.correctness
# imports our faults/runner modules mid-initialization, which fails if
# *this* package started the chain (``import repro.sim`` first).
# Loading the datalink package up front pins a working resolution
# order; it is a no-op whenever datalink is already imported.
from .. import datalink as _datalink  # noqa: F401
from .faults import FaultPlan, GeneratedScript, crash_storm, generate_script
from .metrics import (
    ChannelStats,
    DeliveryStats,
    channel_stats,
    delivery_stats,
    distinct_headers_used,
    percentile,
    percentile_summary,
)
from .network import (
    DataLinkSystem,
    custom_system,
    fifo_system,
    permissive_system,
)
from .runner import ScenarioResult, run_batch, run_scenario
from .scheduler import (
    behaviors_under_schedules,
    deterministic_tie_break,
    seeded_tie_break,
)
from .session import Session

__all__ = [
    "ChannelStats",
    "DataLinkSystem",
    "DeliveryStats",
    "FaultPlan",
    "GeneratedScript",
    "ScenarioResult",
    "Session",
    "behaviors_under_schedules",
    "channel_stats",
    "crash_storm",
    "custom_system",
    "delivery_stats",
    "deterministic_tie_break",
    "distinct_headers_used",
    "fifo_system",
    "generate_script",
    "percentile",
    "percentile_summary",
    "permissive_system",
    "run_batch",
    "run_scenario",
    "seeded_tie_break",
]
