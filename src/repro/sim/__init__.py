"""Simulation harness: composed systems, schedulers, faults, metrics."""

from .faults import FaultPlan, GeneratedScript, crash_storm, generate_script
from .metrics import (
    ChannelStats,
    DeliveryStats,
    channel_stats,
    delivery_stats,
    distinct_headers_used,
)
from .network import (
    DataLinkSystem,
    custom_system,
    fifo_system,
    permissive_system,
)
from .runner import ScenarioResult, run_batch, run_scenario
from .scheduler import (
    behaviors_under_schedules,
    deterministic_tie_break,
    seeded_tie_break,
)

__all__ = [
    "ChannelStats",
    "DataLinkSystem",
    "DeliveryStats",
    "FaultPlan",
    "GeneratedScript",
    "ScenarioResult",
    "behaviors_under_schedules",
    "channel_stats",
    "crash_storm",
    "custom_system",
    "delivery_stats",
    "deterministic_tie_break",
    "distinct_headers_used",
    "fifo_system",
    "generate_script",
    "permissive_system",
    "run_batch",
    "run_scenario",
    "seeded_tie_break",
]
