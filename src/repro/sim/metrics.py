"""Metrics extracted from executions: deliveries, latency, header census.

These operate on full execution fragments of a composed data-link
system (so they can see the hidden ``send_pkt``/``receive_pkt`` events
as well as the external data-link actions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..alphabets import Message, Packet
from ..ioa.execution import ExecutionFragment
from ..obs import current_tracer
from ..channels.actions import RECEIVE_PKT, SEND_PKT
from ..datalink.actions import RECEIVE_MSG, SEND_MSG
from ..datalink.message_independence import packet_class


@dataclass
class DeliveryStats:
    """Per-run delivery statistics."""

    sent: int
    delivered: int
    duplicates: int
    latencies: Tuple[int, ...]  # steps from send_msg to receive_msg

    @property
    def delivery_ratio(self) -> float:
        """Delivered / sent; degenerate cases pinned explicitly.

        With nothing sent, an empty trace is vacuously perfect (1.0),
        but a trace that *delivered* without any send -- e.g. a
        duplicate-only fragment sliced after its sends -- is an anomaly
        and reports 0.0, never a ratio above 1.
        """
        if self.sent:
            return self.delivered / self.sent
        return 0.0 if self.delivered else 1.0

    @property
    def mean_latency(self) -> float:
        return (
            sum(self.latencies) / len(self.latencies)
            if self.latencies
            else 0.0
        )


@dataclass
class ChannelStats:
    """Per-run packet-level statistics for one channel direction."""

    packets_sent: int
    packets_received: int
    distinct_headers: int
    header_census: Dict[object, int] = field(default_factory=dict)

    @property
    def loss_ratio(self) -> float:
        if not self.packets_sent:
            return 0.0
        return 1.0 - self.packets_received / self.packets_sent


def delivery_stats(
    fragment: ExecutionFragment, t: str = "t", r: str = "r"
) -> DeliveryStats:
    """Delivery counts and latencies from a full execution fragment."""
    send_key = (SEND_MSG, (t, r))
    receive_key = (RECEIVE_MSG, (t, r))
    send_index: Dict[Message, int] = {}
    delivered: Dict[Message, int] = {}
    duplicates = 0
    latencies: List[int] = []
    for index, action in enumerate(fragment.actions):
        if action.key == send_key:
            send_index.setdefault(action.payload, index)
        elif action.key == receive_key:
            message = action.payload
            if message in delivered:
                duplicates += 1
                continue
            delivered[message] = index
            if message in send_index:
                latencies.append(index - send_index[message])
    if delivered and not send_index:
        # Deliveries with no send in view: flag it on the event stream
        # so traced runs surface the anomaly instead of a silent 0.0.
        current_tracer().count(
            "sim.anomaly.unsent_delivery", len(delivered)
        )
    return DeliveryStats(
        sent=len(send_index),
        delivered=len(delivered),
        duplicates=duplicates,
        latencies=tuple(latencies),
    )


def channel_stats(
    fragment: ExecutionFragment, src: str, dst: str
) -> ChannelStats:
    """Packet counts and header census for one channel direction."""
    send_key = (SEND_PKT, (src, dst))
    receive_key = (RECEIVE_PKT, (src, dst))
    sent = 0
    received = 0
    census: Dict[object, int] = {}
    for action in fragment.actions:
        if action.key == send_key:
            sent += 1
            packet: Packet = action.payload
            cls = packet_class(packet)
            census[cls] = census.get(cls, 0) + 1
        elif action.key == receive_key:
            received += 1
    return ChannelStats(
        packets_sent=sent,
        packets_received=received,
        distinct_headers=len(census),
        header_census=census,
    )


def distinct_headers_used(
    fragment: ExecutionFragment, src: str = "t", dst: str = "r"
) -> int:
    """How many distinct packet classes the protocol used on a channel.

    This is the measurable form of the Section 9 discussion: Stenning's
    protocol uses a number of headers linear in the number of messages,
    while sliding-window protocols use O(1).
    """
    return channel_stats(fragment, src, dst).distinct_headers
