"""Metrics extracted from executions: deliveries, latency, header census.

These operate on full execution fragments of a composed data-link
system (so they can see the hidden ``send_pkt``/``receive_pkt`` events
as well as the external data-link actions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..alphabets import Message, Packet
from ..ioa.execution import ExecutionFragment
from ..obs import current_tracer
from ..channels.actions import RECEIVE_PKT, SEND_PKT
from ..datalink.actions import RECEIVE_MSG, SEND_MSG
from ..datalink.message_independence import packet_class


@dataclass
class DeliveryStats:
    """Per-run delivery statistics."""

    sent: int
    delivered: int
    duplicates: int
    latencies: Tuple[int, ...]  # steps from send_msg to receive_msg

    @property
    def delivery_ratio(self) -> float:
        """Delivered / sent; degenerate cases pinned explicitly.

        With nothing sent, an empty trace is vacuously perfect (1.0),
        but a trace that *delivered* without any send -- e.g. a
        duplicate-only fragment sliced after its sends -- is an anomaly
        and reports 0.0, never a ratio above 1.
        """
        if self.sent:
            return self.delivered / self.sent
        return 0.0 if self.delivered else 1.0

    @property
    def mean_latency(self) -> float:
        return (
            sum(self.latencies) / len(self.latencies)
            if self.latencies
            else 0.0
        )


@dataclass
class ChannelStats:
    """Per-run packet-level statistics for one channel direction."""

    packets_sent: int
    packets_received: int
    distinct_headers: int
    header_census: Dict[object, int] = field(default_factory=dict)

    @property
    def loss_ratio(self) -> float:
        if not self.packets_sent:
            return 0.0
        return 1.0 - self.packets_received / self.packets_sent


def delivery_stats(
    fragment: ExecutionFragment, t: str = "t", r: str = "r"
) -> DeliveryStats:
    """Delivery counts and latencies from a full execution fragment."""
    send_key = (SEND_MSG, (t, r))
    receive_key = (RECEIVE_MSG, (t, r))
    send_index: Dict[Message, int] = {}
    delivered: Dict[Message, int] = {}
    duplicates = 0
    latencies: List[int] = []
    for index, action in enumerate(fragment.actions):
        if action.key == send_key:
            send_index.setdefault(action.payload, index)
        elif action.key == receive_key:
            message = action.payload
            if message in delivered:
                duplicates += 1
                continue
            delivered[message] = index
            if message in send_index:
                latencies.append(index - send_index[message])
    if delivered and not send_index:
        # Deliveries with no send in view: flag it on the event stream
        # so traced runs surface the anomaly instead of a silent 0.0.
        current_tracer().count(
            "sim.anomaly.unsent_delivery", len(delivered)
        )
    return DeliveryStats(
        sent=len(send_index),
        delivered=len(delivered),
        duplicates=duplicates,
        latencies=tuple(latencies),
    )


def channel_stats(
    fragment: ExecutionFragment, src: str, dst: str
) -> ChannelStats:
    """Packet counts and header census for one channel direction."""
    send_key = (SEND_PKT, (src, dst))
    receive_key = (RECEIVE_PKT, (src, dst))
    sent = 0
    received = 0
    census: Dict[object, int] = {}
    for action in fragment.actions:
        if action.key == send_key:
            sent += 1
            packet: Packet = action.payload
            cls = packet_class(packet)
            census[cls] = census.get(cls, 0) + 1
        elif action.key == receive_key:
            received += 1
    return ChannelStats(
        packets_sent=sent,
        packets_received=received,
        distinct_headers=len(census),
        header_census=census,
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: the smallest sample value that at
    least ``q`` percent of the sample is less than or equal to.

    Exact on small samples (no interpolation), which is what lets the
    load generator's aggregate reports stay byte-identical across
    worker counts: ``percentile([10, 20, 30, 40], 50) == 20`` --
    ``ceil(0.50 * 4) = 2``, so the 2nd-smallest value -- and
    ``percentile(values, 100)`` is always ``max(values)``.  An empty
    sample reports 0.0 (a load run with no delivered messages has no
    latency distribution, not an error).
    """
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(len(ordered) * q / 100.0))
    return ordered[rank - 1]


def percentile_summary(
    values: Sequence[float], qs: Sequence[float] = (50, 95, 99)
) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` via :func:`percentile`."""
    return {f"p{q:g}": percentile(values, q) for q in qs}


def distinct_headers_used(
    fragment: ExecutionFragment, src: str = "t", dst: str = "r"
) -> int:
    """How many distinct packet classes the protocol used on a channel.

    This is the measurable form of the Section 9 discussion: Stenning's
    protocol uses a number of headers linear in the number of messages,
    while sliding-window protocols use O(1).
    """
    return channel_stats(fragment, src, dst).distinct_headers
