"""High-level simulation runner.

Drives a :class:`~repro.sim.network.DataLinkSystem` through an input
script with realistic interleaving: after each input action the system
runs a random (seeded) number of fair steps before the next input
arrives, and after the last input it runs fairly to quiescence.  This
explores fault timings that the simple "all inputs, then run" pattern
cannot reach (e.g. crashes while packets are in flight).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..ioa.actions import Action
from ..ioa.execution import ExecutionFragment
from ..ioa.fairness import FairnessTimeout, run_to_quiescence
from ..channels.actions import CRASH, FAIL
from ..obs import STATUS_OK, RunReport, current_tracer
from .network import DataLinkSystem


@dataclass
class ScenarioResult:
    """Outcome of one simulated scenario."""

    fragment: ExecutionFragment
    behavior: Tuple[Action, ...]
    quiescent: bool

    @property
    def steps(self) -> int:
        return len(self.fragment)

    def report(
        self, duration_s: float = 0.0, t: str = "t", r: str = "r"
    ) -> RunReport:
        """This scenario as the unified :class:`~repro.obs.RunReport`.

        The status is ``ok`` -- a scenario that ran to completion is a
        successful run whatever the protocol did; correctness verdicts
        come from the trace auditors, which the CLI folds in on top.
        """
        from .metrics import channel_stats, delivery_stats

        stats = delivery_stats(self.fragment, t, r)
        counters = {
            "sim.steps": self.steps,
            "sim.messages_sent": stats.sent,
            "sim.messages_delivered": stats.delivered,
            "sim.duplicate_deliveries": stats.duplicates,
            "sim.packets_dropped": _dropped(
                channel_stats(self.fragment, t, r)
            )
            + _dropped(channel_stats(self.fragment, r, t)),
        }
        return RunReport(
            command="simulate",
            status=STATUS_OK,
            counters=counters,
            duration_s=duration_s,
            details={
                "steps": self.steps,
                "quiescent": self.quiescent,
                "sent": stats.sent,
                "delivered": stats.delivered,
                "duplicates": stats.duplicates,
                "delivery_ratio": stats.delivery_ratio,
            },
        )


def _dropped(stats) -> int:
    """Packets that left a channel's send side and never arrived."""
    return max(0, stats.packets_sent - stats.packets_received)


def run_scenario(
    system: DataLinkSystem,
    script: Iterable[Action],
    seed: int = 0,
    max_interleave: int = 8,
    max_steps: int = 200_000,
    rng: Optional[random.Random] = None,
) -> ScenarioResult:
    """Run a script with seeded interleaving, then drain to quiescence.

    ``max_interleave`` bounds how many fair (locally-controlled) steps
    may run between consecutive inputs.  The final drain runs to
    quiescence; if the step budget is exhausted the result is flagged
    non-quiescent rather than raising.  Passing ``rng`` makes the
    interleaving draw from a caller-owned :class:`random.Random`
    instead of a fresh one derived from ``seed``.
    """
    rng = rng if rng is not None else random.Random(seed)
    fragment = ExecutionFragment.initial(system.initial_state())
    budget = max_steps
    tracer = current_tracer()
    with tracer.span("sim.scenario", seed=seed):
        for action in script:
            with tracer.span("sim.step", action=str(action)):
                if tracer.enabled:
                    tracer.count("sim.inputs")
                    if action.name == CRASH:
                        tracer.count("sim.crash_injections")
                    elif action.name == FAIL:
                        tracer.count("sim.fail_injections")
                state = system.automaton.step(fragment.final_state, action)
                fragment = fragment.append(action, state)
                slack = rng.randrange(max_interleave + 1)
                if slack:
                    try:
                        burst = run_to_quiescence(
                            system.automaton,
                            fragment.final_state,
                            max_steps=slack,
                        )
                    except FairnessTimeout as exc:
                        burst = exc.fragment
                    fragment = fragment.extend(burst)
            budget = max_steps - len(fragment)
            if budget <= 0:
                return _finish(
                    system, fragment, quiescent=False, tracer=tracer
                )
        quiescent = True
        try:
            drain = run_to_quiescence(
                system.automaton, fragment.final_state, max_steps=budget
            )
        except FairnessTimeout as exc:
            drain = exc.fragment
            quiescent = False
        fragment = fragment.extend(drain)
        return _finish(system, fragment, quiescent, tracer)


def _finish(
    system: DataLinkSystem,
    fragment: ExecutionFragment,
    quiescent: bool,
    tracer,
) -> ScenarioResult:
    """Build the result; emit the packet-level counters when tracing."""
    result = ScenarioResult(fragment, system.behavior(fragment), quiescent)
    if tracer.enabled:
        from .metrics import channel_stats, delivery_stats

        stats = delivery_stats(fragment, system.t, system.r)
        tracer.count("sim.steps", len(fragment))
        tracer.count("sim.messages_delivered", stats.delivered)
        tracer.count("sim.duplicate_deliveries", stats.duplicates)
        dropped = _dropped(
            channel_stats(fragment, system.t, system.r)
        ) + _dropped(channel_stats(fragment, system.r, system.t))
        tracer.count("sim.packets_dropped", dropped)
        if not quiescent:
            tracer.count("sim.nonquiescent_runs")
    return result


def run_batch(
    build_system,
    build_script,
    seeds: Iterable[int],
    **scenario_kwargs,
) -> Tuple[ScenarioResult, ...]:
    """Run one scenario per seed with fresh systems.

    ``build_system(seed)`` returns a :class:`DataLinkSystem`;
    ``build_script(system, seed)`` returns the input script.
    """
    results = []
    for seed in seeds:
        system = build_system(seed)
        script = build_script(system, seed)
        results.append(
            run_scenario(system, script, seed=seed, **scenario_kwargs)
        )
    return tuple(results)
