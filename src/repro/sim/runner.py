"""High-level simulation runner (legacy surface over the Session façade).

The scenario-driving loop -- script inputs interleaved with a random
(seeded) number of fair steps, then a drain to quiescence -- lives in
:class:`repro.sim.session.Session`.  This module keeps the historical
entry points: :class:`ScenarioResult` (what a run returns),
:func:`run_scenario` (a thin deprecation shim with its original
signature, so existing callers keep working) and :func:`run_batch`.
New code should construct a ``Session`` and call ``run()``.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..ioa.actions import Action
from ..ioa.execution import ExecutionFragment
from ..obs import STATUS_OK, RunReport


@dataclass
class ScenarioResult:
    """Outcome of one simulated scenario."""

    fragment: ExecutionFragment
    behavior: Tuple[Action, ...]
    quiescent: bool

    @property
    def steps(self) -> int:
        return len(self.fragment)

    def distinct_states(self) -> list:
        """The run's distinct visited states, first-occurrence order.

        Deduplicated through a
        :class:`~repro.ioa.engine.encoding.StreamEncoder`: consecutive
        states of an execution share almost all their slice objects, so
        the common probe is a pointer lookup and each distinct slice is
        deep-hashed once -- the representation the fuzz pool ships its
        coverage fingerprints from.
        """
        from ..ioa.engine.encoding import StreamEncoder

        return StreamEncoder().distinct(self.fragment.states)

    def report(
        self,
        duration_s: float = 0.0,
        *legacy_stations,
        stations: Tuple[str, str] = ("t", "r"),
        **legacy,
    ) -> RunReport:
        """This scenario as the unified :class:`~repro.obs.RunReport`.

        ``stations`` names the (transmitter, receiver) pair the
        delivery and channel statistics are computed over.  The
        pre-redesign form -- separate ``t=``/``r=`` keywords, or the
        station names passed positionally after ``duration_s`` -- is
        still accepted but emits a :class:`DeprecationWarning`.

        The status is ``ok`` -- a scenario that ran to completion is a
        successful run whatever the protocol did; correctness verdicts
        come from the trace auditors, which the CLI folds in on top.
        """
        if legacy_stations or legacy:
            unknown = set(legacy) - {"t", "r"}
            if unknown or len(legacy_stations) > 2:
                raise TypeError(
                    "report() accepts stations=(t, r); unexpected "
                    f"arguments: {sorted(unknown) or legacy_stations}"
                )
            warnings.warn(
                "ScenarioResult.report(duration_s, t=..., r=...) is "
                "deprecated; pass stations=(t, r) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            t, r = stations
            if legacy_stations:
                t = legacy_stations[0]
                if len(legacy_stations) > 1:
                    r = legacy_stations[1]
            stations = (legacy.get("t", t), legacy.get("r", r))
        from .metrics import channel_stats, delivery_stats

        t, r = stations
        stats = delivery_stats(self.fragment, t, r)
        counters = {
            "sim.steps": self.steps,
            "sim.messages_sent": stats.sent,
            "sim.messages_delivered": stats.delivered,
            "sim.duplicate_deliveries": stats.duplicates,
            "sim.packets_dropped": _dropped(
                channel_stats(self.fragment, t, r)
            )
            + _dropped(channel_stats(self.fragment, r, t)),
        }
        return RunReport(
            command="simulate",
            status=STATUS_OK,
            counters=counters,
            duration_s=duration_s,
            details={
                "steps": self.steps,
                "quiescent": self.quiescent,
                "sent": stats.sent,
                "delivered": stats.delivered,
                "duplicates": stats.duplicates,
                "delivery_ratio": stats.delivery_ratio,
            },
        )


def _dropped(stats) -> int:
    """Packets that left a channel's send side and never arrived."""
    return max(0, stats.packets_sent - stats.packets_received)


def run_scenario(
    system,
    script: Iterable[Action],
    seed: int = 0,
    max_interleave: int = 8,
    max_steps: int = 200_000,
    rng: Optional[random.Random] = None,
) -> ScenarioResult:
    """Run a script with seeded interleaving, then drain to quiescence.

    Deprecation shim kept with its original signature: it now simply
    wraps :class:`repro.sim.session.Session`, which is where the
    semantics (and their documentation) live.  Prefer
    ``Session(system, tuple(script), seed=seed).run()`` in new code.
    """
    from .session import Session

    return Session(
        system=system,
        script=tuple(script),
        seed=seed,
        max_interleave=max_interleave,
        max_steps=max_steps,
        rng=rng,
    ).run()


def run_batch(
    build_system,
    build_script,
    seeds: Iterable[int],
    **scenario_kwargs,
) -> Tuple[ScenarioResult, ...]:
    """Run one scenario per seed with fresh systems.

    ``build_system(seed)`` returns a :class:`DataLinkSystem`;
    ``build_script(system, seed)`` returns the input script.
    """
    results = []
    for seed in seeds:
        system = build_system(seed)
        script = build_script(system, seed)
        results.append(
            run_scenario(system, script, seed=seed, **scenario_kwargs)
        )
    return tuple(results)
