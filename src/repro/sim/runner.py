"""High-level simulation runner.

Drives a :class:`~repro.sim.network.DataLinkSystem` through an input
script with realistic interleaving: after each input action the system
runs a random (seeded) number of fair steps before the next input
arrives, and after the last input it runs fairly to quiescence.  This
explores fault timings that the simple "all inputs, then run" pattern
cannot reach (e.g. crashes while packets are in flight).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Tuple

from ..ioa.actions import Action
from ..ioa.execution import ExecutionFragment
from ..ioa.fairness import FairnessTimeout, run_to_quiescence
from .network import DataLinkSystem


@dataclass
class ScenarioResult:
    """Outcome of one simulated scenario."""

    fragment: ExecutionFragment
    behavior: Tuple[Action, ...]
    quiescent: bool

    @property
    def steps(self) -> int:
        return len(self.fragment)


def run_scenario(
    system: DataLinkSystem,
    script: Iterable[Action],
    seed: int = 0,
    max_interleave: int = 8,
    max_steps: int = 200_000,
) -> ScenarioResult:
    """Run a script with seeded interleaving, then drain to quiescence.

    ``max_interleave`` bounds how many fair (locally-controlled) steps
    may run between consecutive inputs.  The final drain runs to
    quiescence; if the step budget is exhausted the result is flagged
    non-quiescent rather than raising.
    """
    rng = random.Random(seed)
    fragment = ExecutionFragment.initial(system.initial_state())
    budget = max_steps
    for action in script:
        state = system.automaton.step(fragment.final_state, action)
        fragment = fragment.append(action, state)
        slack = rng.randrange(max_interleave + 1)
        if slack:
            try:
                burst = run_to_quiescence(
                    system.automaton,
                    fragment.final_state,
                    max_steps=slack,
                )
            except FairnessTimeout as exc:
                burst = exc.fragment
            fragment = fragment.extend(burst)
        budget = max_steps - len(fragment)
        if budget <= 0:
            return ScenarioResult(
                fragment, system.behavior(fragment), quiescent=False
            )
    quiescent = True
    try:
        drain = run_to_quiescence(
            system.automaton, fragment.final_state, max_steps=budget
        )
    except FairnessTimeout as exc:
        drain = exc.fragment
        quiescent = False
    fragment = fragment.extend(drain)
    return ScenarioResult(fragment, system.behavior(fragment), quiescent)


def run_batch(
    build_system,
    build_script,
    seeds: Iterable[int],
    **scenario_kwargs,
) -> Tuple[ScenarioResult, ...]:
    """Run one scenario per seed with fresh systems.

    ``build_system(seed)`` returns a :class:`DataLinkSystem`;
    ``build_script(system, seed)`` returns the input script.
    """
    results = []
    for seed in seeds:
        system = build_system(seed)
        script = build_script(system, seed)
        results.append(
            run_scenario(system, script, seed=seed, **scenario_kwargs)
        )
    return tuple(results)
