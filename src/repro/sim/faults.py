"""Fault-injection input scripts for data-link systems.

Generates well-formed environment scripts (sequences of input actions)
for a :class:`~repro.sim.network.DataLinkSystem`: message submissions
interleaved with ``fail``/``wake`` cycles and host crashes.  Scripts are
deterministic in their seed and always satisfy the environment
obligations of the ``DL`` specification:

* well-formedness -- per direction, ``wake``/``fail`` alternate strictly
  starting with ``wake``, with crashes resetting the alternation;
* (DL2) -- ``send_msg`` only while the transmitter direction is awake;
* (DL3) -- all messages are fresh.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..alphabets import Message, MessageFactory
from ..ioa.actions import Action
from .network import DataLinkSystem


@dataclass
class FaultPlan:
    """Knobs for script generation.

    Probabilities are per-event; at each script position the generator
    chooses among send / fail-wake cycle / crash according to these
    weights (sends dominate by default).
    """

    messages: int = 10
    fail_probability: float = 0.0
    receiver_fail_probability: float = 0.0
    crash_probability: float = 0.0
    crash_transmitter: bool = True
    crash_receiver: bool = True
    link_flap_probability: float = 0.0
    link_partition_probability: float = 0.0
    seed: int = 0


@dataclass
class GeneratedScript:
    """An input script plus bookkeeping for later property checks."""

    actions: Tuple[Action, ...]
    messages: Tuple[Message, ...]
    crash_count: int = 0
    fail_cycles: int = 0
    link_flaps: int = 0
    link_partitions: int = 0

    @property
    def has_faults(self) -> bool:
        return (
            self.crash_count > 0
            or self.fail_cycles > 0
            or self.link_flaps > 0
            or self.link_partitions > 0
        )


def generate_script(
    system: DataLinkSystem,
    plan: FaultPlan,
    factory: Optional[MessageFactory] = None,
    rng: Optional[random.Random] = None,
) -> GeneratedScript:
    """Generate a well-formed input script according to ``plan``.

    All randomness comes from ``rng`` (defaulting to a fresh
    ``random.Random(plan.seed)``); the module never touches the global
    RNG, so callers that thread one instance through script generation,
    interleaving and channel construction get bit-identical runs.
    """
    rng = rng if rng is not None else random.Random(plan.seed)
    factory = factory or MessageFactory(label="s")
    actions: List[Action] = [system.wake_t(), system.wake_r()]
    messages: List[Message] = []
    crash_count = 0
    fail_cycles = 0
    link_flaps = 0
    link_partitions = 0
    sent = 0
    while sent < plan.messages:
        roll = rng.random()
        if roll < plan.crash_probability:
            targets = []
            if plan.crash_transmitter:
                targets.append("t")
            if plan.crash_receiver:
                targets.append("r")
            if targets:
                station = rng.choice(targets)
                crash_count += 1
                if station == "t":
                    # A crash delimits the alternation; wake again so that
                    # later sends fall in a working interval.
                    actions.extend([system.crash_t(), system.wake_t()])
                else:
                    actions.extend([system.crash_r(), system.wake_r()])
                continue
        if roll < plan.crash_probability + plan.fail_probability:
            # A bounded outage on the transmitter direction.
            fail_cycles += 1
            actions.extend([system.fail_t(), system.wake_t()])
            continue
        if roll < (
            plan.crash_probability
            + plan.fail_probability
            + plan.receiver_fail_probability
        ):
            # A bounded outage on the receiver direction.
            fail_cycles += 1
            actions.extend([system.fail_r(), system.wake_r()])
            continue
        # The dynamic-link windows sit after the legacy ones, so a plan
        # with zero link probabilities generates byte-identical scripts
        # to the pre-dynamic-link generator under the same seed.
        ladder = (
            plan.crash_probability
            + plan.fail_probability
            + plan.receiver_fail_probability
        )
        if roll < ladder + plan.link_flap_probability:
            # Link flap: one direction goes down and comes back up.
            link_flaps += 1
            if rng.choice(("t", "r")) == "t":
                actions.extend([system.fail_t(), system.wake_t()])
            else:
                actions.extend([system.fail_r(), system.wake_r()])
            continue
        if roll < (
            ladder
            + plan.link_flap_probability
            + plan.link_partition_probability
        ):
            # Link partition: both directions down simultaneously, then
            # both restored (the dynamic-link "network split" event).
            link_partitions += 1
            actions.extend(
                [
                    system.fail_t(),
                    system.fail_r(),
                    system.wake_t(),
                    system.wake_r(),
                ]
            )
            continue
        message = factory.fresh()
        messages.append(message)
        actions.append(system.send(message))
        sent += 1
    return GeneratedScript(
        tuple(actions),
        tuple(messages),
        crash_count,
        fail_cycles,
        link_flaps,
        link_partitions,
    )


def crash_storm(
    system: DataLinkSystem,
    crashes: int,
    messages_between: int = 2,
    seed: int = 0,
    factory: Optional[MessageFactory] = None,
    rng: Optional[random.Random] = None,
) -> GeneratedScript:
    """A script alternating bursts of sends with host crashes.

    Used by the non-volatile-memory experiments (E5): after each crash
    both stations are woken and a fresh burst of messages is submitted.
    """
    rng = rng if rng is not None else random.Random(seed)
    factory = factory or MessageFactory(label="s")
    actions: List[Action] = [system.wake_t(), system.wake_r()]
    messages: List[Message] = []

    def burst() -> None:
        for _ in range(messages_between):
            message = factory.fresh()
            messages.append(message)
            actions.append(system.send(message))

    burst()
    for _ in range(crashes):
        if rng.random() < 0.5:
            actions.extend([system.crash_t(), system.wake_t()])
        else:
            actions.extend([system.crash_r(), system.wake_r()])
        burst()
    return GeneratedScript(
        tuple(actions), tuple(messages), crash_count=crashes
    )
