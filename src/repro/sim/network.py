"""Composed data-link systems: D(A), D-hat'(A), D-bar'(A) (paper, Section 6).

``DataLinkSystem`` wires a data link protocol ``A = (A^t, A^r)`` to two
physical channels and hides the packet actions, producing the automaton
``D'(A) = hide_Phi(A^t x A^r x C^{t,r} x C^{r,t})`` whose external actions
are exactly the data-link-layer actions.  It also exposes the channel
states for the adversary surgeries of Section 6.3, which is how the
impossibility engines manipulate executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

from ..alphabets import Message
from ..ioa.actions import Action
from ..ioa.automaton import State
from ..ioa.composition import Composition
from ..ioa.execution import ExecutionFragment
from ..ioa.fairness import apply_inputs, fair_extension
from ..ioa.hiding import Hidden
from ..channels.actions import crash, fail, packet_families, wake
from ..channels.delivery_set import DeliverySet
from ..channels.permissive import (
    PermissiveChannel,
    PermissiveChannelState,
    PermissiveFifoChannel,
)
from ..datalink.actions import receive_msg, send_msg
from ..datalink.protocol import (
    DataLinkProtocol,
    HostState,
    ReceiverAutomaton,
    TransmitterAutomaton,
)

# Component indices in the composed state vector.
TRANSMITTER = 0
RECEIVER = 1
CHANNEL_TR = 2
CHANNEL_RT = 3


@dataclass
class DataLinkSystem:
    """A data link protocol composed with two physical channels.

    The composed state is the 4-tuple (transmitter, receiver, channel
    t->r, channel r->t).  ``automaton`` is the hidden composition
    ``D'(A)`` whose behaviors are data-link-layer behaviors.
    """

    t: str
    r: str
    protocol: DataLinkProtocol
    transmitter: TransmitterAutomaton
    receiver: ReceiverAutomaton
    channel_tr: PermissiveChannel
    channel_rt: PermissiveChannel
    composition: Composition
    automaton: Hidden

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def build(
        protocol: DataLinkProtocol,
        channel_tr: PermissiveChannel,
        channel_rt: PermissiveChannel,
        t: str = "t",
        r: str = "r",
        ghost_uids: bool = True,
    ) -> "DataLinkSystem":
        transmitter, receiver = protocol.build(t, r, ghost_uids=ghost_uids)
        composition = Composition(
            [transmitter, receiver, channel_tr, channel_rt],
            name=f"D({protocol.name})",
        )
        hidden = Hidden(
            composition, packet_families(t, r) + packet_families(r, t)
        )
        return DataLinkSystem(
            t,
            r,
            protocol,
            transmitter,
            receiver,
            channel_tr,
            channel_rt,
            composition,
            hidden,
        )

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    def initial_state(self) -> State:
        return self.composition.initial_state()

    def host_state(self, state: State, station: str) -> HostState:
        """The protocol automaton state at station ``t`` or ``r``."""
        index = TRANSMITTER if station == self.t else RECEIVER
        return state[index]

    def host_core(self, state: State, station: str):
        return self.host_state(state, station).core

    def channel(self, src: str) -> PermissiveChannel:
        """The physical channel whose transmitting end is ``src``."""
        return self.channel_tr if src == self.t else self.channel_rt

    def channel_index(self, src: str) -> int:
        return CHANNEL_TR if src == self.t else CHANNEL_RT

    def channel_state(self, state: State, src: str) -> PermissiveChannelState:
        return state[self.channel_index(src)]

    def with_channel_state(
        self, state: State, src: str, channel_state: PermissiveChannelState
    ) -> State:
        index = self.channel_index(src)
        return state[:index] + (channel_state,) + state[index + 1 :]

    # ------------------------------------------------------------------
    # Adversary surgeries (Section 6.3), lifted to system states
    # ------------------------------------------------------------------

    def clean_channel(self, state: State, src: str) -> State:
        """Lemma 6.3 on one channel: lose everything in transit."""
        channel = self.channel(src)
        return self.with_channel_state(
            state, src, channel.make_clean(self.channel_state(state, src))
        )

    def clean_channels(self, state: State) -> State:
        """Lemma 6.3 on both channels."""
        return self.clean_channel(self.clean_channel(state, self.t), self.r)

    def channels_clean(self, state: State) -> bool:
        return (
            self.channel_state(state, self.t).is_clean()
            and self.channel_state(state, self.r).is_clean()
        )

    def set_waiting(
        self, state: State, src: str, indices: Sequence[int]
    ) -> State:
        """Lemmas 6.5-6.7: schedule exactly ``indices`` as next deliveries."""
        channel = self.channel(src)
        return self.with_channel_state(
            state,
            src,
            channel.with_waiting(self.channel_state(state, src), indices),
        )

    # ------------------------------------------------------------------
    # Driving the system
    # ------------------------------------------------------------------

    def run_inputs(self, state: State, actions: Iterable[Action]) -> ExecutionFragment:
        return apply_inputs(self.automaton, state, actions)

    def run_fair(
        self,
        state: State,
        inputs: Iterable[Action] = (),
        max_steps: int = 100_000,
        stop_when: Optional[Callable[[Action], bool]] = None,
    ) -> ExecutionFragment:
        """Lemma 2.1: feed inputs, then run fairly to quiescence."""
        return fair_extension(
            self.automaton,
            ExecutionFragment.initial(state),
            inputs=inputs,
            max_steps=max_steps,
            stop_when=stop_when,
        )

    def behavior(self, fragment: ExecutionFragment) -> Tuple[Action, ...]:
        """The data-link-layer behavior of an execution of ``D'(A)``."""
        return fragment.behavior(self.automaton.signature)

    # ------------------------------------------------------------------
    # Convenience action constructors
    # ------------------------------------------------------------------

    def wake_t(self) -> Action:
        return wake(self.t, self.r)

    def wake_r(self) -> Action:
        return wake(self.r, self.t)

    def fail_t(self) -> Action:
        return fail(self.t, self.r)

    def fail_r(self) -> Action:
        return fail(self.r, self.t)

    def crash_t(self) -> Action:
        return crash(self.t, self.r)

    def crash_r(self) -> Action:
        return crash(self.r, self.t)

    def send(self, message: Message) -> Action:
        return send_msg(self.t, self.r, message)

    def receive(self, message: Message) -> Action:
        return receive_msg(self.t, self.r, message)


def fifo_system(
    protocol: DataLinkProtocol,
    t: str = "t",
    r: str = "r",
    delivery_tr: Optional[DeliverySet] = None,
    delivery_rt: Optional[DeliverySet] = None,
) -> DataLinkSystem:
    """``D-hat'(A)``: the protocol over two permissive FIFO channels."""
    return DataLinkSystem.build(
        protocol,
        PermissiveFifoChannel(t, r, initial_delivery=delivery_tr),
        PermissiveFifoChannel(r, t, initial_delivery=delivery_rt),
        t,
        r,
    )


def permissive_system(
    protocol: DataLinkProtocol,
    t: str = "t",
    r: str = "r",
    delivery_tr: Optional[DeliverySet] = None,
    delivery_rt: Optional[DeliverySet] = None,
) -> DataLinkSystem:
    """``D-bar'(A)``: the protocol over two permissive (non-FIFO) channels."""
    return DataLinkSystem.build(
        protocol,
        PermissiveChannel(t, r, initial_delivery=delivery_tr),
        PermissiveChannel(r, t, initial_delivery=delivery_rt),
        t,
        r,
    )


def custom_system(
    protocol: DataLinkProtocol,
    channel_tr: PermissiveChannel,
    channel_rt: PermissiveChannel,
) -> DataLinkSystem:
    """The protocol over arbitrary given physical channels."""
    return DataLinkSystem.build(
        protocol, channel_tr, channel_rt, channel_tr.src, channel_rt.src
    )
