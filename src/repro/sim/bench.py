"""Sessions/sec benchmark emitter for the multi-session load generator.

Times default load campaigns serially and through the worker pool and
writes the results to ``bench/BENCH_load.json`` so load-generation
throughput is tracked from PR to PR.  Run via::

    python benchmarks/run_experiments.py --bench-load

or programmatically through :func:`write_load_bench_json`.

Every case is cross-checked while it is timed: the serial and pooled
runs' normalized reports (:func:`~repro.sim.load.normalized_report`)
must agree field-for-field, so a benchmark run is also a determinism
test of the session-index merge.  Like the fuzz benchmark, the report
records the *effective* parallelism next to the speedup
(``effective_cpus``, the scheduler-affinity CPU count) and annotates
``"oversubscribed": true`` when ``workers`` exceeds it -- a 1-CPU
container cannot beat serial, however many workers it forks, so a
sub-1.0 speedup number stays readable.
"""

from __future__ import annotations

import json
import os
import sys
import time
from statistics import median
from typing import Dict, Iterable, Tuple

DEFAULT_LOAD_PATH = os.path.join("bench", "BENCH_load.json")

#: (case key, protocol, channel, mix, sessions, messages)
DEFAULT_LOAD_CASES: Tuple[Tuple[str, str, str, str, int, int], ...] = (
    ("abp-fifo", "alternating_bit", "fifo", "default", 300, 4),
    ("abp-nonfifo-dropflood", "alternating_bit", "nonfifo", "drop-flood", 200, 4),
    ("stenning-fifo-crashstorm", "stenning", "fifo", "crash-storm", 200, 3),
)

DEFAULT_WORKERS = 4


def run_load_bench(
    cases: Iterable[
        Tuple[str, str, str, str, int, int]
    ] = DEFAULT_LOAD_CASES,
    repeats: int = 3,
    workers: int = DEFAULT_WORKERS,
    seed: int = 11,
) -> Dict:
    """Benchmark pooled vs. serial load runs on each case."""
    from ..conformance.bench import effective_cpu_count
    from .load import LoadConfig, normalized_report, run_load, with_load_mix

    effective = effective_cpu_count()
    oversubscribed = workers > effective
    if oversubscribed:
        print(
            f"warning: --bench-load with workers={workers} on "
            f"{effective} effective CPU(s): the pool is oversubscribed "
            f"and cannot beat serial; speedups below reflect overhead, "
            f"not scaling",
            file=sys.stderr,
        )
    report: Dict = {
        "generated_by": "repro.sim.bench",
        "repeats": repeats,
        "workers": workers,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "effective_cpus": effective,
        "oversubscribed": oversubscribed,
        "cases": {},
    }
    speedups = []
    for key, protocol, channel, mix, sessions, messages in cases:
        config = with_load_mix(
            LoadConfig(sessions=sessions, messages=messages), mix
        )

        def _timed(run_workers: int):
            timings = []
            result = None
            for _ in range(repeats):
                started = time.perf_counter()
                result = run_load(
                    protocol, channel, seed, config, workers=run_workers
                )
                timings.append(time.perf_counter() - started)
            return median(timings), result

        serial_seconds, serial_result = _timed(1)
        pool_seconds, pool_result = _timed(workers)
        if normalized_report(
            serial_result.report().to_dict()
        ) != normalized_report(pool_result.report().to_dict()):
            raise AssertionError(
                f"{key}: pooled load run diverged from serial"
            )
        speedup = serial_seconds / pool_seconds
        speedups.append(speedup)
        serial_report = serial_result.report()
        report["cases"][key] = {
            "protocol": protocol,
            "channel": channel,
            "mix": mix,
            "sessions": sessions,
            "messages_per_session": messages,
            "steps": serial_report.counters["load.steps"],
            "messages_delivered": serial_report.counters[
                "load.messages_delivered"
            ],
            "latency_p99_steps": serial_report.details["latency"]["p99"],
            "serial_seconds": round(serial_seconds, 6),
            "serial_sessions_per_sec": round(
                sessions / serial_seconds, 1
            ),
            "pool_mode": pool_result.pool.get("mode"),
            "batch_size": pool_result.pool.get("batch_size"),
            "batches": pool_result.pool.get("batches"),
            "pool_seconds": round(pool_seconds, 6),
            "pool_sessions_per_sec": round(sessions / pool_seconds, 1),
            "speedup": round(speedup, 2),
        }
    report["median_speedup"] = round(median(speedups), 2)
    return report


def write_load_bench_json(
    path: str = DEFAULT_LOAD_PATH,
    cases: Iterable[
        Tuple[str, str, str, str, int, int]
    ] = DEFAULT_LOAD_CASES,
    repeats: int = 3,
    workers: int = DEFAULT_WORKERS,
    seed: int = 11,
) -> Dict:
    """Run the load benchmark and write the JSON report to ``path``."""
    report = run_load_bench(
        cases=cases, repeats=repeats, workers=workers, seed=seed
    )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report
