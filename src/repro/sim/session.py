"""Public session façade: one protocol conversation, one ``run()``.

A :class:`Session` bundles everything one data-link conversation needs
-- a composed :class:`~repro.sim.network.DataLinkSystem`, an input
script, and the seeded fair-interleaving knobs -- behind a single
``run()`` entry point.  It is the unit the multi-session load
generator (:mod:`repro.sim.load`) schedules by the thousands, and the
construction façade that used to be smeared across
``resolve_*``/``build_system``/``build_script``/``run_scenario`` call
chains:

* ``Session(system, script, seed=...)`` wraps an already-built system
  (what :func:`~repro.sim.runner.run_scenario` has always taken);
* ``Session.from_spec("alternating_bit", "fifo", seeds)`` builds the
  whole conversation from fuzz-registry names and a per-session
  :class:`~repro.conformance.harness.SubSeeds` bundle (or a plain
  integer master seed), reusing the conformance harness so a load
  session and a fuzz run are constructed identically.

``run()`` drives the script with seeded interleaving -- after each
input the system runs a random (seeded) number of fair steps before
the next input arrives -- then drains to quiescence, exactly the
semantics ``run_scenario`` always had (that function is now a thin
compatibility wrapper over this class).  When ``rng`` is left unset,
every ``run()`` derives a fresh ``random.Random(seed)``, so one
Session can be re-run bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..ioa.actions import Action
from ..ioa.execution import ExecutionFragment
from ..ioa.fairness import FairnessTimeout, run_to_quiescence
from ..channels.actions import CRASH, FAIL
from ..obs import current_tracer
from .network import DataLinkSystem
from .runner import ScenarioResult, _dropped


@dataclass
class Session:
    """One data-link conversation: system + script + interleaving seed.

    ``max_interleave`` bounds how many fair (locally-controlled) steps
    may run between consecutive inputs; ``max_steps`` bounds the whole
    execution (exhausting it flags the result non-quiescent rather
    than raising).  Passing ``rng`` makes the interleaving draw from a
    caller-owned :class:`random.Random` instead of a fresh one derived
    from ``seed`` on each ``run()``.  ``initial_state`` overrides the
    composition's initial state -- the hook the self-stabilization
    workloads use to start a conversation from a corrupted state.
    """

    system: DataLinkSystem
    script: Tuple[Action, ...]
    seed: int = 0
    max_interleave: int = 8
    max_steps: int = 200_000
    rng: Optional[random.Random] = None
    initial_state: Optional[object] = None

    @classmethod
    def from_spec(
        cls,
        protocol: str,
        channel: str,
        seeds,
        config=None,
        resolved=None,
    ) -> "Session":
        """Build a full session from fuzz-registry names.

        ``seeds`` is a :class:`~repro.conformance.harness.SubSeeds`
        bundle (the four independent randomness sources of one
        conversation) or a plain integer, from which a bundle is
        derived the way the fuzzer derives per-run sub-seeds.
        ``config`` is a :class:`~repro.conformance.harness.FuzzConfig`
        supplying the channel adversary and script knobs (defaults
        apply when omitted); ``resolved`` is the warm-worker fast path
        (a :func:`~repro.conformance.harness.resolve_pair` result) that
        skips the registry lookups.
        """
        # Lazy: conformance imports sim, so the façade must not import
        # conformance at module scope.
        from ..conformance.harness import (
            FuzzConfig,
            SubSeeds,
            build_script,
            build_system,
        )

        if isinstance(seeds, int):
            seeds = SubSeeds.derive(random.Random(seeds))
        config = config or FuzzConfig()
        system = build_system(
            protocol, channel, seeds, config, resolved=resolved
        )
        script = build_script(system, seeds, config)
        return cls(
            system=system,
            script=tuple(script.actions),
            seed=seeds.interleave,
            max_interleave=config.max_interleave,
            max_steps=config.max_steps,
        )

    def run(self) -> ScenarioResult:
        """Drive the script with seeded interleaving, drain to quiescence."""
        system = self.system
        rng = (
            self.rng
            if self.rng is not None
            else random.Random(self.seed)
        )
        start = (
            self.initial_state
            if self.initial_state is not None
            else system.initial_state()
        )
        fragment = ExecutionFragment.initial(start)
        budget = self.max_steps
        tracer = current_tracer()
        with tracer.span("sim.scenario", seed=self.seed):
            for action in self.script:
                with tracer.span("sim.step", action=str(action)):
                    if tracer.enabled:
                        tracer.count("sim.inputs")
                        if action.name == CRASH:
                            tracer.count("sim.crash_injections")
                        elif action.name == FAIL:
                            tracer.count("sim.fail_injections")
                    state = system.automaton.step(
                        fragment.final_state, action
                    )
                    fragment = fragment.append(action, state)
                    slack = rng.randrange(self.max_interleave + 1)
                    if slack:
                        try:
                            burst = run_to_quiescence(
                                system.automaton,
                                fragment.final_state,
                                max_steps=slack,
                            )
                        except FairnessTimeout as exc:
                            burst = exc.fragment
                        fragment = fragment.extend(burst)
                budget = self.max_steps - len(fragment)
                if budget <= 0:
                    return self._finish(fragment, False, tracer)
            quiescent = True
            try:
                drain = run_to_quiescence(
                    system.automaton,
                    fragment.final_state,
                    max_steps=budget,
                )
            except FairnessTimeout as exc:
                drain = exc.fragment
                quiescent = False
            fragment = fragment.extend(drain)
            return self._finish(fragment, quiescent, tracer)

    def _finish(
        self,
        fragment: ExecutionFragment,
        quiescent: bool,
        tracer,
    ) -> ScenarioResult:
        """Build the result; emit the packet-level counters when tracing."""
        system = self.system
        result = ScenarioResult(
            fragment, system.behavior(fragment), quiescent
        )
        if tracer.enabled:
            from .metrics import channel_stats, delivery_stats

            stats = delivery_stats(fragment, system.t, system.r)
            tracer.count("sim.steps", len(fragment))
            tracer.count("sim.messages_delivered", stats.delivered)
            tracer.count("sim.duplicate_deliveries", stats.duplicates)
            dropped = _dropped(
                channel_stats(fragment, system.t, system.r)
            ) + _dropped(channel_stats(fragment, system.r, system.t))
            tracer.count("sim.packets_dropped", dropped)
            if not quiescent:
                tracer.count("sim.nonquiescent_runs")
        return result
