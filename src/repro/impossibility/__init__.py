"""The paper's two impossibility results, as constructive engines."""

from .certificates import (
    DUPLICATE_DELIVERY,
    LIVENESS,
    UNSENT_DELIVERY,
    EngineError,
    ViolationCertificate,
)
from .crash_engine import CrashImpossibilityEngine, refute_crash_tolerance
from .header_engine import BoundedHeaderEngine, refute_bounded_headers

__all__ = [
    "BoundedHeaderEngine",
    "CrashImpossibilityEngine",
    "DUPLICATE_DELIVERY",
    "EngineError",
    "LIVENESS",
    "UNSENT_DELIVERY",
    "ViolationCertificate",
    "refute_bounded_headers",
    "refute_crash_tolerance",
]
