"""The crash-impossibility construction (paper, Section 7, Theorem 7.5).

Theorem 7.5: *no data link protocol that is message-independent and
crashing is weakly correct with respect to FIFO physical channels.*

The proof is effective, and this engine executes it against any concrete
protocol satisfying the hypotheses.  Given the protocol it builds the
composed system ``D-hat'(A)`` (protocol + permissive FIFO channels,
packet actions hidden) and then:

1. **Reference execution** ``alpha`` (Lemma 4.1): wake both stations,
   send one message ``m0``, run fairly until ``receive_msg(m0)``, then
   leave both channels clean (Lemma 6.3 surgery).

2. **Pumping** (Lemmas 7.2 and 7.3): walks the alternation chain of
   ``alpha`` backwards to find the levels ``(x_0,k_0), (x_1,k_1), ...``
   and then replays forward: at each level it crashes station ``x_i``
   and replays that station's first ``k_i`` reference steps against the
   live automaton, feeding it the equivalent packets left waiting in the
   channel by the previous level (Lemma 6.6 surgery selects exactly the
   packets the reference station consumed) and fresh messages in place
   of reference messages.  Each replayed step is checked for
   message-independence: the engine asserts an equivalent action is
   enabled and that the post-state is equivalent to the reference state.

3. **Lemma 7.4 end state**: after the final level (a full replay of the
   transmitter's reference steps, ending with ``send_msg(m1)`` for a
   fresh ``m1``), both channels are cleaned.  The constructed schedule
   ``beta`` leaves both stations in states equivalent to the end of
   ``alpha`` -- where every sent message has been delivered -- yet in
   ``beta``'s own history the fresh message ``m1`` is sent and not
   delivered.

4. **Fair extension and contradiction** (Theorem 7.5): run fairly with
   no further inputs.

   - If the system quiesces without delivering anything, ``m1`` is never
     received: the quiescent fair behavior violates **(DL8)** directly
     (a liveness certificate).
   - If some ``receive_msg(m2)`` occurs, the suffix is replayed from the
     *real* end of ``alpha`` under the accumulated message renaming
     (Lemma 7.1): the replay delivers ``receive_msg(m3)`` after
     ``alpha``, where either ``m3 = m0`` (duplicate delivery, violating
     **(DL4)**) or ``m3`` was never sent (violating **(DL5)**).

The output is a :class:`~repro.impossibility.certificates.ViolationCertificate`
whose behavior is re-validated by the independent trace checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..alphabets import Message, MessageFactory, Packet, strip_uids
from ..ioa.actions import Action
from ..ioa.execution import ExecutionFragment
from ..ioa.fairness import FairnessTimeout
from ..channels.actions import (
    CRASH,
    FAIL,
    RECEIVE_PKT,
    SEND_PKT,
    WAKE,
    receive_pkt,
)
from ..datalink.actions import RECEIVE_MSG, SEND_MSG, send_msg
from ..datalink.message_independence import (
    Renaming,
    states_equivalent,
)
from ..datalink.protocol import DataLinkProtocol
from ..obs import current_tracer
from ..sim.network import DataLinkSystem, fifo_system
from .certificates import (
    DUPLICATE_DELIVERY,
    LIVENESS,
    UNSENT_DELIVERY,
    EngineError,
    ViolationCertificate,
)

Level = Tuple[str, int]  # (station, prefix length k)


@dataclass
class _AvailableEntry:
    """A packet in transit with its reference-execution counterpart."""

    channel_index: int  # send index within the channel (1-based)
    reference: Packet  # the packet of alpha this one is equivalent to


class CrashImpossibilityEngine:
    """Executable form of the Section 7 construction (see module docs)."""

    def __init__(
        self,
        protocol: DataLinkProtocol,
        max_steps: int = 100_000,
        t: str = "t",
        r: str = "r",
        message_size: int = 0,
    ):
        self.protocol = protocol
        self.max_steps = max_steps
        self.t = t
        self.r = r
        self.message_size = message_size
        self.system: DataLinkSystem = fifo_system(protocol, t, r)
        self.factory = MessageFactory(label="c")
        self.renaming = Renaming()  # constructed-world -> alpha-world
        self.narrative: List[str] = []
        self.stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------

    def _other(self, station: str) -> str:
        return self.r if station == self.t else self.t

    def _host_signature(self, station: str):
        return (
            self.system.transmitter.signature
            if station == self.t
            else self.system.receiver.signature
        )

    def _host_automaton(self, station: str):
        return (
            self.system.transmitter
            if station == self.t
            else self.system.receiver
        )

    def _host_actions(
        self, fragment: ExecutionFragment, station: str, k: int
    ) -> Tuple[Action, ...]:
        """``acts_A(alpha, station, k)``: the station's actions among the
        first ``k`` steps."""
        signature = self._host_signature(station)
        return tuple(
            a for a in fragment.actions[:k] if signature.contains(a)
        )

    def _in_packets(
        self, fragment: ExecutionFragment, station: str, k: int
    ) -> Tuple[Packet, ...]:
        """``in_A(alpha, station, k)``: packets received by the station."""
        key = (RECEIVE_PKT, (self._other(station), station))
        return tuple(
            a.payload for a in fragment.actions[:k] if a.key == key
        )

    def _out_packets(
        self, fragment: ExecutionFragment, station: str, k: int
    ) -> Tuple[Packet, ...]:
        """``out_A(alpha, station, k)``: packets sent by the station."""
        key = (SEND_PKT, (station, self._other(station)))
        return tuple(
            a.payload for a in fragment.actions[:k] if a.key == key
        )

    def _alpha_host_state(self, station: str, k: int):
        return self.system.host_state(self.alpha.states[k], station)

    def _equiv(self, value, reference) -> bool:
        return strip_uids(self.renaming.apply(value)) == strip_uids(
            reference
        )

    # ------------------------------------------------------------------
    # Phase 1: the reference execution alpha (Lemma 4.1)
    # ------------------------------------------------------------------

    def _build_reference(self) -> Optional[ViolationCertificate]:
        """Construct alpha; returns a liveness certificate if the protocol
        cannot even deliver one message over ideal channels."""
        system = self.system
        self.m0 = self.factory.fresh(self.message_size)
        target_key = (RECEIVE_MSG, (self.t, self.r))
        try:
            fragment = system.run_fair(
                system.initial_state(),
                inputs=[
                    system.wake_t(),
                    system.wake_r(),
                    system.send(self.m0),
                ],
                max_steps=self.max_steps,
                stop_when=lambda a: a.key == target_key
                and a.payload == self.m0,
            )
        except FairnessTimeout as exc:
            raise EngineError(
                "protocol does not quiesce over clean FIFO channels; "
                "cannot construct the reference execution"
            ) from exc
        delivered = fragment.actions and fragment.actions[-1].key == target_key
        if not delivered:
            # Quiesced without delivering m0: (DL8) fails outright.
            behavior = system.behavior(fragment)
            self.narrative.append(
                "reference run quiesced without delivering m0: the "
                "protocol violates (DL8) over ideal FIFO channels"
            )
            return ViolationCertificate(
                protocol_name=self.protocol.name,
                theorem="theorem-7.5",
                kind=LIVENESS,
                behavior=behavior,
                violated=("DL8",),
                narrative=tuple(self.narrative),
                stats=dict(self.stats),
                t=self.t,
                r=self.r,
            )
        # Lemma 6.3: leave both channels clean at the end of alpha.
        cleaned = system.clean_channels(fragment.final_state)
        self.alpha = fragment.with_final_state(cleaned)
        # All intermediate states keep their original channel components;
        # only the final state is surgered, which is what the lemmas allow.
        self.stats["alpha_steps"] = len(self.alpha)
        self.narrative.append(
            f"reference execution alpha built: {len(self.alpha)} steps, "
            f"behavior wake wake send({self.m0}) receive({self.m0}); "
            "channels left clean (Lemma 6.3)"
        )
        return None

    # ------------------------------------------------------------------
    # Phase 2: the alternation chain (Lemma 7.3 recursion, unrolled)
    # ------------------------------------------------------------------

    def _build_levels(self) -> List[Level]:
        """The pumping levels, earliest first; the last is ``(t, n)``."""
        n = len(self.alpha)
        receiver_signature = self._host_signature(self.r)
        n_r = 0
        for index in range(n, 0, -1):
            if receiver_signature.contains(self.alpha.actions[index - 1]):
                n_r = index
                break
        levels: List[Level] = [(self.t, n)]
        if n_r >= 3:
            levels.insert(0, (self.r, n_r))
            side, k = self.r, n_r
            while True:
                other = self._other(side)
                other_signature = self._host_signature(other)
                j = 0
                for index in range(k - 1, 2, -1):
                    if other_signature.contains(
                        self.alpha.actions[index - 1]
                    ):
                        j = index
                        break
                if j == 0:
                    break
                levels.insert(0, (other, j))
                side, k = other, j
        self.stats["pump_levels"] = len(levels)
        return levels

    # ------------------------------------------------------------------
    # Phase 2/3: crash-and-replay (Lemma 7.2)
    # ------------------------------------------------------------------

    def _step(self, action: Action) -> None:
        state = self.system.automaton.step(self.fragment.final_state, action)
        self.fragment = self.fragment.append(action, state)

    def _surgery(self, new_state) -> None:
        """Replace the current state via channel surgery (Section 6.3)."""
        self.fragment = self.fragment.with_final_state(new_state)

    def _crash_and_replay(
        self, station: str, k: int
    ) -> Tuple[List[_AvailableEntry], Dict[Message, Message]]:
        """Crash ``station`` and replay its first ``k`` reference steps.

        Returns the packets it sent (with their reference counterparts)
        and the fresh-message bindings created.  Implements the
        ``gamma`` construction of Lemma 7.2; every step asserts the
        message-independence conditions it relies on.
        """
        system = self.system
        other = self._other(station)
        automaton = self._host_automaton(station)
        crash_action = (
            system.crash_t() if station == self.t else system.crash_r()
        )
        self._step(crash_action)
        crashed_core = system.host_state(
            self.fragment.final_state, station
        ).core
        if crashed_core != automaton.logic.initial_core():
            raise EngineError(
                f"protocol is not crashing: crash at {station} left core "
                f"{crashed_core!r}"
            )

        bindings: Dict[Message, Message] = {}
        sent: List[_AvailableEntry] = []
        reference_actions = self._host_actions(self.alpha, station, k)
        for reference in reference_actions:
            if reference.name == WAKE:
                self._step(reference)
            elif reference.name in (FAIL, CRASH):
                raise EngineError(
                    "reference execution unexpectedly contains "
                    f"{reference}; alpha must be failure-free after the "
                    "initial wakes"
                )
            elif reference.key == (SEND_MSG, (self.t, self.r)):
                # Fresh message from the same size class (Section 9:
                # equivalence may distinguish message lengths).
                fresh = self.factory.fresh(size=reference.payload.size)
                self.renaming.bind(fresh, reference.payload)
                bindings[fresh] = reference.payload
                self._step(send_msg(self.t, self.r, fresh))
            elif reference.key == (RECEIVE_PKT, (other, station)):
                channel_state = system.channel_state(
                    self.fragment.final_state, other
                )
                deliverable = channel_state.deliverable()
                if deliverable is None:
                    raise EngineError(
                        f"replay at {station} expected a waiting packet "
                        f"equivalent to {reference.payload}, but the "
                        "channel has none"
                    )
                packet = deliverable[1]
                if not self._equiv(packet, reference.payload):
                    raise EngineError(
                        f"waiting packet {packet} is not equivalent to the "
                        f"reference packet {reference.payload}"
                    )
                self._step(receive_pkt(other, station, packet))
            else:
                # Locally-controlled action: send_pkt or receive_msg.
                host = system.host_state(self.fragment.final_state, station)
                candidates = [
                    a
                    for a in automaton.enabled_local_actions(host)
                    if a.key == reference.key
                    and self._equiv(a.payload, reference.payload)
                ]
                if not candidates:
                    raise EngineError(
                        f"message-independence failure: no action "
                        f"equivalent to {reference} is enabled at "
                        f"{station} (state {host.core!r})"
                    )
                chosen = candidates[0]
                self._step(chosen)
                if chosen.key == (SEND_PKT, (station, other)):
                    channel_state = system.channel_state(
                        self.fragment.final_state, station
                    )
                    sent.append(
                        _AvailableEntry(
                            channel_state.counter1, reference.payload
                        )
                    )

        final_host = system.host_state(self.fragment.final_state, station)
        reference_state = self._alpha_host_state(station, k)
        if not states_equivalent(final_host, reference_state, self.renaming):
            raise EngineError(
                f"replay at {station} did not reproduce an equivalent "
                f"state: got {final_host.core!r}, reference "
                f"{reference_state.core!r}"
            )
        self.stats["replayed_steps"] = self.stats.get(
            "replayed_steps", 0
        ) + len(reference_actions)
        current_tracer().count(
            "refute.replayed_steps", len(reference_actions)
        )
        return sent, bindings

    def _select_waiting(
        self,
        station: str,
        expected: Sequence[Packet],
        available: Sequence[_AvailableEntry],
    ) -> None:
        """Lemma 6.6: keep exactly the packets the reference consumed.

        ``expected`` are reference packets (``in_A``); ``available`` maps
        in-transit packets of the constructed execution to their
        reference counterparts.  Selects the matching subsequence and
        schedules it as the channel's waiting sequence.
        """
        other = self._other(station)
        indices: List[int] = []
        cursor = 0
        for packet in expected:
            found = None
            while cursor < len(available):
                entry = available[cursor]
                cursor += 1
                if entry.reference.uid == packet.uid:
                    found = entry
                    break
            if found is None:
                raise EngineError(
                    f"reference packet {packet} not among the packets in "
                    f"transit to {station}"
                )
            indices.append(found.channel_index)
        state = self.system.set_waiting(
            self.fragment.final_state, other, indices
        )
        self._surgery(state)

    # ------------------------------------------------------------------
    # Phase 5: Lemma 7.1 replay back onto alpha
    # ------------------------------------------------------------------

    def _map_suffix_onto_alpha(
        self, suffix: Sequence[Action]
    ) -> ExecutionFragment:
        """Replay the fair-extension suffix from the real end of alpha.

        Every action of the suffix is translated through the accumulated
        renaming and executed from ``alpha``'s final state (channels
        clean on both sides, matching the constructed execution).
        Message-independence (Lemma 7.1) guarantees each translated step
        is enabled; the engine asserts it.
        """
        system = self.system
        mapped = ExecutionFragment.initial(self.alpha.final_state)
        for action in suffix:
            state = mapped.final_state
            if action.name == RECEIVE_PKT:
                src = action.direction[0]
                channel_state = system.channel_state(state, src)
                deliverable = channel_state.deliverable()
                if deliverable is None:
                    raise EngineError(
                        "mapped replay expected a deliverable packet on "
                        f"channel {src} but found none"
                    )
                packet = deliverable[1]
                if not self._equiv(action.payload, packet):
                    raise EngineError(
                        f"mapped delivery {packet} does not correspond to "
                        f"{action.payload}"
                    )
                mapped_action = receive_pkt(
                    src, action.direction[1], packet
                )
            elif action.name in (SEND_PKT, RECEIVE_MSG):
                station = (
                    action.direction[0]
                    if action.name == SEND_PKT
                    else self.r
                )
                automaton = self._host_automaton(station)
                host = system.host_state(state, station)
                candidates = [
                    a
                    for a in automaton.enabled_local_actions(host)
                    if a.key == action.key
                    and self._equiv(action.payload, a.payload)
                ]
                if not candidates:
                    raise EngineError(
                        "message-independence failure in the Lemma 7.1 "
                        f"replay: no action equivalent to {action} enabled"
                    )
                mapped_action = candidates[0]
            elif action.name in (WAKE, FAIL, CRASH, SEND_MSG):
                raise EngineError(
                    f"fair extension unexpectedly contains input {action}"
                )
            else:
                raise EngineError(f"unhandled action {action} in suffix")
            new_state = system.automaton.step(state, mapped_action)
            mapped = mapped.append(mapped_action, new_state)
        return mapped

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def run(self) -> ViolationCertificate:
        """Execute the Theorem 7.5 construction; returns the certificate."""
        tracer = current_tracer()
        with tracer.span(
            "refute.crash", protocol=self.protocol.name
        ):
            return self._run(tracer)

    def _run(self, tracer) -> ViolationCertificate:
        early = self._build_reference()
        if early is not None:
            return early

        system = self.system
        levels = self._build_levels()
        self.narrative.append(
            "alternation chain (Lemma 7.3): "
            + " -> ".join(f"({side},{k})" for side, k in levels)
        )

        # Start the constructed execution: fresh system, both wakes.
        start = system.run_inputs(
            system.initial_state(), [system.wake_t(), system.wake_r()]
        )
        self.fragment = start

        available: Dict[str, List[_AvailableEntry]] = {
            self.t: [],
            self.r: [],
        }
        last_bindings: Dict[Message, Message] = {}
        for side, k in levels:
            with tracer.span("refute.round", station=side, k=k):
                expected = self._in_packets(self.alpha, side, k)
                self._select_waiting(side, expected, available[side])
                sent, bindings = self._crash_and_replay(side, k)
            available[self._other(side)] = sent
            if side == self.t:
                last_bindings = bindings
            if tracer.enabled:
                tracer.count("refute.crash_injections")
                tracer.count("refute.packets_consumed", len(expected))
                tracer.count("refute.packets_sent", len(sent))
            self.narrative.append(
                f"level ({side},{k}): crashed {side}, replayed "
                f"{k} reference steps, consumed {len(expected)} packets, "
                f"sent {len(sent)}"
            )

        # Lemma 7.4 end state: clean both channels.
        self._surgery(system.clean_channels(self.fragment.final_state))
        m1 = next(
            (
                fresh
                for fresh, ref in last_bindings.items()
                if ref == self.m0
            ),
            None,
        )
        if m1 is None:
            raise EngineError(
                "final transmitter replay did not re-send a message "
                "equivalent to m0"
            )
        self.narrative.append(
            f"Lemma 7.4 state reached: both stations equivalent to the "
            f"end of alpha, channels clean, fresh message {m1} sent but "
            "undelivered"
        )

        # Theorem 7.5: fair extension with no further inputs.
        beta_length = len(self.fragment)
        try:
            extended = system.run_fair(
                self.fragment.final_state,
                max_steps=self.max_steps,
                stop_when=lambda a: a.key
                == (RECEIVE_MSG, (self.t, self.r)),
            )
        except FairnessTimeout as exc:
            raise EngineError(
                "fair extension did not quiesce or deliver; cannot "
                "classify the violation"
            ) from exc
        suffix = extended.actions
        delivered = [
            a for a in suffix if a.key == (RECEIVE_MSG, (self.t, self.r))
        ]

        if not delivered:
            # Quiescent with m1 undelivered: (DL8) violated on the
            # constructed execution itself.
            full = self.fragment.extend(extended)
            behavior = system.behavior(full)
            self.narrative.append(
                f"fair extension quiesced without delivering {m1}: "
                "(DL8) violated"
            )
            certificate = ViolationCertificate(
                protocol_name=self.protocol.name,
                theorem="theorem-7.5",
                kind=LIVENESS,
                behavior=behavior,
                violated=("DL8",),
                narrative=tuple(self.narrative),
                stats=dict(self.stats),
                t=self.t,
                r=self.r,
            )
        else:
            # Lemma 7.1: replay the suffix from the real end of alpha.
            mapped = self._map_suffix_onto_alpha(suffix)
            try:
                mapped_quiesced = system.run_fair(
                    mapped.final_state, max_steps=self.max_steps
                )
                mapped = mapped.extend(mapped_quiesced)
            except FairnessTimeout:
                # Safety violations below persist regardless; keep the
                # truncated (still valid) execution.
                pass
            m3 = next(
                a.payload
                for a in mapped.actions
                if a.key == (RECEIVE_MSG, (self.t, self.r))
            )
            behavior = system.behavior(self.alpha.extend(mapped))
            kind = DUPLICATE_DELIVERY if m3 == self.m0 else UNSENT_DELIVERY
            violated = ("DL4",) if m3 == self.m0 else ("DL5",)
            self.narrative.append(
                f"fair extension delivered {delivered[0].payload}; mapped "
                f"back onto alpha (Lemma 7.1) it delivers {m3}: "
                f"{'duplicate of m0' if m3 == self.m0 else 'never sent'}"
            )
            certificate = ViolationCertificate(
                protocol_name=self.protocol.name,
                theorem="theorem-7.5",
                kind=kind,
                behavior=behavior,
                violated=violated,
                narrative=tuple(self.narrative),
                stats=dict(self.stats),
                t=self.t,
                r=self.r,
            )

        if not certificate.validate():
            raise EngineError(
                "constructed certificate failed independent validation; "
                "this indicates an engine bug:\n" + certificate.describe()
            )
        return certificate


def refute_crash_tolerance(
    protocol: DataLinkProtocol,
    max_steps: int = 100_000,
    message_size: int = 0,
) -> ViolationCertificate:
    """Run the Theorem 7.5 construction against ``protocol``.

    The protocol must be crashing and message-independent (the engine
    verifies both along the way and raises
    :class:`~repro.impossibility.certificates.EngineError` otherwise).
    """
    return CrashImpossibilityEngine(
        protocol, max_steps=max_steps, message_size=message_size
    ).run()
