"""The bounded-header impossibility construction (paper, Section 8,
Theorem 8.5).

Theorem 8.5: *no weakly correct data link protocol is
message-independent, has bounded headers, and is k-bounded for some k*
-- over arbitrary (non-FIFO) physical channels.

The engine executes the proof against a concrete protocol over the
permissive non-FIFO channels ``C-bar`` (system ``D-bar'(A)``):

1. **Pumping** (Lemmas 8.3 and 8.4).  Maintain a schedule ``beta`` with
   valid behavior and a set ``T`` of packets in transit from t to r.
   Each round sends a fresh message ``m`` and *probes* the delivery
   ``gamma1`` the protocol would use (over cleaned channels, so no
   packet of ``beta`` is re-received -- the k-boundedness witness).  If
   some delivered packet ``p0``'s equivalence class has fewer than ``k``
   representatives in ``T``, the engine really executes ``gamma1`` only
   up to ``send_pkt(p0)``, then loses ``p0`` (clean surgery, Lemma 6.3)
   and lets the protocol finish delivering ``m`` fairly; ``p0`` joins
   ``T``.  The chain ``T <_k T' <_k ...`` has length at most
   ``k * |headers(A)|``, so eventually every class is saturated.

2. **The contradiction** (Theorem 8.5).  When every packet of the
   probed ``packet_set(m, beta)`` has ``k`` equivalents in ``T``, an
   injective class-preserving map ``f`` exists.  The engine schedules
   ``f``'s images as the channel's waiting sequence (Lemma 6.7 --
   the non-FIFO channel can deliver any in-transit packets in any
   order) and replays the *receiver's* part of ``gamma1`` against them:
   by message-independence the receiver behaves equivalently and
   announces ``receive_msg(m')`` for some ``m'`` -- without any
   ``send_msg`` having occurred.  Since ``beta`` is valid, every
   message sent in ``beta`` was already received, so the delivery
   violates (DL4) (if ``m'`` was sent before) or (DL5) (if not).

The certificate's behavior is re-validated independently.  Protocols
with unbounded headers (Stenning) are rejected up front -- they fall
outside the theorem's hypotheses, and indeed escape the construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..alphabets import Message, MessageFactory, Packet
from ..ioa.actions import Action
from ..ioa.fairness import FairnessTimeout
from ..channels.actions import RECEIVE_PKT, SEND_PKT, receive_pkt
from ..datalink.actions import RECEIVE_MSG, SEND_MSG
from ..datalink.message_independence import equivalent, packet_class
from ..datalink.properties import is_valid_sequence
from ..datalink.protocol import DataLinkProtocol
from ..obs import current_tracer
from ..sim.network import DataLinkSystem, permissive_system
from .certificates import (
    DUPLICATE_DELIVERY,
    UNSENT_DELIVERY,
    EngineError,
    ViolationCertificate,
)


@dataclass
class _TransitEntry:
    """A packet of ``T``: in transit t->r, with its channel send index."""

    channel_index: int
    packet: Packet

    @property
    def cls(self):
        return packet_class(self.packet)


@dataclass
class _Probe:
    """Result of probing ``gamma1`` for one fresh message."""

    message: Message
    actions: Tuple[Action, ...]  # the full gamma1 schedule (from send_msg)
    received: Tuple[Packet, ...]  # packets received t->r, in order


class BoundedHeaderEngine:
    """Executable form of the Section 8 construction (see module docs)."""

    def __init__(
        self,
        protocol: DataLinkProtocol,
        k: Optional[int] = None,
        max_rounds: Optional[int] = None,
        max_steps: int = 100_000,
        t: str = "t",
        r: str = "r",
        message_size: int = 0,
    ):
        self.protocol = protocol
        self.declared_k = k
        self.message_size = message_size
        self.max_steps = max_steps
        self.t = t
        self.r = r
        self.system: DataLinkSystem = permissive_system(protocol, t, r)
        self.factory = MessageFactory(label="h")
        self.narrative: List[str] = []
        self.stats: Dict[str, int] = {}
        header_space = protocol.header_space()
        if header_space is None:
            raise EngineError(
                f"protocol {protocol.name!r} does not have bounded "
                "headers; Theorem 8.5 does not apply (cf. Stenning's "
                "protocol)"
            )
        self.header_count = len(header_space)
        # Packet classes are (header, body-arity in {0,1}) pairs.
        self.class_bound = 2 * self.header_count
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------

    def _step(self, action: Action) -> None:
        state = self.system.automaton.step(self.fragment.final_state, action)
        self.fragment = self.fragment.append(action, state)

    def _surgery(self, new_state) -> None:
        self.fragment = self.fragment.with_final_state(new_state)

    def _receive_msg_key(self):
        return (RECEIVE_MSG, (self.t, self.r))

    def _assert_valid(self, context: str) -> None:
        behavior = self.system.behavior(self.fragment)
        result = is_valid_sequence(behavior, self.t, self.r)
        if not result.holds:
            raise EngineError(
                f"behavior stopped being valid {context}: {result.witness}"
            )

    # ------------------------------------------------------------------
    # The k-boundedness probe (Section 8.1)
    # ------------------------------------------------------------------

    def _probe_delivery(self, message: Message) -> _Probe:
        """Find ``gamma1``: a delivery of ``message`` continuing ``beta``.

        Probes on a branch: cleans both channels (a legal continuation,
        Lemma 6.3, which also guarantees no packet of ``beta`` can be
        re-received) and runs fairly until ``receive_msg(message)``.
        The main fragment is not modified.
        """
        system = self.system
        state = system.clean_channels(self.fragment.final_state)
        try:
            branch = system.run_fair(
                state,
                inputs=[system.send(message)],
                max_steps=self.max_steps,
                stop_when=lambda a: a.key == self._receive_msg_key()
                and a.payload == message,
            )
        except FairnessTimeout as exc:
            raise EngineError(
                f"probe for {message} did not quiesce; the protocol is "
                "not k-bounded for any usable k"
            ) from exc
        delivered = (
            branch.actions
            and branch.actions[-1].key == self._receive_msg_key()
        )
        if not delivered:
            raise EngineError(
                f"probe quiesced without delivering {message}: the "
                "protocol violates (DL8) over the permissive channel"
            )
        received = tuple(
            a.payload
            for a in branch.actions
            if a.key == (RECEIVE_PKT, (self.t, self.r))
        )
        return _Probe(message, branch.actions, received)

    # ------------------------------------------------------------------
    # Lemma 8.3 case 2: extend beta, adding one packet to T
    # ------------------------------------------------------------------

    def _pump_round(self, probe: _Probe, p0: Packet) -> _TransitEntry:
        """Execute ``rho`` (the prefix of gamma1 through ``send_pkt(p0)``),
        lose ``p0``, and let the delivery finish fairly (``rho-hat``)."""
        system = self.system
        # The probe branched from the cleaned state; reproduce that.
        self._surgery(system.clean_channels(self.fragment.final_state))
        send_key = (SEND_PKT, (self.t, self.r))
        p0_index: Optional[int] = None
        rho_had_receive = False
        for action in probe.actions:
            self._step(action)
            if action.key == self._receive_msg_key():
                rho_had_receive = True
            if action.key == send_key and action.payload == p0:
                p0_index = system.channel_state(
                    self.fragment.final_state, self.t
                ).counter1
                break
        if p0_index is None:
            raise EngineError(
                f"send_pkt({p0}) not found in the probed gamma1"
            )
        entry = _TransitEntry(p0_index, p0)

        if not rho_had_receive:
            # Lemma 6.3: lose everything in transit t->r (including p0),
            # then finish the delivery fairly (rho-hat).
            self._surgery(
                system.clean_channel(self.fragment.final_state, self.t)
            )
            try:
                extension = system.run_fair(
                    self.fragment.final_state,
                    max_steps=self.max_steps,
                    stop_when=lambda a: a.key == self._receive_msg_key()
                    and a.payload == probe.message,
                )
            except FairnessTimeout as exc:
                raise EngineError(
                    "rho-hat did not quiesce while finishing the "
                    f"delivery of {probe.message}"
                ) from exc
            finished = (
                extension.actions
                and extension.actions[-1].key == self._receive_msg_key()
                and extension.actions[-1].payload == probe.message
            )
            if not finished:
                raise EngineError(
                    f"(DL8) failure during pumping: {probe.message} was "
                    "never delivered after losing p0 -- the protocol is "
                    "not weakly correct over the permissive channel"
                )
            self.fragment = self.fragment.extend(extension)
        return entry

    # ------------------------------------------------------------------
    # Theorem 8.5: the receiver replay against T
    # ------------------------------------------------------------------

    def _build_injection(
        self, probe: _Probe, transit: Sequence[_TransitEntry]
    ) -> Optional[List[_TransitEntry]]:
        """The map ``f``: probed received packets -> distinct T entries.

        Returns one entry per received packet (in receive order), class
        preserving and injective, or None if some class is not yet
        saturated.
        """
        pools: Dict[Tuple, List[_TransitEntry]] = {}
        for entry in transit:
            pools.setdefault(entry.cls, []).append(entry)
        chosen: List[_TransitEntry] = []
        for packet in probe.received:
            pool = pools.get(packet_class(packet))
            if not pool:
                return None
            chosen.append(pool.pop(0))
        return chosen

    def _replay_receiver(
        self, probe: _Probe, images: Sequence[_TransitEntry]
    ) -> None:
        """Replay ``gamma1 | A^r`` against the packets of ``T``.

        Schedules the ``f``-images as the waiting sequence of the
        non-FIFO channel (Lemmas 6.7 and 6.4) and mirrors each receiver
        step of the probe with an equivalent step, as in the Theorem 8.5
        induction.
        """
        system = self.system
        receiver = system.receiver
        self._surgery(
            system.set_waiting(
                self.fragment.final_state,
                self.t,
                [entry.channel_index for entry in images],
            )
        )
        cursor = 0
        receiver_signature = receiver.signature
        for action in probe.actions:
            if not receiver_signature.contains(action):
                continue
            if action.key == (RECEIVE_PKT, (self.t, self.r)):
                image = images[cursor]
                cursor += 1
                channel_state = system.channel_state(
                    self.fragment.final_state, self.t
                )
                deliverable = channel_state.deliverable()
                if deliverable is None or deliverable[1] != image.packet:
                    raise EngineError(
                        "channel did not offer the scheduled T-packet "
                        f"{image.packet}"
                    )
                if not equivalent(image.packet, action.payload):
                    raise EngineError(
                        f"T-packet {image.packet} is not equivalent to "
                        f"the probed packet {action.payload}"
                    )
                self._step(
                    receive_pkt(self.t, self.r, image.packet)
                )
            elif action.key[0] in (SEND_PKT, RECEIVE_MSG):
                host = system.host_state(self.fragment.final_state, self.r)
                candidates = [
                    a
                    for a in receiver.enabled_local_actions(host)
                    if a.key == action.key
                    and equivalent(a.payload, action.payload)
                ]
                if not candidates:
                    raise EngineError(
                        "message-independence failure in the receiver "
                        f"replay: no action equivalent to {action} enabled"
                    )
                self._step(candidates[0])
            else:
                raise EngineError(
                    f"unexpected receiver action {action} in gamma1"
                )

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def run(self) -> ViolationCertificate:
        """Execute the Theorem 8.5 construction; returns the certificate."""
        tracer = current_tracer()
        with tracer.span(
            "refute.headers", protocol=self.protocol.name
        ):
            return self._run(tracer)

    def _run(self, tracer) -> ViolationCertificate:
        system = self.system
        self.fragment = system.run_inputs(
            system.initial_state(), [system.wake_t(), system.wake_r()]
        )
        transit: List[_TransitEntry] = []
        k = 1 if self.declared_k is None else self.declared_k
        rounds = 0
        while True:
            limit = self.max_rounds or (k * self.class_bound + 2)
            if rounds > limit:
                raise EngineError(
                    f"pumping exceeded {limit} rounds without saturating "
                    "the header classes; the protocol appears not to be "
                    f"{k}-bounded with bounded headers"
                )
            with tracer.span(
                "refute.round", round=rounds, transit=len(transit)
            ):
                message = self.factory.fresh(self.message_size)
                probe = self._probe_delivery(message)
                if tracer.enabled:
                    tracer.count("refute.probes")
                    tracer.gauge("refute.transit_packets", len(transit))
                observed = len(probe.received)
                if self.declared_k is None and observed > k:
                    k = observed  # adaptive k: the largest packet_set seen
                elif observed > k:
                    raise EngineError(
                        f"protocol used {observed} packets to deliver "
                        f"{message}, exceeding the declared k={k}"
                    )
                images = self._build_injection(probe, transit)
                if images is not None:
                    self.stats["pump_rounds"] = rounds
                    self.stats["transit_packets"] = len(transit)
                    self.stats["k"] = k
                    self.narrative.append(
                        f"after {rounds} pumping rounds, T holds "
                        f"{len(transit)} packets saturating every class of "
                        f"packet_set({message}); replaying the receiver "
                        "against T (Theorem 8.5)"
                    )
                    self._replay_receiver(probe, images)
                    break
                # Case 2 of Lemma 8.3: grow T by one under-represented
                # packet.
                counts: Dict[Tuple, int] = {}
                for entry in transit:
                    counts[entry.cls] = counts.get(entry.cls, 0) + 1
                p0 = next(
                    p
                    for p in probe.received
                    if counts.get(packet_class(p), 0) < k
                )
                entry = self._pump_round(probe, p0)
                transit.append(entry)
                rounds += 1
                if tracer.enabled:
                    tracer.count("refute.pump_rounds")
                self._assert_valid(f"after pumping round {rounds}")
                self.narrative.append(
                    f"round {rounds}: delivered {message} while keeping a "
                    f"{packet_class(p0)[0]!r} packet in transit "
                    f"(|T| = {len(transit)})"
                )

        # Fair extension with no inputs, then classify.
        try:
            extension = system.run_fair(
                self.fragment.final_state, max_steps=self.max_steps
            )
            self.fragment = self.fragment.extend(extension)
        except FairnessTimeout:
            pass  # safety violation below persists on any extension
        behavior = system.behavior(self.fragment)
        deliveries = [
            a for a in behavior if a.key == self._receive_msg_key()
        ]
        sends = [
            a.payload for a in behavior if a.key == (SEND_MSG, (self.t, self.r))
        ]
        phantom = [a.payload for a in deliveries if a.payload not in sends]
        kind = UNSENT_DELIVERY if phantom else DUPLICATE_DELIVERY
        violated = ("DL5",) if phantom else ("DL4",)
        self.narrative.append(
            "receiver replay announced a delivery with no send_msg "
            "pending: " + ("(DL5) violated" if phantom else "(DL4) violated")
        )
        certificate = ViolationCertificate(
            protocol_name=self.protocol.name,
            theorem="theorem-8.5",
            kind=kind,
            behavior=behavior,
            violated=violated,
            narrative=tuple(self.narrative),
            stats=dict(self.stats),
            t=self.t,
            r=self.r,
        )
        if not certificate.validate():
            raise EngineError(
                "constructed certificate failed independent validation; "
                "this indicates an engine bug:\n" + certificate.describe()
            )
        return certificate


def refute_bounded_headers(
    protocol: DataLinkProtocol,
    k: Optional[int] = None,
    max_steps: int = 100_000,
    message_size: int = 0,
) -> ViolationCertificate:
    """Run the Theorem 8.5 construction against ``protocol``.

    The protocol must be message-independent, k-bounded and have bounded
    headers; unbounded-header protocols are rejected with
    :class:`~repro.impossibility.certificates.EngineError`.
    """
    return BoundedHeaderEngine(
        protocol, k=k, max_steps=max_steps, message_size=message_size
    ).run()
