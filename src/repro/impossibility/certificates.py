"""Violation certificates: machine-checkable outputs of the engines.

Each impossibility engine takes a concrete protocol satisfying a
theorem's hypotheses and *constructs* an execution of the composed
system whose behavior is well-formed, satisfies the environment
obligations (DL1)-(DL3), and violates one of the ``WDL`` guarantees
(DL4), (DL5) or (DL8).  The certificate packages that behavior together
with a construction narrative; :meth:`ViolationCertificate.validate`
re-checks the violation from scratch using the independent trace
checkers, so trusting a certificate does not require trusting the
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..ioa.actions import Action
from ..datalink.modules import wdl_module
from ..obs import STATUS_OK, STATUS_VIOLATION, RunReport

# Certificate kinds.
DUPLICATE_DELIVERY = "duplicate-delivery"  # violates (DL4)
UNSENT_DELIVERY = "unsent-delivery"  # violates (DL5)
LIVENESS = "liveness"  # violates (DL8) on a quiescent trace


class EngineError(RuntimeError):
    """The construction could not proceed.

    Raised when a protocol violates a hypothesis the engine relies on
    mid-construction (e.g. a replay step finds no equivalent enabled
    action, contradicting message-independence).
    """


@dataclass
class ViolationCertificate:
    """A checked counterexample to weak correctness.

    ``behavior`` is a finite data-link-layer behavior of the composed
    system ``D'(A)`` (a fair one: the engines always end at quiescence
    or truncate a fair extension whose remaining actions are outputs
    only, matching the paper's use of Lemma 2.1).
    """

    protocol_name: str
    theorem: str
    kind: str
    behavior: Tuple[Action, ...]
    violated: Tuple[str, ...]
    narrative: Tuple[str, ...] = ()
    stats: Dict[str, int] = field(default_factory=dict)
    t: str = "t"
    r: str = "r"

    def validate(self) -> bool:
        """Independently re-check that the behavior violates ``WDL``.

        Returns True iff the behavior satisfies the environment
        assumptions (well-formedness, (DL1)-(DL3)) *and* fails at least
        one ``WDL`` guarantee -- i.e. it genuinely witnesses that the
        composed system does not solve ``WDL^{t,r}``.
        """
        verdict = wdl_module(self.t, self.r, quiescent=True).check(
            self.behavior
        )
        return not verdict.in_module and not verdict.vacuous

    def violated_properties(self) -> Tuple[str, ...]:
        """The guarantee properties the behavior fails, re-derived."""
        verdict = wdl_module(self.t, self.r, quiescent=True).check(
            self.behavior
        )
        return tuple(f.name for f in verdict.failures)

    def to_dict(self) -> Dict:
        """A JSON-serializable rendering of the certificate.

        Actions become ``{name, direction, payload}`` objects with
        payloads rendered via ``str`` (messages and packets have stable
        textual forms), so certificates can be archived and diffed.
        """
        return {
            "protocol": self.protocol_name,
            "theorem": self.theorem,
            "kind": self.kind,
            "violated": list(self.violated),
            "endpoints": [self.t, self.r],
            "behavior": [
                {
                    "name": action.name,
                    "direction": list(action.direction)
                    if action.direction
                    else None,
                    "payload": None
                    if action.payload is None
                    else str(action.payload),
                }
                for action in self.behavior
            ],
            "narrative": list(self.narrative),
            "stats": dict(self.stats),
            "validated": self.validate(),
        }

    def report(self, duration_s: float = 0.0) -> RunReport:
        """This certificate as the unified :class:`~repro.obs.RunReport`.

        Status ``ok`` means the construction succeeded *and* the
        certificate re-validated against the independent trace checkers
        -- finding the violation is the engines' job.  A certificate
        that fails validation reports ``violation`` (an engine bug, not
        a protocol one).
        """
        command = (
            "refute-crash"
            if self.theorem == "theorem-7.5"
            else "refute-headers"
        )
        validated = self.validate()
        counters = {
            f"refute.{name}": value
            for name, value in sorted(self.stats.items())
        }
        counters["refute.behavior_length"] = len(self.behavior)
        return RunReport(
            command=command,
            status=STATUS_OK if validated else STATUS_VIOLATION,
            counters=counters,
            duration_s=duration_s,
            details=self.to_dict(),
        )

    def describe(self) -> str:
        """Human-readable rendering of the certificate."""
        lines = [
            f"Violation certificate ({self.theorem}) for protocol "
            f"{self.protocol_name!r}",
            f"  kind: {self.kind}; violated: {', '.join(self.violated)}",
            "  behavior:",
        ]
        lines.extend(f"    {i}: {a}" for i, a in enumerate(self.behavior))
        if self.narrative:
            lines.append("  construction:")
            lines.extend(f"    - {step}" for step in self.narrative)
        if self.stats:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(self.stats.items())
            )
            lines.append(f"  stats: {rendered}")
        return "\n".join(lines)
