"""Process-pool execution of a fuzz campaign's run schedule.

Each fuzz run is independent once its :class:`SubSeeds` are derived:
the system, script, execution, oracle verdicts and shrunk repros are
all pure functions of ``(protocol, channel, seed, index, subseeds,
config)``.  The campaign therefore derives the full sub-seed schedule
serially up front (bit-identical to a serial campaign) and fans the
runs out to a ``multiprocessing`` fork pool; only campaign-global state
-- the :class:`~repro.ioa.engine.interning.InternTable`, corpus credit
and the obs event stream -- stays with the master, which merges worker
results **in run-index order**.  The merge is what makes ``workers=N``
byte-identical to ``workers=1``: interning order, corpus order,
violation order and the trace stream never depend on which worker
finished first.

Following :mod:`repro.ioa.engine.parallel`: workers are forked (the
registries and config are inherited, only sub-seeds go in and run
outcomes come out), short schedules are executed in-process (forking
pays off only once there is enough work to amortize pool start-up),
and on platforms without a ``fork`` start method the schedule silently
degrades to serial.

Two hardening guards ride along, applied identically in serial and
pool mode:

* a per-run wall-clock guard (``run_timeout`` seconds, SIGALRM-based
  where available) that abandons a runaway run instead of hanging the
  campaign; and
* worker-crash containment: any exception escaping a run -- a protocol
  bug, a timeout, a dying worker process -- is recorded as a *failed
  run* (:class:`RunOutcome` with ``error`` set) and the campaign
  continues.

Note that a triggered timeout is inherently wall-clock-dependent, so a
campaign that hits one is only deterministic in its surviving runs;
the default (no timeout) preserves the full determinism contract.
"""

from __future__ import annotations

import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..ioa.automaton import State
from ..obs import MemorySink, set_tracer, tracing
from ..obs.events import Event
from .harness import FuzzConfig, SubSeeds, build_script, build_system, execute_script
from .oracles import OracleViolation, check_execution

#: Below this many scheduled runs the campaign stays in-process: pool
#: start-up (forking ``workers`` interpreters) costs more than the runs.
PARALLEL_THRESHOLD = 2


class RunTimeout(Exception):
    """A fuzz run exceeded the campaign's per-run wall-clock budget."""


@dataclass
class RunOutcome:
    """Everything one fuzz run sends back to the campaign master.

    ``states`` are the visited-state fingerprints in execution order;
    the master interns them (in run-index order) to assign coverage
    credit, so workers never touch the shared
    :class:`~repro.ioa.engine.interning.InternTable`.  ``pre_events``
    and ``post_events`` are the run's captured obs chunks -- everything
    emitted before and after the interning point of a serial campaign
    loop -- which the master replays around its own
    ``fuzz.states_interned`` counter to reproduce the serial stream.
    """

    index: int
    subseeds: SubSeeds
    steps: int = 0
    quiescent: bool = False
    behavior_length: int = 0
    states: Tuple[State, ...] = ()
    found: List[OracleViolation] = field(default_factory=list)
    violations: List["ViolationReport"] = field(default_factory=list)  # noqa: F821
    oracle_checks: int = 0
    pre_events: Tuple[Event, ...] = ()
    post_events: Tuple[Event, ...] = ()
    error: Optional[str] = None
    timed_out: bool = False
    duration_s: float = 0.0


@contextmanager
def _alarm(seconds: Optional[float]):
    """Raise :class:`RunTimeout` if the block runs longer than ``seconds``.

    SIGALRM-based, so it interrupts a wedged run mid-step (a plain
    after-the-fact duration check could not).  Silently a no-op when
    timers are unavailable (non-POSIX platforms, non-main threads).
    """
    if not seconds or not hasattr(signal, "setitimer"):
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded the {seconds}s wall-clock budget")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # pragma: no cover - not in the main thread
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@contextmanager
def _capturing(capture: bool):
    """Capture the block's obs events into a list (empty when off).

    The list is filled when the block *exits* (``MemorySink.events`` is
    a snapshot), so read it only after the ``with`` statement.
    """
    if not capture:
        yield []
        return
    sink = MemorySink()
    captured: list = []
    with tracing(sink):
        yield captured
    captured.extend(sink.events)


def execute_run(
    protocol: str,
    channel: str,
    seed: int,
    index: int,
    subseeds: SubSeeds,
    config: FuzzConfig,
    capture: bool = False,
    run_timeout: Optional[float] = None,
) -> RunOutcome:
    """One complete fuzz run: build, execute, judge, shrink, package.

    Pure in its arguments (modulo wall-clock fields), which is the
    whole parallelization argument: the master can replay the outcome
    stream in index order and obtain the serial campaign verbatim.
    Every exception is contained into a failed-run outcome.
    """
    from .fuzzer import _checks_for, _package_violation

    started = time.perf_counter()
    try:
        with _alarm(run_timeout):
            with _capturing(capture) as pre_events:
                system = build_system(protocol, channel, subseeds, config)
                script = build_script(system, subseeds, config)
                result = execute_script(
                    system, script.actions, subseeds, config
                )
            with _capturing(capture) as post_events:
                found = check_execution(system, result)
                oracle_checks = _checks_for(result, system)
                packaged = []
                seen = set()
                for violation in found:
                    if violation.oracle in seen:
                        continue
                    seen.add(violation.oracle)
                    packaged.append(
                        _package_violation(
                            protocol,
                            channel,
                            seed,
                            index,
                            subseeds,
                            config,
                            system,
                            script.actions,
                            violation,
                        )
                    )
    except RunTimeout as exc:
        return RunOutcome(
            index=index,
            subseeds=subseeds,
            error=str(exc),
            timed_out=True,
            duration_s=time.perf_counter() - started,
        )
    except Exception as exc:  # containment: a bad run must not kill the campaign
        return RunOutcome(
            index=index,
            subseeds=subseeds,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - started,
        )
    return RunOutcome(
        index=index,
        subseeds=subseeds,
        steps=result.steps,
        quiescent=result.quiescent,
        behavior_length=len(result.behavior),
        states=tuple(result.fragment.states),
        found=found,
        violations=packaged,
        oracle_checks=oracle_checks,
        pre_events=tuple(pre_events),
        post_events=tuple(post_events),
        error=None,
        duration_s=time.perf_counter() - started,
    )


# Worker-side globals, installed by the fork initializer.
_WORKER: dict = {}


def _init_worker(
    protocol: str,
    channel: str,
    seed: int,
    config: FuzzConfig,
    capture: bool,
    run_timeout: Optional[float],
) -> None:
    # The fork inherits the master's installed tracer -- including any
    # open JSONL sink file handle.  Detach immediately: workers capture
    # into per-run MemorySinks and the master replays the chunks.
    set_tracer(None)
    _WORKER.update(
        protocol=protocol,
        channel=channel,
        seed=seed,
        config=config,
        capture=capture,
        run_timeout=run_timeout,
    )


def _pool_run(task: Tuple[int, SubSeeds]) -> RunOutcome:
    index, subseeds = task
    return execute_run(
        _WORKER["protocol"],
        _WORKER["channel"],
        _WORKER["seed"],
        index,
        subseeds,
        _WORKER["config"],
        capture=_WORKER["capture"],
        run_timeout=_WORKER["run_timeout"],
    )


def run_schedule(
    protocol: str,
    channel: str,
    seed: int,
    schedule: Sequence[SubSeeds],
    config: FuzzConfig,
    workers: int = 1,
    run_timeout: Optional[float] = None,
    capture: bool = False,
    parallel_threshold: int = PARALLEL_THRESHOLD,
) -> Tuple[Iterator[RunOutcome], str]:
    """Execute the schedule; yields outcomes strictly in run-index order.

    Returns ``(outcome iterator, mode)`` where ``mode`` is ``"fork"``
    when a process pool is actually used and ``"serial"`` otherwise
    (``workers <= 1``, schedule below the threshold, or no ``fork``
    start method).  The iterator is lazy so the master merges each run
    as it completes instead of buffering the whole campaign.
    """
    workers = max(1, int(workers))
    context = None
    if workers > 1 and len(schedule) >= parallel_threshold:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = None

    if context is None:
        def _serial() -> Iterator[RunOutcome]:
            for index, subseeds in enumerate(schedule):
                yield execute_run(
                    protocol,
                    channel,
                    seed,
                    index,
                    subseeds,
                    config,
                    capture=capture,
                    run_timeout=run_timeout,
                )

        return _serial(), "serial"

    # concurrent.futures rather than multiprocessing.Pool: when a
    # worker process dies abruptly (os._exit, segfault, OOM kill) the
    # Pool silently loses the task and ``.get()`` blocks forever,
    # whereas the executor fails every pending future with
    # BrokenProcessPool -- which is what makes crash containment
    # possible at all.
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    def _make_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(workers, len(schedule)),
            mp_context=context,
            initializer=_init_worker,
            initargs=(protocol, channel, seed, config, capture, run_timeout),
        )

    try:
        executor = _make_executor()
    except OSError:  # pragma: no cover - fork denied
        return run_schedule(
            protocol,
            channel,
            seed,
            schedule,
            config,
            workers=1,
            run_timeout=run_timeout,
            capture=capture,
        )

    def _pooled() -> Iterator[RunOutcome]:
        pool = executor
        futures = {
            index: pool.submit(_pool_run, (index, subseeds))
            for index, subseeds in enumerate(schedule)
        }
        try:
            for index, subseeds in enumerate(schedule):
                try:
                    yield futures[index].result()
                except BrokenProcessPool:
                    # A worker died mid-task.  The in-worker containment
                    # never lets an exception escape a run, so this is a
                    # hard death (os._exit, signal); the broken executor
                    # fails every pending future, so rebuild it and
                    # resubmit the runs that never finished.
                    yield RunOutcome(
                        index=index,
                        subseeds=subseeds,
                        error="worker crashed: process pool broken",
                    )
                    pool = _make_executor()
                    for later in range(index + 1, len(schedule)):
                        future = futures[later]
                        if not (
                            future.done() and future.exception() is None
                        ):
                            futures[later] = pool.submit(
                                _pool_run, (later, schedule[later])
                            )
                except Exception as exc:
                    yield RunOutcome(
                        index=index,
                        subseeds=subseeds,
                        error=f"worker crashed: "
                        f"{type(exc).__name__}: {exc}",
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    return _pooled(), "fork"
