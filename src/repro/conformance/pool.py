"""Batched process-pool execution of a fuzz campaign's run schedule.

Each fuzz run is independent once its :class:`SubSeeds` are derived:
the system, script, execution, oracle verdicts and shrunk repros are
all pure functions of ``(protocol, channel, seed, index, subseeds,
config)``.  The campaign therefore derives the full sub-seed schedule
serially up front (bit-identical to a serial campaign) and shards it
into **batches** of consecutive runs; each batch is one task for a
persistent ``multiprocessing`` fork pool.  Only campaign-global state
-- the :class:`~repro.ioa.engine.interning.InternTable`, corpus credit
and the obs event stream -- stays with the master, which merges worker
results **in run-index order**.  The merge is what makes ``workers=N``
byte-identical to ``workers=1``: interning order, corpus order,
violation order and the trace stream never depend on which worker
finished first.

Why batches rather than one task per run (the PR-5 design):

* **amortized IPC**: one submit/result round-trip and one pickle per
  ~``batch_size`` runs instead of per run, which is what previously
  made a 4-worker pool *slower* than serial on cheap campaigns;
* **warm workers**: the executor is built once per campaign (workers
  fork once, with the protocol/channel registries pre-imported and
  pre-resolved by the initializer) and stays up across batches;
* **in-worker shrinking**: ddmin shrinking and repro packaging run
  inside :func:`execute_run`, i.e. inside the worker -- the master
  never re-executes a scenario;
* **compact streaming**: a :class:`BatchOutcome` carries per-run state
  *fingerprints deduplicated across the whole batch* (a state value is
  shipped at most once per batch, attached to the run that saw it
  first) and the batch's obs event chunks, so the payload back to the
  master shrinks with cross-run state overlap.

Short schedules are still executed in-process (forking pays off only
once there is enough work to amortize pool start-up), and on platforms
without a ``fork`` start method the schedule degrades to serial -- but
no longer *silently*: the returned :class:`PoolInfo` reports
``mode="serial-fallback"`` plus the reason, which the CLI surfaces as
a stderr warning and ``details.pool`` telemetry.

Two hardening guards ride along, applied identically in serial and
pool mode:

* a per-run wall-clock guard (``run_timeout`` seconds, SIGALRM-based
  where available) that abandons a runaway run instead of hanging the
  campaign -- in batched mode with **per-batch budget accounting**: a
  batch of N runs gets N x ``run_timeout`` of total wall-clock, each
  run is still individually bounded by ``run_timeout``, and a batch
  that exhausts its budget records its remaining runs as timed out
  without executing them; and
* worker-crash containment: any exception escaping a run -- a protocol
  bug, a timeout, a dying worker process -- is recorded as a *failed
  run* (:class:`RunOutcome` with ``error`` set) and the campaign
  continues.  A worker dying mid-batch breaks the whole executor
  (failing every sibling's pending future too), so the shared pool is
  rebuilt, unfinished batches are resubmitted, and each batch that
  observed the breakage is retried on a dedicated one-worker executor
  that only its own runs can break: an innocent batch re-executes
  cleanly (runs are pure, so the do-over is byte-identical), and a
  genuinely crashy batch fails exactly its own runs.

Note that a triggered timeout is inherently wall-clock-dependent, so a
campaign that hits one is only deterministic in its surviving runs;
the default (no timeout) preserves the full determinism contract.
"""

from __future__ import annotations

import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..ioa.automaton import State
from ..obs import MemorySink, set_tracer, tracing
from ..obs.events import Event
from .harness import FuzzConfig, SubSeeds, build_script, build_system, execute_script
from .oracles import OracleViolation, check_execution

#: Below this many scheduled runs the campaign stays in-process: pool
#: start-up (forking ``workers`` interpreters) costs more than the runs.
PARALLEL_THRESHOLD = 2

#: Auto-sized batches aim for this many batches per worker, so a slow
#: batch (one shrink-heavy run) cannot serialize the whole campaign
#: behind a single worker.
BATCHES_PER_WORKER = 4

#: Auto-sized batches never exceed this many runs: a crashed worker
#: fails its whole batch, so unbounded batches would trade containment
#: granularity for diminishing IPC savings.
MAX_AUTO_BATCH = 16


class RunTimeout(Exception):
    """A fuzz run exceeded the campaign's per-run wall-clock budget."""


class StateFingerprint:
    """A visited state bundled with its structural hash, precomputed
    worker-side.

    Composed fuzz states are deep tuples of frozen dataclasses dragging
    per-run delivery-set prefixes (hundreds of ints), so ``hash(state)``
    is the single most expensive operation of the campaign master's
    merge loop -- and CPython recomputes it on *every* dict/set probe.
    The worker hashes each state exactly once (it needs the hash for
    its own dedup anyway) and ships the cached value alongside, so the
    master's :class:`~repro.ioa.engine.interning.InternTable` probes
    cost an int comparison instead of a deep re-hash.

    Only the *hash* is cached; equality still compares the underlying
    state values, so interning credit -- and with it the serial/pooled
    byte-identity contract -- is decided by value equality exactly as
    before.  (The cached hash is consistent between master and forked
    workers because fork inherits the interpreter's hash seed, and it
    never leaves the process in any output artifact.)
    """

    __slots__ = ("value", "cached_hash")

    def __init__(self, value: State, cached_hash: Optional[int] = None):
        self.value = value
        self.cached_hash = hash(value) if cached_hash is None else cached_hash

    def __hash__(self) -> int:
        return self.cached_hash

    def __eq__(self, other) -> bool:
        if isinstance(other, StateFingerprint):
            return self.value == other.value
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StateFingerprint({self.value!r})"

    def __getstate__(self):
        return (self.value, self.cached_hash)

    def __setstate__(self, state):
        self.value, self.cached_hash = state


@dataclass
class RunOutcome:
    """Everything one fuzz run sends back to the campaign master.

    ``state_values`` are the run's *distinct* visited states in
    first-occurrence order, as hash-carrying
    :class:`StateFingerprint` wrappers -- the fingerprints the master
    interns (in run-index order) to assign coverage credit, so workers
    never touch the shared
    :class:`~repro.ioa.engine.interning.InternTable`.  Deduplicating
    within the run does not change the interning credit (a duplicate
    can never grow the table), and in batched mode the worker further
    strips values already shipped by an earlier run of the *same
    batch* (see :func:`run_batch`) -- those are already in the master
    table by the time this run is merged, so the credit and the
    table's insertion order still come out byte-identical to a serial
    campaign.

    ``pre_events`` and ``post_events`` are the run's captured obs
    chunks -- everything emitted before and after the interning point
    of a serial campaign loop -- which the master replays around its
    own ``fuzz.states_interned`` counter to reproduce the serial
    stream.
    """

    index: int
    subseeds: SubSeeds
    steps: int = 0
    quiescent: bool = False
    behavior_length: int = 0
    stabilization_time: Optional[int] = None
    stab_converged: Optional[bool] = None
    state_values: Tuple[StateFingerprint, ...] = ()
    found: List[OracleViolation] = field(default_factory=list)
    violations: List["ViolationReport"] = field(default_factory=list)  # noqa: F821
    oracle_checks: int = 0
    pre_events: Tuple[Event, ...] = ()
    post_events: Tuple[Event, ...] = ()
    error: Optional[str] = None
    timed_out: bool = False
    #: why the requested wall-clock guard could not be armed for this
    #: run (None when it armed, or was never requested); the run still
    #: executed, just unguarded.
    timeout_unavailable: Optional[str] = None
    duration_s: float = 0.0


@dataclass
class BatchOutcome:
    """One batch's worth of run outcomes, shipped master-ward as a unit.

    ``outcomes`` are in run-index order (``start``, ``start+1``, ...).
    Packaging a whole batch into one message is the compactness play:
    one pickle and one result-queue round-trip per batch, and the
    batch-level state dedup in :func:`run_batch` means every distinct
    state value crosses the process boundary at most once per batch.
    """

    start: int
    outcomes: Tuple[RunOutcome, ...]


@dataclass(frozen=True)
class PoolInfo:
    """How :func:`run_schedule` decided to execute the schedule.

    ``mode`` is ``"fork"`` when a process pool is actually used,
    ``"serial"`` when the caller asked for one worker, and
    ``"serial-fallback"`` when parallelism was *requested but not
    delivered* (schedule below the threshold, no ``fork`` start
    method, or fork denied by the OS) -- the case the CLI warns about.
    """

    mode: str
    workers: int
    batch_size: int
    batches: int
    fallback_reason: Optional[str] = None


@contextmanager
def _alarm(seconds: Optional[float]):
    """Raise :class:`RunTimeout` if the block runs longer than ``seconds``.

    SIGALRM-based, so it interrupts a wedged run mid-step (a plain
    after-the-fact duration check could not).  Yields a guard-status
    dict: ``armed`` says whether a timer actually protects the block,
    and ``unavailable`` carries the reason when a *requested* guard
    could not be installed -- no ``setitimer`` on the platform, or
    ``signal.signal`` refused because we are not on the main thread.
    In both cases the block still runs, just unguarded; the campaign
    surfaces the degradation (``fuzz.pool.timeout_unavailable``)
    instead of hiding it.
    """
    status = {"armed": False, "unavailable": None}
    if not seconds:
        yield status
        return
    if not hasattr(signal, "setitimer"):  # pragma: no cover - non-POSIX
        status["unavailable"] = "no SIGALRM timers on this platform"
        yield status
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded the {seconds}s wall-clock budget")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:
        # signal handlers can only be installed from the main thread;
        # a campaign embedded in a worker thread runs unguarded.
        status["unavailable"] = (
            "SIGALRM handlers require the main thread; "
            "run executed without a wall-clock guard"
        )
        yield status
        return
    status["armed"] = True
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield status
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@contextmanager
def _capturing(capture: bool):
    """Capture the block's obs events into a list (empty when off).

    The list is filled when the block *exits* (``MemorySink.events`` is
    a snapshot), so read it only after the ``with`` statement.
    """
    if not capture:
        yield []
        return
    sink = MemorySink()
    captured: list = []
    with tracing(sink):
        yield captured
    captured.extend(sink.events)


def _distinct_states(
    result: "ScenarioResult",  # noqa: F821
) -> Tuple[StateFingerprint, ...]:
    """Distinct states of one run, fingerprinted, first-occurrence order.

    Dedup happens in the encoded domain
    (:meth:`~repro.sim.runner.ScenarioResult.distinct_states`, via the
    identity-memoized stream encoder), so only the *distinct* states
    are ever deep-hashed -- once each, inside the fingerprint
    constructor, where the master-bound cached hash is computed anyway.
    """
    return tuple(
        StateFingerprint(state) for state in result.distinct_states()
    )


def execute_run(
    protocol: str,
    channel: str,
    seed: int,
    index: int,
    subseeds: SubSeeds,
    config: FuzzConfig,
    capture: bool = False,
    run_timeout: Optional[float] = None,
    resolved=None,
) -> RunOutcome:
    """One complete fuzz run: build, execute, judge, shrink, package.

    Pure in its arguments (modulo wall-clock fields), which is the
    whole parallelization argument: the master can replay the outcome
    stream in index order and obtain the serial campaign verbatim.
    Every exception is contained into a failed-run outcome.
    ``resolved`` is the warm-worker fast path: a pre-resolved
    ``(protocol, channel builder)`` pair from
    :func:`~repro.conformance.harness.resolve_pair`, so persistent
    workers skip the registry on every run.
    """
    from .fuzzer import _checks_for, _package_violation

    started = time.perf_counter()
    guard = {"armed": False, "unavailable": None}
    try:
        with _alarm(run_timeout) as guard:
            with _capturing(capture) as pre_events:
                system = build_system(
                    protocol, channel, subseeds, config, resolved=resolved
                )
                script = build_script(system, subseeds, config)
                result = execute_script(
                    system, script.actions, subseeds, config
                )
            with _capturing(capture) as post_events:
                found = check_execution(system, result, config)
                oracle_checks = _checks_for(result, system, config)
                stab_time = None
                stab_converged = None
                if config.init_mode == "arbitrary":
                    from .arbitrary import stabilization_report

                    stab = stabilization_report(
                        result.behavior, system.t, system.r
                    )
                    stab_time = stab.time
                    stab_converged = stab.converged
                packaged = []
                seen = set()
                for violation in found:
                    if violation.oracle in seen:
                        continue
                    seen.add(violation.oracle)
                    packaged.append(
                        _package_violation(
                            protocol,
                            channel,
                            seed,
                            index,
                            subseeds,
                            config,
                            system,
                            script.actions,
                            violation,
                        )
                    )
    except RunTimeout as exc:
        return RunOutcome(
            index=index,
            subseeds=subseeds,
            error=str(exc),
            timed_out=True,
            duration_s=time.perf_counter() - started,
        )
    except Exception as exc:  # containment: a bad run must not kill the campaign
        return RunOutcome(
            index=index,
            subseeds=subseeds,
            error=f"{type(exc).__name__}: {exc}",
            timeout_unavailable=guard["unavailable"],
            duration_s=time.perf_counter() - started,
        )
    return RunOutcome(
        index=index,
        subseeds=subseeds,
        steps=result.steps,
        quiescent=result.quiescent,
        behavior_length=len(result.behavior),
        stabilization_time=stab_time,
        stab_converged=stab_converged,
        state_values=_distinct_states(result),
        found=found,
        violations=packaged,
        oracle_checks=oracle_checks,
        pre_events=tuple(pre_events),
        post_events=tuple(post_events),
        error=None,
        timeout_unavailable=guard["unavailable"],
        duration_s=time.perf_counter() - started,
    )


def run_batch(
    protocol: str,
    channel: str,
    seed: int,
    start: int,
    batch: Sequence[SubSeeds],
    config: FuzzConfig,
    capture: bool = False,
    run_timeout: Optional[float] = None,
    resolved=None,
    clock: Callable[[], float] = time.perf_counter,
) -> BatchOutcome:
    """Execute one batch of consecutive runs inside a single worker.

    Applies the per-batch wall-clock budget: with ``run_timeout`` set,
    the whole batch gets ``len(batch) * run_timeout`` seconds.  Each
    run's SIGALRM allowance is the smaller of ``run_timeout`` and the
    batch's remaining budget, so a batch whose early runs eat the
    budget (timer overshoot, signal latency, slow teardown between
    runs) records its remaining runs as timed out instead of
    overrunning; a batch of fast runs never notices.  ``clock`` exists
    so tests can drive the accounting deterministically.

    Also performs the batch-level state compaction: a state value is
    attached to the first run of the batch that visited it and
    stripped from later runs' ``state_values`` -- by the time the
    master merges a later run, the earlier run already interned the
    value, so the credit arithmetic is unchanged while the value
    crosses the process boundary once.
    """
    budget = run_timeout * len(batch) if run_timeout else None
    batch_started = clock()
    shipped: set = set()
    outcomes: List[RunOutcome] = []
    for offset, subseeds in enumerate(batch):
        index = start + offset
        allowance = run_timeout
        if budget is not None:
            remaining = budget - (clock() - batch_started)
            if remaining <= 0:
                outcomes.append(
                    RunOutcome(
                        index=index,
                        subseeds=subseeds,
                        error=(
                            f"batch exhausted its {budget}s wall-clock "
                            f"budget before run {index}"
                        ),
                        timed_out=True,
                    )
                )
                continue
            allowance = min(run_timeout, remaining)
        outcome = execute_run(
            protocol,
            channel,
            seed,
            index,
            subseeds,
            config,
            capture=capture,
            run_timeout=allowance,
            resolved=resolved,
        )
        if outcome.state_values:
            fresh = [
                value
                for value in outcome.state_values
                if value not in shipped
            ]
            shipped.update(fresh)
            outcome.state_values = tuple(fresh)
        outcomes.append(outcome)
    return BatchOutcome(start=start, outcomes=tuple(outcomes))


def auto_batch_size(runs: int, workers: int) -> int:
    """Batch size targeting ~:data:`BATCHES_PER_WORKER` batches/worker.

    Small enough that run-cost skew (one shrink-heavy run) load-balances
    across workers and a crashed worker fails a bounded slice of the
    schedule, large enough that per-batch IPC stops dominating cheap
    runs; capped at :data:`MAX_AUTO_BATCH`.
    """
    spread = max(1, workers) * BATCHES_PER_WORKER
    return max(1, min(MAX_AUTO_BATCH, -(-runs // spread)))


# Worker-side globals, installed by the fork initializer.
_WORKER: dict = {}


def _init_worker(
    protocol: str,
    channel: str,
    seed: int,
    config: FuzzConfig,
    capture: bool,
    run_timeout: Optional[float],
) -> None:
    # The fork inherits the master's installed tracer -- including any
    # open JSONL sink file handle.  Detach immediately: workers capture
    # into per-run MemorySinks and the master replays the chunks.
    set_tracer(None)
    # Warm start: resolve the registry entries once per worker process,
    # so no run pays a registry lookup (and a bad name fails loudly at
    # pool start-up, not mid-campaign -- the campaign driver validated
    # the names already, so this cannot ordinarily raise).
    from .harness import resolve_pair

    _WORKER.update(
        protocol=protocol,
        channel=channel,
        seed=seed,
        config=config,
        capture=capture,
        run_timeout=run_timeout,
        resolved=resolve_pair(protocol, channel),
    )


def _pool_batch(task: Tuple[int, Tuple[SubSeeds, ...]]) -> BatchOutcome:
    start, batch = task
    return run_batch(
        _WORKER["protocol"],
        _WORKER["channel"],
        _WORKER["seed"],
        start,
        batch,
        _WORKER["config"],
        capture=_WORKER["capture"],
        run_timeout=_WORKER["run_timeout"],
        resolved=_WORKER["resolved"],
    )


def run_partitioned(
    schedule: Sequence,
    *,
    serial_batch: Callable[[int, Sequence], Sequence],
    pool_task: Callable,
    initializer: Callable,
    initargs: Tuple,
    failed_outcome: Callable[[int, object, str], object],
    workers: int = 1,
    batch_size: Optional[int] = None,
    parallel_threshold: int = PARALLEL_THRESHOLD,
) -> Tuple[Iterator, PoolInfo]:
    """The generic batched warm-worker pool: shard ``schedule`` into
    batches of consecutive items, execute each batch through a
    persistent fork pool (or in-process), and yield per-item outcomes
    strictly in schedule order.

    This is the workload-agnostic core the fuzz campaign
    (:func:`run_schedule`) and the multi-session load generator
    (:mod:`repro.sim.load`) both run on.  A workload plugs in:

    * ``serial_batch(start, items)`` -- execute one batch in-process
      and return its outcomes (the serial / fallback path);
    * ``pool_task`` -- a *module-level picklable* callable mapping one
      ``(start, items)`` task to an object with an ``.outcomes``
      sequence, reading its fixed context from worker globals;
    * ``initializer``/``initargs`` -- the fork initializer that
      installs those worker globals (and detaches the inherited
      tracer);
    * ``failed_outcome(index, item, message)`` -- the error outcome
      recorded for an item whose worker died.

    Batching, auto-sizing, the serial-fallback vocabulary
    (:class:`PoolInfo`) and the broken-pool containment protocol
    (rebuild, resubmit unfinished batches, retry the observing batch
    on a dedicated one-worker executor so innocent batches are
    absolved) are identical for every workload; see the module
    docstring for why each exists.  The outcome iterator is lazy so
    the master merges each batch as it completes instead of buffering
    the whole schedule.
    """
    workers = max(1, int(workers))
    requested_parallel = workers > 1
    fallback_reason = None
    context = None
    if requested_parallel and len(schedule) >= parallel_threshold:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            fallback_reason = "no fork start method on this platform"
    elif requested_parallel:
        fallback_reason = (
            f"{len(schedule)} scheduled run(s) below the "
            f"{parallel_threshold}-run pool threshold"
        )

    if batch_size is None:
        batch_size = auto_batch_size(len(schedule), workers)
    batch_size = max(1, int(batch_size))
    starts = range(0, len(schedule), batch_size)
    n_batches = len(starts)

    def _serial_info(reason: Optional[str]) -> PoolInfo:
        return PoolInfo(
            mode="serial-fallback" if requested_parallel else "serial",
            workers=workers,
            batch_size=batch_size,
            batches=n_batches,
            fallback_reason=reason if requested_parallel else None,
        )

    def _serial() -> Iterator:
        for start in starts:
            yield from serial_batch(
                start, schedule[start : start + batch_size]
            )

    if context is None:
        return _serial(), _serial_info(fallback_reason)

    # concurrent.futures rather than multiprocessing.Pool: when a
    # worker process dies abruptly (os._exit, segfault, OOM kill) the
    # Pool silently loses the task and ``.get()`` blocks forever,
    # whereas the executor fails every pending future with
    # BrokenProcessPool -- which is what makes crash containment
    # possible at all.
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    def _make_executor(max_workers: Optional[int] = None) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max_workers or min(workers, n_batches),
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        )

    try:
        executor = _make_executor()
    except OSError:  # pragma: no cover - fork denied
        return _serial(), _serial_info(
            "process pool unavailable (fork denied)"
        )

    batches: List[Tuple[int, Tuple]] = [
        (start, tuple(schedule[start : start + batch_size]))
        for start in starts
    ]

    def _pooled() -> Iterator:
        pool = executor
        futures = {
            number: pool.submit(pool_task, batch)
            for number, batch in enumerate(batches)
        }
        try:
            for number, (start, batch) in enumerate(batches):
                try:
                    yield from futures[number].result().outcomes
                except BrokenProcessPool:
                    # A worker died mid-batch.  The in-worker containment
                    # never lets an exception escape a run, so this is a
                    # hard death (os._exit, signal).  A broken executor
                    # fails *every* unfinished future, though, so this
                    # batch may merely be collateral of a crash in a
                    # sibling batch.  Rebuild the shared pool, resubmit
                    # every later batch that never finished cleanly,
                    # then retry this batch on a *dedicated* one-worker
                    # executor: only the batch's own runs can break it,
                    # so a retry failure pins the crash on exactly this
                    # batch, while an innocent batch re-executes cleanly
                    # (runs are pure, so the do-over is byte-identical).
                    pool = _make_executor()
                    for later in range(number + 1, len(batches)):
                        future = futures[later]
                        if not (
                            future.done() and future.exception() is None
                        ):
                            futures[later] = pool.submit(
                                pool_task, batches[later]
                            )
                    try:
                        retry = _make_executor(max_workers=1)
                        try:
                            yield from (
                                retry.submit(pool_task, batches[number])
                                .result()
                                .outcomes
                            )
                        finally:
                            retry.shutdown(wait=True, cancel_futures=True)
                    except (BrokenProcessPool, OSError):
                        for offset, item in enumerate(batch):
                            yield failed_outcome(
                                start + offset,
                                item,
                                "worker crashed: process pool broken",
                            )
                except Exception as exc:
                    for offset, item in enumerate(batch):
                        yield failed_outcome(
                            start + offset,
                            item,
                            f"worker crashed: "
                            f"{type(exc).__name__}: {exc}",
                        )
        finally:
            # By the time we get here every yielded batch has been
            # consumed (or the campaign is aborting), so waiting is
            # cheap -- and skipping the wait leaves the executor's
            # wakeup pipe to be torn down at interpreter exit, which
            # races the atexit hook into "Bad file descriptor" noise.
            pool.shutdown(wait=True, cancel_futures=True)

    return _pooled(), PoolInfo(
        mode="fork",
        workers=workers,
        batch_size=batch_size,
        batches=n_batches,
    )


def run_schedule(
    protocol: str,
    channel: str,
    seed: int,
    schedule: Sequence[SubSeeds],
    config: FuzzConfig,
    workers: int = 1,
    run_timeout: Optional[float] = None,
    capture: bool = False,
    batch_size: Optional[int] = None,
    parallel_threshold: int = PARALLEL_THRESHOLD,
) -> Tuple[Iterator[RunOutcome], PoolInfo]:
    """Execute a fuzz schedule; yields outcomes strictly in run-index
    order.

    The fuzz-specific adapter over :func:`run_partitioned`: batches
    execute through :func:`run_batch` (in-process) or
    :func:`_pool_batch` (in a warm worker initialized by
    :func:`_init_worker`), and a run whose worker died is recorded as
    a failed :class:`RunOutcome`.  Returns ``(outcome iterator, pool
    info)``; see :class:`PoolInfo` for the mode vocabulary.
    ``batch_size`` fixes how many consecutive runs form one worker
    task (default: auto-sized from the schedule length and worker
    count via :func:`auto_batch_size`).
    """

    def _serial_batch(start, items):
        return run_batch(
            protocol,
            channel,
            seed,
            start,
            items,
            config,
            capture=capture,
            run_timeout=run_timeout,
        ).outcomes

    def _failed(index, subseeds, message):
        return RunOutcome(index=index, subseeds=subseeds, error=message)

    return run_partitioned(
        schedule,
        serial_batch=_serial_batch,
        pool_task=_pool_batch,
        initializer=_init_worker,
        initargs=(protocol, channel, seed, config, capture, run_timeout),
        failed_outcome=_failed,
        workers=workers,
        batch_size=batch_size,
        parallel_threshold=parallel_threshold,
    )
