"""The fuzz campaign driver.

One campaign = one (protocol, channel, seed, config) quadruple.  The
campaign master RNG derives per-run :class:`SubSeeds`; each run builds a
fresh system against sub-seeded channel adversaries, generates a
well-formed fault script, executes it under seeded fair interleaving,
and checks the execution against every applicable oracle
(:mod:`repro.conformance.oracles`).  Violating runs are shrunk to
locally-minimal scripts (:mod:`repro.conformance.shrink`) -- one
repro per *distinct violated oracle* per run -- and packaged as
replayable repro documents (:mod:`repro.conformance.replay`).

Coverage is measured with the exploration engine's
:class:`~repro.ioa.engine.interning.InternTable`: every system state an
execution visits is interned, and a run that contributes many
first-seen states is recorded in the corpus even if it violated
nothing.  Campaigns are bit-deterministic in their seed: no module on
this path touches the global RNG.

Runs are executed through :mod:`repro.conformance.pool`: the full
sub-seed schedule is derived serially up front and chunked into
batches, batches fan out to a persistent fork pool (``workers > 1``)
or run in-process, and the master merges outcomes in run-index order
-- interning each run's (batch-deduplicated) state fingerprints,
assigning corpus credit and replaying each run's captured obs events
-- so a parallel campaign is byte-identical to a serial one whatever
the worker count or batch size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..ioa.engine.interning import InternTable
from ..obs import (
    STATUS_OK,
    STATUS_VIOLATION,
    RunReport,
    current_tracer,
)
from .corpus import DEFAULT_COVERAGE_THRESHOLD, CorpusEntry
from .harness import FuzzConfig, SubSeeds
from .oracles import OracleViolation
from .replay import make_repro
from .shrink import ShrinkResult, shrink_script

import random


@dataclass
class ViolationReport:
    """One oracle violation, with its (possibly shrunk) repro script."""

    run_index: int
    violation: OracleViolation
    script_length: int
    shrunk_length: int
    shrink: Optional[ShrinkResult]
    repro: dict

    def to_dict(self) -> dict:
        return {
            "run_index": self.run_index,
            "oracle": self.violation.oracle,
            "layer": self.violation.layer,
            "paper": self.violation.paper,
            "witness": self.violation.witness,
            "direction": list(self.violation.direction)
            if self.violation.direction
            else None,
            "prefix_length": self.violation.prefix_length,
            "script_length": self.script_length,
            "shrunk_length": self.shrunk_length,
        }


@dataclass
class RunRecord:
    """Summary of one fuzz run.

    ``error`` is set for contained failures -- a run that raised, timed
    out (``run_timeout``) or lost its worker process; such a run
    contributes nothing to coverage or the corpus but still occupies
    its schedule slot, so the campaign's run indices stay stable.
    """

    index: int
    subseeds: SubSeeds
    steps: int
    quiescent: bool
    behavior_length: int
    new_states: int
    violations: List[OracleViolation] = field(default_factory=list)
    error: Optional[str] = None
    # Arbitrary-init runs only (None in clean mode): the run's
    # stabilization measurement, merged into the campaign percentiles.
    stabilization_time: Optional[int] = None
    stab_converged: Optional[bool] = None


@dataclass
class FuzzCampaignResult:
    """Everything one campaign produced."""

    protocol: str
    channel: str
    seed: int
    config: FuzzConfig
    runs: List[RunRecord]
    violations: List[ViolationReport]
    corpus: List[CorpusEntry]
    states_interned: int
    oracle_checks: int
    deep: dict = field(default_factory=dict)
    pool: dict = field(default_factory=dict)
    duration_s: float = 0.0

    @property
    def found_violation(self) -> bool:
        return (
            bool(self.violations)
            or not self.deep.get("message_independent", True)
            or not self.deep.get("k_bound_delivered", True)
        )

    @property
    def failed_runs(self) -> int:
        return sum(1 for run in self.runs if run.error is not None)

    def report(self) -> RunReport:
        counters = {
            "fuzz.runs": len(self.runs),
            "fuzz.failed_runs": self.failed_runs,
            "fuzz.oracle_checks": self.oracle_checks,
            "fuzz.violations": len(self.violations),
            "fuzz.violating_runs": sum(
                1 for run in self.runs if run.violations
            ),
            "fuzz.states_interned": self.states_interned,
            "fuzz.steps": sum(run.steps for run in self.runs),
            "fuzz.nonquiescent_runs": sum(
                1
                for run in self.runs
                if not run.quiescent and run.error is None
            ),
            "fuzz.shrink_executions": sum(
                v.shrink.attempts for v in self.violations if v.shrink
            ),
        }
        details = {
            "protocol": self.protocol,
            "channel": self.channel,
            "seed": self.seed,
            "violations": [v.to_dict() for v in self.violations],
            "corpus_entries": len(self.corpus),
        }
        measured = [
            run
            for run in self.runs
            if run.stabilization_time is not None
        ]
        if measured:
            from ..sim.metrics import percentile_summary

            times = [run.stabilization_time for run in measured]
            summary = percentile_summary(times)
            converged = sum(1 for run in measured if run.stab_converged)
            counters["fuzz.stab.measured_runs"] = len(measured)
            counters["fuzz.stab.converged_runs"] = converged
            for key, value in summary.items():
                counters[f"fuzz.stab.time_{key}"] = value
            counters["fuzz.stab.time_max"] = max(times)
            details["stabilization"] = {
                **summary,
                "max": max(times),
                "measured_runs": len(measured),
                "converged_runs": converged,
            }
        if self.deep:
            details["deep"] = dict(self.deep)
        if self.pool:
            # Which pool executed the campaign is telemetry, not an
            # outcome: byte-identity between worker counts is over
            # everything *except* this key (and duration_s).
            details["pool"] = dict(self.pool)
        return RunReport(
            command="fuzz",
            status=STATUS_VIOLATION if self.found_violation else STATUS_OK,
            counters=counters,
            duration_s=self.duration_s,
            details=details,
        )


def fuzz_campaign(
    protocol: str,
    channel: str,
    seed: int,
    config: Optional[FuzzConfig] = None,
    replay_subseeds: Optional[Sequence[SubSeeds]] = None,
    coverage_threshold: int = DEFAULT_COVERAGE_THRESHOLD,
    workers: int = 1,
    run_timeout: Optional[float] = None,
    batch_size: Optional[int] = None,
) -> FuzzCampaignResult:
    """Run one fuzz campaign.

    ``replay_subseeds`` (e.g. from a loaded corpus) are fuzzed first,
    before ``config.runs`` freshly derived runs.  Determinism contract:
    two campaigns with equal arguments produce identical results,
    including identical shrunk scripts and repro documents -- and
    neither ``workers`` nor ``batch_size`` is part of the outcome: the
    sub-seed schedule is derived serially before any run executes,
    workers return pure per-run outcomes in per-batch envelopes, and
    the master interns state fingerprints and assigns corpus/coverage
    credit in run-index order, so ``workers=N`` is byte-identical to
    ``workers=1`` at any batching (violations, repro documents, corpus
    entries, counters, trace events).  ``batch_size`` fixes how many
    consecutive runs one worker task executes (default: auto-sized
    from the schedule length and worker count).  ``run_timeout``
    bounds each run's wall-clock seconds (batches are additionally
    held to a ``len(batch) * run_timeout`` total); a run that exceeds
    it (or raises, or loses its worker) is recorded as a failed
    :class:`RunRecord` instead of aborting the campaign.
    """
    from .pool import run_schedule
    from .registry import resolve_fuzz_channel, resolve_fuzz_protocol

    # Configuration errors are not contained failures: validate the
    # registry names eagerly, before any run is scheduled.
    resolve_fuzz_protocol(protocol)
    resolve_fuzz_channel(channel)

    config = config or FuzzConfig()
    tracer = current_tracer()
    started = time.perf_counter()
    master = random.Random(seed)
    table = InternTable()
    runs: List[RunRecord] = []
    violations: List[ViolationReport] = []
    corpus: List[CorpusEntry] = []
    oracle_checks = 0
    failures = 0
    timeouts = 0
    unguarded_runs = 0
    unguarded_reason: Optional[str] = None

    schedule: List[SubSeeds] = list(replay_subseeds or ())
    schedule += [SubSeeds.derive(master) for _ in range(config.runs)]

    with tracer.span("fuzz.pool", runs=len(schedule)):
        if tracer.enabled:
            tracer.count("fuzz.pool.dispatched", len(schedule))
        outcomes, pool_info = run_schedule(
            protocol,
            channel,
            seed,
            schedule,
            config,
            workers=workers,
            run_timeout=run_timeout,
            capture=tracer.enabled,
            batch_size=batch_size,
        )
        for outcome in outcomes:
            index, subseeds = outcome.index, outcome.subseeds
            with tracer.span("fuzz.run", index=index, seed=seed):
                if tracer.enabled:
                    tracer.count("fuzz.runs")
                if outcome.timeout_unavailable:
                    # The per-run wall-clock guard was requested but
                    # could not arm (no SIGALRM off the main thread /
                    # non-POSIX platform); the run executed unguarded.
                    unguarded_runs += 1
                    unguarded_reason = outcome.timeout_unavailable
                    if tracer.enabled:
                        tracer.count(
                            "fuzz.pool.timeout_unavailable",
                            1,
                            reason=outcome.timeout_unavailable,
                        )
                if outcome.error is not None:
                    failures += 1
                    timeouts += 1 if outcome.timed_out else 0
                    if tracer.enabled:
                        tracer.count("fuzz.pool.failures")
                        tracer.point(
                            "fuzz.run.error",
                            index=index,
                            error=outcome.error,
                        )
                    runs.append(
                        RunRecord(
                            index=index,
                            subseeds=subseeds,
                            steps=0,
                            quiescent=False,
                            behavior_length=0,
                            new_states=0,
                            error=outcome.error,
                        )
                    )
                    continue
                tracer.absorb(outcome.pre_events)
                # ``state_values`` are already deduplicated (within the
                # run, and against earlier runs of the same batch, whose
                # values this loop interned first), so every value is
                # hashed once here -- the serial credit arithmetic and
                # the table's insertion order are unchanged.
                before = len(table)
                for state in outcome.state_values:
                    table.intern(state)
                new_states = len(table) - before
                if tracer.enabled:
                    tracer.count("fuzz.states_interned", new_states)
                tracer.absorb(outcome.post_events)
                oracle_checks += outcome.oracle_checks
                runs.append(
                    RunRecord(
                        index=index,
                        subseeds=subseeds,
                        steps=outcome.steps,
                        quiescent=outcome.quiescent,
                        behavior_length=outcome.behavior_length,
                        new_states=new_states,
                        violations=outcome.found,
                        stabilization_time=outcome.stabilization_time,
                        stab_converged=outcome.stab_converged,
                    )
                )
                if outcome.violations:
                    violations.extend(outcome.violations)
                    for packaged in outcome.violations:
                        corpus.append(
                            CorpusEntry(
                                protocol,
                                channel,
                                seed,
                                index,
                                subseeds,
                                reason="violation",
                                oracle=packaged.violation.oracle,
                                new_states=new_states,
                            )
                        )
                elif new_states >= coverage_threshold:
                    corpus.append(
                        CorpusEntry(
                            protocol,
                            channel,
                            seed,
                            index,
                            subseeds,
                            reason="coverage",
                            new_states=new_states,
                        )
                    )

    deep = _deep_oracles(protocol, config, tracer) if config.deep_oracles else {}

    campaign = FuzzCampaignResult(
        protocol=protocol,
        channel=channel,
        seed=seed,
        config=config,
        runs=runs,
        violations=violations,
        corpus=corpus,
        states_interned=len(table),
        oracle_checks=oracle_checks,
        deep=deep,
        pool={
            "mode": pool_info.mode,
            "workers": max(1, int(workers)),
            "batch_size": pool_info.batch_size,
            "batches": pool_info.batches,
            "run_timeout": run_timeout,
            "failures": failures,
            "timeouts": timeouts,
            **(
                {
                    "timeout_unavailable": {
                        "runs": unguarded_runs,
                        "reason": unguarded_reason,
                    }
                }
                if unguarded_runs
                else {}
            ),
            **(
                {"fallback_reason": pool_info.fallback_reason}
                if pool_info.fallback_reason
                else {}
            ),
        },
        duration_s=time.perf_counter() - started,
    )
    if tracer.enabled:
        tracer.gauge("fuzz.corpus_entries", len(corpus))
    return campaign


def _package_violation(
    protocol: str,
    channel: str,
    seed: int,
    index: int,
    subseeds: SubSeeds,
    config: FuzzConfig,
    system,
    actions,
    violation: OracleViolation,
) -> ViolationReport:
    """Shrink (if configured) and build the replayable repro document."""
    shrink = None
    final_actions = tuple(actions)
    if config.shrink:
        shrink = shrink_script(
            system, actions, violation.oracle, subseeds, config
        )
        final_actions = shrink.actions
    repro = make_repro(
        protocol,
        channel,
        seed,
        index,
        subseeds,
        config,
        system,
        final_actions,
        violation,
        shrunk=shrink is not None,
    )
    return ViolationReport(
        run_index=index,
        violation=violation,
        script_length=len(actions),
        shrunk_length=len(final_actions),
        shrink=shrink,
        repro=repro,
    )


def _checks_for(result, system, config=None) -> int:
    """How many oracle applications ``check_execution`` performed."""
    from .oracles import DL_ORACLES, PL_ORACLES, QUIESCENT, STAB_ORACLES

    if (
        config is not None
        and getattr(config, "init_mode", "clean") == "arbitrary"
    ):
        return sum(
            1
            for oracle in STAB_ORACLES
            if oracle.scope != QUIESCENT or result.quiescent
        )
    count = 0
    for oracle in DL_ORACLES:
        if oracle.scope == QUIESCENT and not result.quiescent:
            continue
        count += 1  # validity's skip-gate is data-dependent; close enough
    for channel in (system.channel_tr, system.channel_rt):
        for oracle in PL_ORACLES:
            if oracle.scope == QUIESCENT and not result.quiescent:
                continue
            if oracle.fifo_only and not channel.fifo_only:
                continue
            count += 1
    return count


def _deep_oracles(protocol: str, config: FuzzConfig, tracer) -> dict:
    """Whole-protocol oracles: message independence and the k-bound probe.

    These analyze the protocol itself rather than one execution, so they
    run once per campaign (opt-in: they cost an exploration each).  Both
    carry an explicit boolean verdict that feeds ``found_violation``:
    ``message_independent`` and ``k_bound_delivered`` (False when the
    probe could not transmit a fresh message within its budget, i.e. the
    protocol refutes its own boundedness/liveness claim).
    """
    from ..datalink.kbounded import probe_k_bound
    from ..datalink.message_independence import check_message_independence
    from .registry import resolve_fuzz_protocol

    deep = {}
    with tracer.span("fuzz.deep", protocol=protocol):
        independence = check_message_independence(resolve_fuzz_protocol(protocol))
        deep["message_independent"] = bool(independence.independent)
        if not independence.independent:
            deep["message_independence_detail"] = independence.detail
        kbound = probe_k_bound(resolve_fuzz_protocol(protocol))
        deep["k_bound"] = kbound.k
        deep["k_bound_delivered"] = bool(kbound.delivered)
        if not kbound.delivered:
            deep["k_bound_detail"] = kbound.detail
    return deep
