"""Fuzz registries: which protocols and channels the fuzzer composes.

The conformance fuzzer is a *composition* harness: any registered
protocol can be driven over any registered channel family.  Protocol
entries are zero-argument factories (the fuzzer never parameterizes
them mid-campaign, so a campaign is fully described by two registry
names plus a seed).  Channel entries build one directed physical
channel from a sub-seed and the campaign's fault mix; the permissive
families realize the paper's C-hat (FIFO) and C-bar (non-FIFO) with a
seeded delivery set, so the channel adversary replays exactly.

Names are normalized (``-`` and ``_`` interchangeable), matching the
``repro fuzz --protocol/--channel`` CLI flags.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..channels.bounded import BoundedChannel
from ..channels.delivery_set import random_lossy_fifo, random_reordering
from ..channels.permissive import PermissiveChannel, PermissiveFifoChannel
from ..datalink.protocol import DataLinkProtocol
from ..protocols import (
    alternating_bit_protocol,
    baratz_segall_protocol,
    direct_protocol,
    eager_protocol,
    fragmenting_protocol,
    modulo_stenning_protocol,
    selective_repeat_protocol,
    sliding_window_protocol,
    stenning_protocol,
)

#: name -> zero-argument protocol factory.
FUZZ_PROTOCOLS: Dict[str, Callable[[], DataLinkProtocol]] = {
    "alternating_bit": lambda: alternating_bit_protocol(),
    "stenning": lambda: stenning_protocol(),
    "mod_stenning": lambda: modulo_stenning_protocol(4),
    "sliding_window": lambda: sliding_window_protocol(2),
    "selective_repeat": lambda: selective_repeat_protocol(2),
    "baratz_segall": lambda: baratz_segall_protocol(nonvolatile=True),
    "fragmentation": lambda: fragmenting_protocol(chunk=1, max_fragments=3),
    # The negative controls: ``naive`` is the retransmitting,
    # non-deduplicating strawman (duplicates under any retransmission),
    # ``naive_direct`` the fire-and-forget one (loses under any loss).
    "naive": lambda: eager_protocol(),
    "naive_direct": lambda: direct_protocol(),
}


def _normalize(name: str) -> str:
    return name.replace("-", "_")


def resolve_fuzz_protocol(name: str) -> DataLinkProtocol:
    """Build a registered protocol from its fuzz-registry name."""
    key = _normalize(name)
    if key not in FUZZ_PROTOCOLS:
        raise KeyError(
            f"unknown fuzz protocol {name!r}; available: "
            + ", ".join(sorted(FUZZ_PROTOCOLS))
        )
    return FUZZ_PROTOCOLS[key]()


def _fifo_channel(
    src, dst, seed, loss_rate, reorder_window, horizon, capacity=4
):
    """C-hat with a seeded monotone (lossy FIFO) delivery set."""
    return PermissiveFifoChannel(
        src,
        dst,
        initial_delivery=random_lossy_fifo(seed, loss_rate, horizon),
        name=f"fuzz-fifo[{src}->{dst},seed={seed}]",
    )


def _nonfifo_channel(
    src, dst, seed, loss_rate, reorder_window, horizon, capacity=4
):
    """C-bar with a seeded reordering + lossy delivery set."""
    return PermissiveChannel(
        src,
        dst,
        initial_delivery=random_reordering(
            seed, loss_rate, reorder_window, horizon
        ),
        name=f"fuzz-nonfifo[{src}->{dst},seed={seed}]",
    )


def _perfect_channel(
    src, dst, seed, loss_rate, reorder_window, horizon, capacity=4
):
    """A loss-free FIFO control channel (the identity delivery set)."""
    return PermissiveFifoChannel(
        src, dst, name=f"fuzz-perfect[{src}->{dst}]"
    )


def _bounded_nonfifo_channel(
    src, dst, seed, loss_rate, reorder_window, horizon, capacity=4
):
    """Bounded-capacity non-FIFO lossy channel (arXiv:1011.3632)."""
    return BoundedChannel(
        src,
        dst,
        seed=seed,
        loss_rate=loss_rate,
        reorder_window=reorder_window,
        horizon=horizon,
        capacity=capacity,
        name=f"fuzz-bounded[{src}->{dst},seed={seed},cap={capacity}]",
    )


#: name -> channel builder ``(src, dst, seed, loss, window, horizon,
#: capacity=4)``.
FUZZ_CHANNELS: Dict[str, Callable] = {
    "fifo": _fifo_channel,
    "nonfifo": _nonfifo_channel,
    "perfect": _perfect_channel,
    "bounded_nonfifo": _bounded_nonfifo_channel,
}


def resolve_fuzz_channel(name: str) -> Callable:
    """Look up a channel builder by fuzz-registry name."""
    key = _normalize(name)
    if key not in FUZZ_CHANNELS:
        raise KeyError(
            f"unknown fuzz channel {name!r}; available: "
            + ", ".join(sorted(FUZZ_CHANNELS))
        )
    return FUZZ_CHANNELS[key]
