"""Counterexample shrinking: locally-minimal violating input scripts.

Given a script whose execution violates some oracle, the shrinker
searches for a shorter script that still violates the *same* oracle
under the *same* adversary (channel delivery sets and interleaving
sub-seeds are held fixed; only the input script changes).  Candidates
must remain admissible environment scripts
(:func:`~repro.conformance.harness.script_admissible`) -- deleting a
``wake`` without its paired ``fail``, say, would produce a malformed
schedule whose "violations" are the environment's fault.

Three deletion passes run to fixpoint under a re-execution budget:

1. **ddmin** (Zeller-Hildebrandt delta debugging): try deleting
   progressively finer chunks, halving granularity when stuck;
2. **single-action deletion**: one action at a time, back to front;
3. **adjacent-pair deletion**: removes the ``fail``/``wake`` and
   ``crash``/``wake`` couples the generator emits as units, which no
   single deletion can remove without breaking alternation.

The result is locally minimal *for these moves*: no single chunk, action
or adjacent pair can be deleted without losing the violation.

Candidate verdicts are memoized: successive passes (and successive
fixpoint rounds) revisit many identical candidate scripts, and since a
candidate's verdict is a pure function of its actions (the adversary
and interleaving sub-seeds are held fixed), a repeated candidate is
answered from cache without re-execution.  ``attempts`` counts actual
re-executions only, so the budget buys strictly more distinct
candidates than before -- the search is deterministic either way.
This matters doubly since shrinking runs *inside* the fuzz-pool
workers: wasted re-executions there serialize whole batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ioa.actions import Action
from ..obs import current_tracer
from ..sim.network import DataLinkSystem
from .harness import FuzzConfig, SubSeeds, execute_script, script_admissible
from .oracles import check_execution


@dataclass
class ShrinkResult:
    """Outcome of one shrink search."""

    actions: Tuple[Action, ...]
    original_length: int
    attempts: int
    rounds: int
    budget_exhausted: bool

    @property
    def length(self) -> int:
        return len(self.actions)


def shrink_script(
    system: DataLinkSystem,
    actions: Sequence[Action],
    oracle_name: str,
    subseeds: SubSeeds,
    config: FuzzConfig,
) -> ShrinkResult:
    """Shrink ``actions`` while the named oracle still fires.

    Every accepted candidate is re-executed from the initial state and
    re-checked; a candidate is accepted only if the same oracle (by
    name) is violated again, so the shrinker never drifts onto a
    different failure.
    """
    tracer = current_tracer()
    attempts = 0
    budget = config.shrink_budget
    verdicts: Dict[Tuple[Action, ...], bool] = {}

    def still_violates(candidate: Sequence[Action]) -> bool:
        nonlocal attempts
        key = tuple(candidate)
        cached: Optional[bool] = verdicts.get(key)
        if cached is not None:
            return cached
        if attempts >= budget:
            # Not cached: a budget refusal says nothing about the
            # candidate itself.
            return False
        if not script_admissible(candidate, system.t, system.r):
            verdicts[key] = False
            return False
        attempts += 1
        if tracer.enabled:
            tracer.count("fuzz.shrink_executions")
        result = execute_script(system, candidate, subseeds, config)
        verdict = any(
            v.oracle == oracle_name
            for v in check_execution(system, result, config)
        )
        verdicts[key] = verdict
        return verdict

    current: List[Action] = list(actions)
    rounds = 0
    with tracer.span(
        "fuzz.shrink", oracle=oracle_name, original=len(current)
    ):
        while attempts < budget:
            rounds += 1
            before = len(current)
            current = _ddmin_pass(current, still_violates)
            current = _deletion_pass(current, still_violates, width=1)
            current = _deletion_pass(current, still_violates, width=2)
            if len(current) == before:
                break
        if tracer.enabled:
            tracer.count("fuzz.shrink_rounds", rounds)
    return ShrinkResult(
        actions=tuple(current),
        original_length=len(actions),
        attempts=attempts,
        rounds=rounds,
        budget_exhausted=attempts >= budget,
    )


Predicate = Callable[[Sequence[Action]], bool]


def _ddmin_pass(actions: List[Action], keep: Predicate) -> List[Action]:
    """One delta-debugging sweep: delete coarse-to-fine chunks."""
    current = actions
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        deleted_any = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk :]
            if candidate and keep(candidate):
                current = candidate
                deleted_any = True
                # Same start now addresses the next chunk.
            else:
                start += chunk
        if deleted_any:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break
        else:
            granularity = min(granularity * 2, len(current))
    return current


def _deletion_pass(
    actions: List[Action], keep: Predicate, width: int
) -> List[Action]:
    """Try deleting every window of ``width`` actions, back to front."""
    current = actions
    index = len(current) - width
    while index >= 0:
        candidate = current[:index] + current[index + width :]
        if candidate and keep(candidate):
            current = candidate
        index -= 1
    return current
