"""Executable oracles the fuzzer checks every execution against.

Each oracle wraps one trace predicate from the paper's formal apparatus
(:mod:`repro.datalink.properties` for DL1-DL8 and validity,
:mod:`repro.channels.properties` for well-formedness and PL1-PL6) and
tags it with the metadata the fuzzer needs to apply it soundly:

* **scope** -- ``prefix`` oracles are prefix-monotone safety properties:
  once violated, every extension stays violated, so they are checked on
  every run and the earliest violating prefix is located by binary
  search (checking every prefix in one O(log n) pass).  ``quiescent``
  oracles (DL1, DL7, DL8, validity, the PL6 finite diagnostic) are only
  meaningful on a whole quiescent trace -- a truncated run could flag a
  loss that a fair extension would cure -- so they are skipped when the
  run did not quiesce.
* **layer** -- DL oracles read the data-link behavior (the hidden
  composition's external actions); PL oracles read the full execution's
  action sequence, once per channel direction.  (PL5), FIFO order, is
  only applied to directions whose physical channel is FIFO-only.
* **paper** -- the section the predicate formalizes, surfaced in
  reports and in ``docs/paper_map.md``.

Validity (Section 8.1) is environment-conditional: it only applies to
behaviors containing a wake but no fail/crash events, so it is checked
exactly when the driving script was fault-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..channels.actions import CRASH, FAIL, WAKE
from ..channels import properties as pl
from ..datalink import properties as dl
from ..ioa.actions import Action
from ..ioa.schedule_module import PropertyResult
from ..obs import current_tracer

PREFIX = "prefix"
QUIESCENT = "quiescent"

CheckFn = Callable[[Sequence[Action], str, str], PropertyResult]


@dataclass(frozen=True)
class Oracle:
    """One executable trace predicate plus its application metadata."""

    name: str
    layer: str  # "dl" or "pl"
    scope: str  # PREFIX or QUIESCENT
    paper: str  # paper section the predicate formalizes
    check: CheckFn
    fifo_only: bool = False  # PL5: apply only to FIFO channel directions


DL_ORACLES: Tuple[Oracle, ...] = (
    Oracle("DL-well-formed", "dl", PREFIX, "§4", dl.dl_well_formed),
    Oracle("DL1", "dl", QUIESCENT, "§4 (DL1)", dl.dl1),
    Oracle("DL2", "dl", PREFIX, "§4 (DL2)", dl.dl2),
    Oracle("DL3", "dl", PREFIX, "§4 (DL3)", dl.dl3),
    Oracle("DL4", "dl", PREFIX, "§4 (DL4)", dl.dl4),
    Oracle("DL5", "dl", PREFIX, "§4 (DL5)", dl.dl5),
    Oracle("DL6", "dl", PREFIX, "§4 (DL6)", dl.dl6),
    Oracle("DL7", "dl", QUIESCENT, "§4 (DL7)", dl.dl7),
    Oracle(
        "DL8",
        "dl",
        QUIESCENT,
        "§4 (DL8)",
        lambda s, t, r: dl.dl8(s, t, r, quiescent=True),
    ),
    Oracle("valid", "dl", QUIESCENT, "§8.1", dl.is_valid_sequence),
)

PL_ORACLES: Tuple[Oracle, ...] = (
    Oracle("PL-well-formed", "pl", PREFIX, "§3", pl.pl_well_formed),
    Oracle("PL1", "pl", PREFIX, "§3 (PL1)", pl.pl1),
    Oracle("PL2", "pl", PREFIX, "§3 (PL2)", pl.pl2),
    Oracle("PL3", "pl", PREFIX, "§3 (PL3)", pl.pl3),
    Oracle("PL4", "pl", PREFIX, "§3 (PL4)", pl.pl4),
    Oracle("PL5", "pl", PREFIX, "§3 (PL5)", pl.pl5, fifo_only=True),
    Oracle(
        "PL6-finite", "pl", QUIESCENT, "§3 (PL6)", pl.pl6_finite_diagnostic
    ),
)


@dataclass(frozen=True)
class OracleViolation:
    """One oracle failure on one execution."""

    oracle: str
    layer: str
    scope: str
    paper: str
    witness: str
    direction: Optional[Tuple[str, str]] = None
    prefix_length: Optional[int] = None

    def describe(self) -> str:
        where = (
            f" on channel {self.direction[0]}->{self.direction[1]}"
            if self.direction
            else ""
        )
        at = (
            f" (earliest violating prefix: {self.prefix_length} events)"
            if self.prefix_length is not None
            else ""
        )
        return f"{self.oracle}{where}: {self.witness}{at}"


def earliest_violating_prefix(
    check: CheckFn, schedule: Sequence[Action], a: str, b: str
) -> int:
    """Shortest prefix length on which a prefix-monotone oracle fails.

    Assumes ``check`` fails on the full ``schedule``; monotonicity makes
    "fails on the first n events" monotone in ``n``, so binary search
    visits O(log n) prefixes instead of all of them.
    """
    lo, hi = 1, len(schedule)
    while lo < hi:
        mid = (lo + hi) // 2
        if check(schedule[:mid], a, b).holds:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _apply(
    oracle: Oracle,
    schedule: Sequence[Action],
    a: str,
    b: str,
    direction: Optional[Tuple[str, str]],
    violations: List[OracleViolation],
) -> None:
    result = oracle.check(schedule, a, b)
    if result.holds:
        return
    prefix = (
        earliest_violating_prefix(oracle.check, schedule, a, b)
        if oracle.scope == PREFIX
        else None
    )
    violations.append(
        OracleViolation(
            oracle=oracle.name,
            layer=oracle.layer,
            scope=oracle.scope,
            paper=oracle.paper,
            witness=result.witness or "",
            direction=direction,
            prefix_length=prefix,
        )
    )


def check_execution(system, result) -> List[OracleViolation]:
    """Check one scenario result against every applicable oracle.

    ``system`` is the :class:`~repro.sim.network.DataLinkSystem` that
    produced ``result`` (a :class:`~repro.sim.runner.ScenarioResult`).
    Quiescent-scope oracles are skipped on non-quiescent runs; validity
    is skipped when the behavior contains fail/crash events (it would
    report the environment's faults, not the protocol's).
    """
    tracer = current_tracer()
    violations: List[OracleViolation] = []
    behavior = result.behavior
    fault_free = not any(a.name in (FAIL, CRASH) for a in behavior)
    has_wake = any(a.name == WAKE for a in behavior)
    for oracle in DL_ORACLES:
        if oracle.scope == QUIESCENT and not result.quiescent:
            continue
        if oracle.name == "valid" and not (fault_free and has_wake):
            continue
        if tracer.enabled:
            tracer.count("fuzz.oracle_checks")
        _apply(oracle, behavior, system.t, system.r, None, violations)
    packet_schedule = result.fragment.actions
    for src, dst, channel in (
        (system.t, system.r, system.channel_tr),
        (system.r, system.t, system.channel_rt),
    ):
        for oracle in PL_ORACLES:
            if oracle.scope == QUIESCENT and not result.quiescent:
                continue
            if oracle.fifo_only and not channel.fifo_only:
                continue
            if tracer.enabled:
                tracer.count("fuzz.oracle_checks")
            _apply(
                oracle, packet_schedule, src, dst, (src, dst), violations
            )
    if violations and tracer.enabled:
        tracer.count("fuzz.oracle_violations", len(violations))
    return violations


def oracle_catalog() -> List[dict]:
    """Every registered oracle as a plain dict (for reports and docs)."""
    catalog = []
    for oracle in DL_ORACLES + PL_ORACLES:
        catalog.append(
            {
                "name": oracle.name,
                "layer": oracle.layer,
                "scope": oracle.scope,
                "paper": oracle.paper,
            }
        )
    return catalog
