"""Executable oracles the fuzzer checks every execution against.

Each oracle wraps one trace predicate from the paper's formal apparatus
(:mod:`repro.datalink.properties` for DL1-DL8 and validity,
:mod:`repro.channels.properties` for well-formedness and PL1-PL6) and
tags it with the metadata the fuzzer needs to apply it soundly:

* **scope** -- ``prefix`` oracles are prefix-monotone safety properties:
  once violated, every extension stays violated, so they are checked on
  every run and the earliest violating prefix is located by binary
  search (checking every prefix in one O(log n) pass).  ``quiescent``
  oracles (DL1, DL7, DL8, validity, the PL6 finite diagnostic) are only
  meaningful on a whole quiescent trace -- a truncated run could flag a
  loss that a fair extension would cure -- so they are skipped when the
  run did not quiesce.
* **layer** -- DL oracles read the data-link behavior (the hidden
  composition's external actions); PL oracles read the full execution's
  action sequence, once per channel direction.  (PL5), FIFO order, is
  only applied to directions whose physical channel is FIFO-only.
* **paper** -- the section the predicate formalizes, surfaced in
  reports and in ``docs/paper_map.md``.

Validity (Section 8.1) is environment-conditional: it only applies to
behaviors containing a wake but no fail/crash events, so it is checked
exactly when the driving script was fault-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..channels.actions import CRASH, FAIL, WAKE
from ..channels import properties as pl
from ..datalink import properties as dl
from ..ioa.actions import Action
from ..ioa.schedule_module import PropertyResult
from ..obs import current_tracer
from .arbitrary import stabilization_report

PREFIX = "prefix"
QUIESCENT = "quiescent"
RUN = "run"

CheckFn = Callable[[Sequence[Action], str, str], PropertyResult]


@dataclass(frozen=True)
class Oracle:
    """One executable trace predicate plus its application metadata."""

    name: str
    layer: str  # "dl", "pl" or "stab"
    scope: str  # PREFIX, QUIESCENT or RUN
    paper: str  # paper section (or arXiv id) the predicate formalizes
    check: CheckFn
    fifo_only: bool = False  # PL5: apply only to FIFO channel directions


DL_ORACLES: Tuple[Oracle, ...] = (
    Oracle("DL-well-formed", "dl", PREFIX, "§4", dl.dl_well_formed),
    Oracle("DL1", "dl", QUIESCENT, "§4 (DL1)", dl.dl1),
    Oracle("DL2", "dl", PREFIX, "§4 (DL2)", dl.dl2),
    Oracle("DL3", "dl", PREFIX, "§4 (DL3)", dl.dl3),
    Oracle("DL4", "dl", PREFIX, "§4 (DL4)", dl.dl4),
    Oracle("DL5", "dl", PREFIX, "§4 (DL5)", dl.dl5),
    Oracle("DL6", "dl", PREFIX, "§4 (DL6)", dl.dl6),
    Oracle("DL7", "dl", QUIESCENT, "§4 (DL7)", dl.dl7),
    Oracle(
        "DL8",
        "dl",
        QUIESCENT,
        "§4 (DL8)",
        lambda s, t, r: dl.dl8(s, t, r, quiescent=True),
    ),
    Oracle("valid", "dl", QUIESCENT, "§8.1", dl.is_valid_sequence),
)

PL_ORACLES: Tuple[Oracle, ...] = (
    Oracle("PL-well-formed", "pl", PREFIX, "§3", pl.pl_well_formed),
    Oracle("PL1", "pl", PREFIX, "§3 (PL1)", pl.pl1),
    Oracle("PL2", "pl", PREFIX, "§3 (PL2)", pl.pl2),
    Oracle("PL3", "pl", PREFIX, "§3 (PL3)", pl.pl3),
    Oracle("PL4", "pl", PREFIX, "§3 (PL4)", pl.pl4),
    Oracle("PL5", "pl", PREFIX, "§3 (PL5)", pl.pl5, fifo_only=True),
    Oracle(
        "PL6-finite", "pl", QUIESCENT, "§3 (PL6)", pl.pl6_finite_diagnostic
    ),
)


# ----------------------------------------------------------------------
# Stabilization oracles (arbitrary-initial-state mode only)
# ----------------------------------------------------------------------
#
# Under ``--init-mode arbitrary`` the run starts from a corrupted state,
# so the DL/PL safety oracles would convict *every* protocol on the
# corrupted prefix.  The stabilization family judges what
# self-stabilization actually promises instead: the run recovers (a
# violation-free suffix exists) and recovers fast enough.


def stabilization_bound(length: int) -> int:
    """The convergence budget SSTAB2 allows a behavior of this length.

    Corruption symptoms concentrate at the front of a run (ghost
    packets drain early, stale sequence numbers resynchronize within a
    round trip), so a stabilizing protocol cleans up well before the
    halfway mark; the constant floor keeps very short behaviors from
    being judged on a one-or-two-event budget.
    """
    return max(8, length // 2)


def sstab1(
    schedule: Sequence[Action], t: str, r: str
) -> PropertyResult:
    """(SSTAB1) eventual safety: a violation-free suffix exists."""
    report = stabilization_report(schedule, t, r)
    if report.converged:
        return PropertyResult.ok("SSTAB1")
    return PropertyResult.violated(
        "SSTAB1",
        f"no violation-free suffix: the behavior ({report.length} "
        "events) still violates the specification at its final event",
    )


def sstab2(
    schedule: Sequence[Action], t: str, r: str
) -> PropertyResult:
    """(SSTAB2) bounded convergence: stabilization happens fast enough.

    Only meaningful for behaviors that converge at all (SSTAB1's
    concern otherwise): the dirty prefix must fit in
    :func:`stabilization_bound`.
    """
    report = stabilization_report(schedule, t, r)
    if not report.converged:
        return PropertyResult.ok("SSTAB2")
    bound = stabilization_bound(report.length)
    if report.time <= bound:
        return PropertyResult.ok("SSTAB2")
    return PropertyResult.violated(
        "SSTAB2",
        f"stabilization_time {report.time} exceeds the convergence "
        f"bound {bound} (behavior length {report.length})",
    )


def _sstab_wf(
    schedule: Sequence[Action], t: str, r: str
) -> PropertyResult:
    """(SSTAB-wf) placeholder check; quiescence is judged run-level.

    The predicate needs the run's quiescence flag, which a trace-only
    ``CheckFn`` cannot see; :func:`check_execution` applies it
    directly.  Registered so the catalog and the violation metadata
    have one canonical description.
    """
    return PropertyResult.ok("SSTAB-wf")


STAB_ORACLES: Tuple[Oracle, ...] = (
    Oracle("SSTAB-wf", "stab", RUN, "arXiv:1011.3632 §2", _sstab_wf),
    Oracle("SSTAB1", "stab", QUIESCENT, "arXiv:1011.3632 §2", sstab1),
    Oracle("SSTAB2", "stab", QUIESCENT, "arXiv:1011.3632 §4", sstab2),
)


@dataclass(frozen=True)
class OracleViolation:
    """One oracle failure on one execution."""

    oracle: str
    layer: str
    scope: str
    paper: str
    witness: str
    direction: Optional[Tuple[str, str]] = None
    prefix_length: Optional[int] = None

    def describe(self) -> str:
        where = (
            f" on channel {self.direction[0]}->{self.direction[1]}"
            if self.direction
            else ""
        )
        at = (
            f" (earliest violating prefix: {self.prefix_length} events)"
            if self.prefix_length is not None
            else ""
        )
        return f"{self.oracle}{where}: {self.witness}{at}"


def earliest_violating_prefix(
    check: CheckFn, schedule: Sequence[Action], a: str, b: str
) -> int:
    """Shortest prefix length on which a prefix-monotone oracle fails.

    Assumes ``check`` fails on the full ``schedule``; monotonicity makes
    "fails on the first n events" monotone in ``n``, so binary search
    visits O(log n) prefixes instead of all of them.
    """
    lo, hi = 1, len(schedule)
    while lo < hi:
        mid = (lo + hi) // 2
        if check(schedule[:mid], a, b).holds:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _apply(
    oracle: Oracle,
    schedule: Sequence[Action],
    a: str,
    b: str,
    direction: Optional[Tuple[str, str]],
    violations: List[OracleViolation],
) -> None:
    result = oracle.check(schedule, a, b)
    if result.holds:
        return
    prefix = (
        earliest_violating_prefix(oracle.check, schedule, a, b)
        if oracle.scope == PREFIX
        else None
    )
    violations.append(
        OracleViolation(
            oracle=oracle.name,
            layer=oracle.layer,
            scope=oracle.scope,
            paper=oracle.paper,
            witness=result.witness or "",
            direction=direction,
            prefix_length=prefix,
        )
    )


def check_execution(system, result, config=None) -> List[OracleViolation]:
    """Check one scenario result against every applicable oracle.

    ``system`` is the :class:`~repro.sim.network.DataLinkSystem` that
    produced ``result`` (a :class:`~repro.sim.runner.ScenarioResult`).
    Quiescent-scope oracles are skipped on non-quiescent runs; validity
    is skipped when the behavior contains fail/crash events (it would
    report the environment's faults, not the protocol's).

    When ``config`` carries ``init_mode="arbitrary"``, the run started
    corrupted and *only* the stabilization oracles apply: the DL/PL
    safety family would blame the corrupted prefix on the protocol.
    """
    if (
        config is not None
        and getattr(config, "init_mode", "clean") == "arbitrary"
    ):
        return _check_stabilization(system, result)
    tracer = current_tracer()
    violations: List[OracleViolation] = []
    behavior = result.behavior
    fault_free = not any(a.name in (FAIL, CRASH) for a in behavior)
    has_wake = any(a.name == WAKE for a in behavior)
    for oracle in DL_ORACLES:
        if oracle.scope == QUIESCENT and not result.quiescent:
            continue
        if oracle.name == "valid" and not (fault_free and has_wake):
            continue
        if tracer.enabled:
            tracer.count("fuzz.oracle_checks")
        _apply(oracle, behavior, system.t, system.r, None, violations)
    packet_schedule = result.fragment.actions
    for src, dst, channel in (
        (system.t, system.r, system.channel_tr),
        (system.r, system.t, system.channel_rt),
    ):
        for oracle in PL_ORACLES:
            if oracle.scope == QUIESCENT and not result.quiescent:
                continue
            if oracle.fifo_only and not channel.fifo_only:
                continue
            if tracer.enabled:
                tracer.count("fuzz.oracle_checks")
            _apply(
                oracle, packet_schedule, src, dst, (src, dst), violations
            )
    if violations and tracer.enabled:
        tracer.count("fuzz.oracle_violations", len(violations))
    return violations


def _check_stabilization(system, result) -> List[OracleViolation]:
    """The arbitrary-init oracle pass: SSTAB-wf, then SSTAB1/SSTAB2.

    Emits the ``stab.time``/``stab.converged`` gauges alongside the
    verdicts.  A non-quiescent run violates SSTAB-wf (it wedged instead
    of recovering); the suffix-based oracles are quiescent-scoped, so
    they are skipped exactly like DL1/DL7/DL8 on truncated runs.
    """
    tracer = current_tracer()
    violations: List[OracleViolation] = []
    behavior = result.behavior
    report = stabilization_report(behavior, system.t, system.r)
    if tracer.enabled:
        tracer.gauge("stab.time", report.time)
        tracer.gauge("stab.converged", 1 if report.converged else 0)
    for oracle in STAB_ORACLES:
        if oracle.scope == QUIESCENT and not result.quiescent:
            continue
        if tracer.enabled:
            tracer.count("fuzz.oracle_checks")
        if oracle.scope == RUN:
            if not result.quiescent:
                violations.append(
                    OracleViolation(
                        oracle=oracle.name,
                        layer=oracle.layer,
                        scope=oracle.scope,
                        paper=oracle.paper,
                        witness=(
                            "the run did not quiesce from its corrupted "
                            "start within the step budget"
                        ),
                    )
                )
            continue
        _apply(oracle, behavior, system.t, system.r, None, violations)
    if violations and tracer.enabled:
        tracer.count("fuzz.oracle_violations", len(violations))
    return violations


def oracle_catalog() -> List[dict]:
    """Every registered oracle as a plain dict (for reports and docs)."""
    catalog = []
    for oracle in DL_ORACLES + PL_ORACLES + STAB_ORACLES:
        catalog.append(
            {
                "name": oracle.name,
                "layer": oracle.layer,
                "scope": oracle.scope,
                "paper": oracle.paper,
            }
        )
    return catalog
