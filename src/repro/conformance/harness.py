"""Deterministic run construction shared by fuzzer, shrinker and replay.

One campaign seed must pin down *everything*: the channel adversaries
(delivery sets), the generated input script, and the fair interleaving.
The harness derives four independent 32-bit sub-seeds per run from a
single master :class:`random.Random` and rebuilds identical systems from
them, so the shrinker can re-run *modified* scripts against the exact
channel/interleaving adversary that produced the original violation,
and a replay file can reproduce a violation from the sub-seeds alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Sequence

from ..alphabets import MessageFactory
from ..datalink.properties import dl1, dl2, dl3, dl_well_formed
from ..ioa.actions import Action
from ..sim.faults import FaultPlan, GeneratedScript, generate_script
from ..sim.network import DataLinkSystem
from ..sim.runner import ScenarioResult
from ..sim.session import Session
from .registry import resolve_fuzz_channel, resolve_fuzz_protocol


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for one fuzz campaign.

    The channel knobs (``loss_rate``, ``reorder_window``, ``horizon``)
    parameterize the seeded delivery sets; the script knobs mirror
    :class:`~repro.sim.faults.FaultPlan`.  ``horizon`` bounds the
    adversarial portion of each delivery set -- beyond it the channel is
    FIFO and lossless, which is what guarantees that retransmitting
    protocols eventually quiesce.
    """

    runs: int = 20
    messages: int = 6
    loss_rate: float = 0.2
    reorder_window: int = 4
    horizon: int = 1024
    max_interleave: int = 8
    max_steps: int = 60_000
    fail_probability: float = 0.05
    receiver_fail_probability: float = 0.05
    crash_probability: float = 0.0
    link_flap_probability: float = 0.0
    link_partition_probability: float = 0.0
    shrink: bool = True
    shrink_budget: int = 400
    deep_oracles: bool = False
    init_mode: str = "clean"
    capacity: int = 4


#: Named fault mixes, applied on top of the defaults via ``with_mix``.
FAULT_MIXES = {
    "default": {},
    "clean": {
        "loss_rate": 0.0,
        "fail_probability": 0.0,
        "receiver_fail_probability": 0.0,
    },
    "drop-flood": {"loss_rate": 0.5},
    "reorder-flood": {"reorder_window": 16, "loss_rate": 0.1},
    "crash-storm": {
        "crash_probability": 0.35,
        "fail_probability": 0.1,
        "receiver_fail_probability": 0.1,
    },
    # Dynamic-link mixes (Berard et al., arXiv:2002.07545): links go
    # down and come back up mid-run, one direction at a time
    # (link-flap) or both at once (link-partition).
    "link-flap": {
        "link_flap_probability": 0.3,
        "fail_probability": 0.0,
        "receiver_fail_probability": 0.0,
    },
    "link-partition": {
        "link_partition_probability": 0.25,
        "fail_probability": 0.0,
        "receiver_fail_probability": 0.0,
    },
}


def with_mix(config: FuzzConfig, mix: str) -> FuzzConfig:
    """``config`` with the named fault mix's overrides applied."""
    if mix not in FAULT_MIXES:
        raise KeyError(
            f"unknown fault mix {mix!r}; available: "
            + ", ".join(sorted(FAULT_MIXES))
        )
    return replace(config, **FAULT_MIXES[mix])


@dataclass(frozen=True)
class SubSeeds:
    """The four independent randomness sources of one fuzz run."""

    channel_tr: int
    channel_rt: int
    script: int
    interleave: int

    @staticmethod
    def derive(master: random.Random) -> "SubSeeds":
        """Draw the next run's sub-seeds from the campaign master RNG."""
        return SubSeeds(
            channel_tr=master.getrandbits(32),
            channel_rt=master.getrandbits(32),
            script=master.getrandbits(32),
            interleave=master.getrandbits(32),
        )

    def to_dict(self) -> dict:
        return {
            "channel_tr": self.channel_tr,
            "channel_rt": self.channel_rt,
            "script": self.script,
            "interleave": self.interleave,
        }

    @staticmethod
    def from_dict(data: dict) -> "SubSeeds":
        return SubSeeds(
            channel_tr=int(data["channel_tr"]),
            channel_rt=int(data["channel_rt"]),
            script=int(data["script"]),
            interleave=int(data["interleave"]),
        )


def resolve_pair(protocol_name: str, channel_name: str):
    """Resolve ``(protocol, channel builder)`` from the fuzz registries.

    The batched pool's worker initializer resolves once per worker
    process and threads the pair through every run of every batch
    (:func:`build_system`'s ``resolved`` fast path), so warm workers
    never consult the registry again.
    """
    return (
        resolve_fuzz_protocol(protocol_name),
        resolve_fuzz_channel(channel_name),
    )


def build_system(
    protocol_name: str,
    channel_name: str,
    subseeds: SubSeeds,
    config: FuzzConfig,
    resolved=None,
) -> DataLinkSystem:
    """Compose the protocol with two sub-seeded channels.

    Rebuilding with the same arguments yields a system with an identical
    initial state (the automata are stateless; all run state lives in
    immutable state tuples), which is what lets the shrinker and the
    replayer re-run scripts against the original adversary.  Pass
    ``resolved`` (a :func:`resolve_pair` result) to skip the registry
    lookups; the channels are still built fresh from the sub-seeds, so
    the rebuild contract is unchanged.
    """
    protocol, build_channel = resolved or resolve_pair(
        protocol_name, channel_name
    )
    channel_tr = build_channel(
        "t",
        "r",
        subseeds.channel_tr,
        config.loss_rate,
        config.reorder_window,
        config.horizon,
        capacity=config.capacity,
    )
    channel_rt = build_channel(
        "r",
        "t",
        subseeds.channel_rt,
        config.loss_rate,
        config.reorder_window,
        config.horizon,
        capacity=config.capacity,
    )
    return DataLinkSystem.build(protocol, channel_tr, channel_rt)


def build_script(
    system: DataLinkSystem, subseeds: SubSeeds, config: FuzzConfig
) -> GeneratedScript:
    """Generate this run's input script from its script sub-seed."""
    plan = FaultPlan(
        messages=config.messages,
        fail_probability=config.fail_probability,
        receiver_fail_probability=config.receiver_fail_probability,
        crash_probability=config.crash_probability,
        link_flap_probability=config.link_flap_probability,
        link_partition_probability=config.link_partition_probability,
        seed=subseeds.script,
    )
    return generate_script(
        system,
        plan,
        factory=MessageFactory(label="s"),
        rng=random.Random(subseeds.script),
    )


def execute_script(
    system: DataLinkSystem,
    actions: Sequence[Action],
    subseeds: SubSeeds,
    config: FuzzConfig,
) -> ScenarioResult:
    """Run a script under the run's interleaving sub-seed.

    The interleave RNG is rebuilt fresh on every ``run()``, so
    executing the same (system, actions, subseeds) triple is
    bit-identical -- the contract the shrinker's re-validation and
    ``--replay`` rely on.  Under ``init_mode="arbitrary"`` the run
    starts from a sub-seed-determined corrupted state instead of the
    composition's initial state; because the corruption is a pure
    function of (system, subseeds, config), the shrinker and the
    replayer reconstruct the identical corrupted start for free.
    """
    initial_state = None
    if config.init_mode == "arbitrary":
        from .arbitrary import corrupt_initial_state

        initial_state = corrupt_initial_state(system, subseeds, config)
    return Session(
        system=system,
        script=tuple(actions),
        seed=subseeds.interleave,
        max_interleave=config.max_interleave,
        max_steps=config.max_steps,
        initial_state=initial_state,
    ).run()


def script_admissible(
    actions: Sequence[Action], t: str = "t", r: str = "r"
) -> bool:
    """Is this a well-formed environment script?

    The shrinker may only propose scripts that keep the environment's
    side of the bargain -- strict wake/fail alternation per direction
    (well-formedness), both directions left awake (DL1, so liveness
    blame cannot fall on a never-woken receiver), sends inside
    transmitter working intervals (DL2), and fresh messages (DL3).
    Violations found under an inadmissible script would be the
    environment's fault, not the protocol's.
    """
    return (
        dl_well_formed(actions, t, r).holds
        and dl1(actions, t, r).holds
        and dl2(actions, t, r).holds
        and dl3(actions, t, r).holds
    )
