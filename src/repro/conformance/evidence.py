"""Portable runtime-evidence records bridging fuzzing and deep lint.

A fuzz campaign is an *experiment*: protocol, channel class, fault
mix, seed, and an outcome (how many runs, which oracles broke).  This
module persists those outcomes as JSONL so the REP304 contradiction
gate (:mod:`repro.lint.claims`) can cross-examine a protocol's
declared claims against what actually happened at runtime:

* a campaign that **violated** an oracle is definitive -- a crash-free
  violation over a channel class the protocol claims weak correctness
  over refutes the claim;
* a campaign that held is *not* evidence of correctness (fuzzing
  proves presence of bugs, never absence) and the gate ignores it.

Records deliberately carry the :class:`DataLinkProtocol` display name
(``alternating-bit``), not the fuzz-registry key (``alternating_bit``):
the lint driver matches evidence to targets by the protocol's own name
so the same file serves both subsystems.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

#: fuzz channel registry name -> paper channel class.  ``perfect`` is a
#: loss-free FIFO channel, squarely inside the paper's C-hat.
CHANNEL_CLASS: Dict[str, str] = {
    "fifo": "fifo",
    "perfect": "fifo",
    "nonfifo": "nonfifo",
    "bounded_nonfifo": "nonfifo",
}


@dataclass(frozen=True)
class EvidenceRecord:
    """One fuzz campaign's outcome, keyed for the contradiction gate."""

    protocol: str  # DataLinkProtocol.name, e.g. "alternating-bit"
    registry_name: str  # fuzz registry key, e.g. "alternating_bit"
    channel: str  # paper channel class: "fifo" or "nonfifo"
    mix: str  # fault-mix name the campaign ran under
    crashes: bool  # did the mix inject station crashes?
    seed: int
    runs: int
    violations: int
    violated_oracles: Tuple[str, ...] = ()
    init_mode: str = "clean"  # "clean" or "arbitrary" (self-stabilization)

    def to_dict(self) -> Dict:
        return {
            "protocol": self.protocol,
            "registry_name": self.registry_name,
            "channel": self.channel,
            "mix": self.mix,
            "crashes": self.crashes,
            "seed": self.seed,
            "runs": self.runs,
            "violations": self.violations,
            "violated_oracles": list(self.violated_oracles),
            "init_mode": self.init_mode,
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "EvidenceRecord":
        return cls(
            protocol=str(raw["protocol"]),
            registry_name=str(raw.get("registry_name", "")),
            channel=str(raw["channel"]),
            mix=str(raw.get("mix", "default")),
            crashes=bool(raw.get("crashes", False)),
            seed=int(raw.get("seed", 0)),
            runs=int(raw.get("runs", 0)),
            violations=int(raw.get("violations", 0)),
            violated_oracles=tuple(raw.get("violated_oracles", ())),
            init_mode=str(raw.get("init_mode", "clean")),
        )


def evidence_from_campaign(campaign, mix: str = "default") -> EvidenceRecord:
    """Distil one :class:`FuzzCampaignResult` into an evidence record."""
    from .registry import _normalize, resolve_fuzz_protocol

    registry_name = _normalize(campaign.protocol)
    protocol = resolve_fuzz_protocol(registry_name).name
    oracles: List[str] = []
    for violation in campaign.violations:
        oracle = violation.violation.oracle
        if oracle not in oracles:
            oracles.append(oracle)
    # The deep oracles are campaign-level properties, not per-run trace
    # predicates; a failed one is a violation all the same.
    for key, held in sorted((campaign.deep or {}).items()):
        if not held:
            oracles.append(f"deep:{key}")
    return EvidenceRecord(
        protocol=protocol,
        registry_name=registry_name,
        channel=CHANNEL_CLASS.get(
            _normalize(campaign.channel), _normalize(campaign.channel)
        ),
        mix=mix,
        crashes=campaign.config.crash_probability > 0,
        seed=campaign.seed,
        runs=len(campaign.runs),
        violations=len(campaign.violations)
        + sum(1 for o in oracles if o.startswith("deep:")),
        violated_oracles=tuple(oracles),
        init_mode=getattr(campaign.config, "init_mode", "clean"),
    )


def append_evidence(path: str, records: Iterable[EvidenceRecord]) -> int:
    """Append records to a JSONL evidence file; returns how many."""
    records = list(records)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True))
            handle.write("\n")
    return len(records)


def load_evidence(path: str) -> List[EvidenceRecord]:
    """Read a JSONL evidence file (raises OSError if unreadable)."""
    records: List[EvidenceRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for index, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(EvidenceRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as error:
                raise ValueError(
                    f"{path}:{index}: malformed evidence record: {error}"
                )
    return records
