"""Replayable repro files for fuzz-discovered violations.

A repro file is a small JSON document (format tag ``repro-fuzz/1``)
capturing everything needed to re-execute one violating run with no RNG
involved at all: the protocol and channel registry names, the four
sub-seeds (which pin the channel delivery sets and the interleaving),
the channel configuration, the explicit (possibly shrunk) input script,
and the oracle the run violated.  ``repro fuzz --replay FILE`` loads
one, re-runs it, and reports whether the same oracle fires again.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..alphabets import Message
from ..channels.actions import CRASH, FAIL, WAKE
from ..datalink.actions import SEND_MSG
from ..ioa.actions import Action
from ..sim.network import DataLinkSystem
from ..sim.runner import ScenarioResult
from .harness import FuzzConfig, SubSeeds, build_system, execute_script
from .oracles import OracleViolation, check_execution

FORMAT = "repro-fuzz/1"


class ReplayFormatError(ValueError):
    """The repro file is malformed or has an unknown format tag."""


def encode_script(
    system: DataLinkSystem, actions: Sequence[Action]
) -> List[dict]:
    """Input actions as JSON-safe records."""
    records = []
    t, r = system.t, system.r
    for action in actions:
        if action.name == SEND_MSG:
            message = action.payload
            records.append(
                {
                    "kind": "send",
                    "ident": message.ident,
                    "label": message.label,
                    "size": message.size,
                }
            )
        elif action.name in (WAKE, FAIL, CRASH):
            direction = action.key[1]
            station = "t" if direction == (t, r) else "r"
            records.append({"kind": f"{action.name}_{station}"})
        else:
            raise ReplayFormatError(
                f"cannot encode non-input action {action}"
            )
    return records


def decode_script(
    system: DataLinkSystem, records: Sequence[dict]
) -> Tuple[Action, ...]:
    """Rebuild input actions from their JSON records."""
    constructors = {
        "wake_t": system.wake_t,
        "wake_r": system.wake_r,
        "fail_t": system.fail_t,
        "fail_r": system.fail_r,
        "crash_t": system.crash_t,
        "crash_r": system.crash_r,
    }
    actions = []
    for record in records:
        kind = record.get("kind")
        if kind == "send":
            message = Message(
                int(record["ident"]),
                record.get("label", "s"),
                int(record.get("size", 0)),
            )
            actions.append(system.send(message))
        elif kind in constructors:
            actions.append(constructors[kind]())
        else:
            raise ReplayFormatError(f"unknown script record {record!r}")
    return tuple(actions)


def make_repro(
    protocol: str,
    channel: str,
    seed: int,
    run_index: int,
    subseeds: SubSeeds,
    config: FuzzConfig,
    system: DataLinkSystem,
    actions: Sequence[Action],
    violation: OracleViolation,
    shrunk: bool,
) -> dict:
    """The repro-file document for one violating run."""
    return {
        "format": FORMAT,
        "protocol": protocol,
        "channel": channel,
        "seed": seed,
        "run_index": run_index,
        "subseeds": subseeds.to_dict(),
        "config": dataclasses.asdict(config),
        "oracle": violation.oracle,
        "layer": violation.layer,
        "paper": violation.paper,
        "witness": violation.witness,
        "direction": list(violation.direction)
        if violation.direction
        else None,
        "shrunk": shrunk,
        "script": encode_script(system, actions),
    }


def save_repro(path: Union[str, Path], document: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def load_repro(path: Union[str, Path]) -> dict:
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReplayFormatError(f"cannot read repro file {path}: {exc}")
    if not isinstance(document, dict) or document.get("format") != FORMAT:
        raise ReplayFormatError(
            f"{path} is not a {FORMAT} repro file"
        )
    return document


@dataclass
class ReplayResult:
    """Outcome of re-executing a repro file."""

    reproduced: bool
    oracle: str
    violations: List[OracleViolation]
    scenario: ScenarioResult
    document: dict

    @property
    def script_length(self) -> int:
        return len(self.document.get("script", ()))


def _config_from_dict(data: dict) -> FuzzConfig:
    known = {f.name for f in dataclasses.fields(FuzzConfig)}
    return FuzzConfig(**{k: v for k, v in data.items() if k in known})


def replay(source: Union[str, Path, dict]) -> ReplayResult:
    """Re-execute a repro file and re-check its oracle.

    ``reproduced`` is True when the recorded oracle fires again --
    the expected outcome, since the run is fully determinized by the
    stored sub-seeds and script.
    """
    document = source if isinstance(source, dict) else load_repro(source)
    config = _config_from_dict(document.get("config", {}))
    subseeds = SubSeeds.from_dict(document["subseeds"])
    system = build_system(
        document["protocol"], document["channel"], subseeds, config
    )
    actions = decode_script(system, document["script"])
    result = execute_script(system, actions, subseeds, config)
    violations = check_execution(system, result, config)
    oracle = document["oracle"]
    return ReplayResult(
        reproduced=any(v.oracle == oracle for v in violations),
        oracle=oracle,
        violations=violations,
        scenario=result,
        document=document,
    )
