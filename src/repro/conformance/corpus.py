"""Corpus registry: interesting seeds persisted across campaigns.

The corpus is an append-only JSONL file.  One line per interesting run:
runs that violated an oracle, and runs that discovered many new system
states (coverage, measured by the campaign's
:class:`~repro.ioa.engine.interning.InternTable`).  Re-fuzzing from a
corpus replays the sub-seeds that were historically productive --
``fuzz_campaign`` accepts entries' sub-seeds directly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Union

from .harness import SubSeeds

#: A run enters the corpus for coverage once it interns at least this
#: many states the campaign had never seen.
DEFAULT_COVERAGE_THRESHOLD = 25


@dataclass(frozen=True)
class CorpusEntry:
    """One interesting (protocol, channel, sub-seeds) combination."""

    protocol: str
    channel: str
    seed: int
    run_index: int
    subseeds: SubSeeds
    reason: str  # "violation" or "coverage"
    oracle: Optional[str] = None
    new_states: int = 0

    def to_dict(self) -> dict:
        data = asdict(self)
        data["subseeds"] = self.subseeds.to_dict()
        return data

    @staticmethod
    def from_dict(data: dict) -> "CorpusEntry":
        return CorpusEntry(
            protocol=data["protocol"],
            channel=data["channel"],
            seed=int(data["seed"]),
            run_index=int(data["run_index"]),
            subseeds=SubSeeds.from_dict(data["subseeds"]),
            reason=data["reason"],
            oracle=data.get("oracle"),
            new_states=int(data.get("new_states", 0)),
        )


def append_entries(
    path: Union[str, Path], entries: List[CorpusEntry]
) -> Path:
    """Append entries to the corpus file, creating it if needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        for entry in entries:
            handle.write(json.dumps(entry.to_dict()) + "\n")
    return path


def load_corpus(path: Union[str, Path]) -> List[CorpusEntry]:
    """Read every entry of a corpus file (empty list if absent)."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            entries.append(CorpusEntry.from_dict(json.loads(line)))
    return entries
