"""Conformance fuzzing: seeded trace fuzzing with executable oracles.

The subsystem composes any registered protocol with any registered
channel family, drives long random fair executions under configurable
fault mixes, checks every execution against the paper's trace
predicates (well-formedness, PL1-PL6, DL1-DL8, validity), shrinks
violating input scripts to locally-minimal counterexamples, and emits
replayable repro files.  ``repro fuzz`` is the CLI entry point.
"""

from .arbitrary import (
    StabilizationReport,
    component_state_pools,
    corrupt_initial_state,
    explore_corrupted,
    stabilization_report,
)
from .corpus import CorpusEntry, append_entries, load_corpus
from .evidence import (
    EvidenceRecord,
    append_evidence,
    evidence_from_campaign,
    load_evidence,
)
from .harness import (
    FAULT_MIXES,
    FuzzConfig,
    SubSeeds,
    build_script,
    build_system,
    execute_script,
    script_admissible,
    with_mix,
)
from .fuzzer import (
    FuzzCampaignResult,
    RunRecord,
    ViolationReport,
    fuzz_campaign,
)
from .pool import (
    BatchOutcome,
    PoolInfo,
    RunOutcome,
    RunTimeout,
    StateFingerprint,
    auto_batch_size,
    execute_run,
    run_batch,
    run_schedule,
)
from .oracles import (
    DL_ORACLES,
    PL_ORACLES,
    STAB_ORACLES,
    Oracle,
    OracleViolation,
    check_execution,
    earliest_violating_prefix,
    oracle_catalog,
    stabilization_bound,
)
from .registry import (
    FUZZ_CHANNELS,
    FUZZ_PROTOCOLS,
    resolve_fuzz_channel,
    resolve_fuzz_protocol,
)
from .replay import (
    ReplayFormatError,
    ReplayResult,
    decode_script,
    encode_script,
    load_repro,
    make_repro,
    replay,
    save_repro,
)
from .shrink import ShrinkResult, shrink_script

__all__ = [
    "BatchOutcome",
    "CorpusEntry",
    "DL_ORACLES",
    "EvidenceRecord",
    "FAULT_MIXES",
    "FUZZ_CHANNELS",
    "FUZZ_PROTOCOLS",
    "FuzzCampaignResult",
    "FuzzConfig",
    "Oracle",
    "OracleViolation",
    "PL_ORACLES",
    "PoolInfo",
    "ReplayFormatError",
    "ReplayResult",
    "RunOutcome",
    "RunRecord",
    "RunTimeout",
    "STAB_ORACLES",
    "ShrinkResult",
    "StabilizationReport",
    "StateFingerprint",
    "SubSeeds",
    "ViolationReport",
    "append_entries",
    "append_evidence",
    "auto_batch_size",
    "build_script",
    "build_system",
    "check_execution",
    "component_state_pools",
    "corrupt_initial_state",
    "decode_script",
    "earliest_violating_prefix",
    "encode_script",
    "execute_run",
    "evidence_from_campaign",
    "execute_script",
    "explore_corrupted",
    "fuzz_campaign",
    "run_batch",
    "run_schedule",
    "load_corpus",
    "load_evidence",
    "load_repro",
    "make_repro",
    "oracle_catalog",
    "replay",
    "resolve_fuzz_channel",
    "resolve_fuzz_protocol",
    "save_repro",
    "script_admissible",
    "shrink_script",
    "stabilization_bound",
    "stabilization_report",
    "with_mix",
]
