"""Arbitrary-initial-state corruption and the stabilization metric.

Self-stabilization (Dolev et al., arXiv:1011.3632) asks what a protocol
does when it *starts* in an arbitrary state: transient faults are
modeled not as events but as a corrupted initial configuration, and the
protocol stabilizes if every execution eventually reaches a suffix
satisfying the specification.

This module supplies the two halves of that workload:

* **Corruption** -- :func:`corrupt_initial_state` builds a composed
  start state by picking, for each of the four components (transmitter,
  receiver, channel t->r, channel r->t), one state from a pool of
  *locally reachable* states discovered by a short deterministic probe
  walk (recorded through the engine's :class:`InternTable` machinery).
  The product of locally-reachable states is generally *not* jointly
  reachable -- stations disagree about sequence numbers, channels hold
  ghost packets -- which is exactly the self-stabilization adversary.
  The choice is a pure function of ``(system, subseeds, config)``, so
  the shrinker and the replayer reconstruct the identical corrupted
  start, and campaigns stay byte-identical at any worker count.

* **Measurement** -- :func:`stabilization_report` scans a finite
  data-link behavior backwards for the longest *violation-free suffix*:
  a suffix in which every ``receive_msg`` delivers a message that was
  actually submitted, at most once, in submission order.
  ``stabilization_time`` is the number of events before that suffix
  (0 means the run was clean from the start); ``converged`` means a
  non-empty clean suffix exists (equivalently, the behavior does not
  *end* mid-violation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..alphabets import MessageFactory
from ..datalink.actions import RECEIVE_MSG, SEND_MSG
from ..ioa.actions import Action
from ..ioa.engine.interning import InternTable
from ..ioa.fairness import FairnessTimeout, run_to_quiescence
from ..sim.network import DataLinkSystem

#: Ghost messages submitted by the probe walk (label "g", disjoint from
#: the fuzz scripts' label "s"), and the fair-step budget after each
#: probe input.  Small on purpose: the pools need *variety*, not depth.
PROBE_MESSAGES = 3
PROBE_BURST = 24


def corruption_rng(subseeds) -> random.Random:
    """The corruption randomness of one run, derived from its sub-seeds.

    Seeding :class:`random.Random` with a *string* hashes it with
    SHA-512, independent of ``PYTHONHASHSEED``, so the same sub-seeds
    yield the same corruption in any process -- the property the
    ``--workers N`` byte-identity contract needs.  Deriving from all
    four sub-seeds (rather than adding a fifth draw to ``SubSeeds``)
    leaves every existing clean-mode schedule untouched.
    """
    key = (
        f"stab:{subseeds.channel_tr}:{subseeds.channel_rt}:"
        f"{subseeds.script}:{subseeds.interleave}"
    )
    return random.Random(key)


def component_state_pools(
    system: DataLinkSystem,
) -> Tuple[Tuple[object, ...], ...]:
    """Locally-reachable state pools for the four composed components.

    Runs a short deterministic probe: wake both directions, submit a
    few ghost messages, and run bounded fair bursts after each input,
    interning every visited component state.  The walk uses only the
    system itself (the fair scheduler is a deterministic round-robin),
    so rebuilding the same system yields the same pools.
    """
    tables = tuple(InternTable() for _ in range(4))

    def record(state) -> None:
        for table, component in zip(tables, state):
            table.intern(component)

    automaton = system.automaton
    state = system.initial_state()
    record(state)
    factory = MessageFactory(label="g")
    inputs = [system.wake_t(), system.wake_r()] + [
        system.send(factory.fresh()) for _ in range(PROBE_MESSAGES)
    ]
    for action in inputs:
        state = automaton.step(state, action)
        record(state)
        try:
            burst = run_to_quiescence(
                automaton, state, max_steps=PROBE_BURST
            )
        except FairnessTimeout as exc:
            burst = exc.fragment
        for visited in burst.states[1:]:
            record(visited)
        state = burst.final_state
    return tuple(tuple(table.values) for table in tables)


def corrupt_initial_state(
    system: DataLinkSystem, subseeds, config=None
) -> Tuple[object, ...]:
    """A corrupted composed start state for one arbitrary-init run.

    Each component starts in some state it could locally reach; the
    combination is generally not jointly reachable.  Pure in
    ``(system, subseeds)``: the probe walk is deterministic and the
    per-component choice draws from :func:`corruption_rng`.
    """
    pools = component_state_pools(system)
    rng = corruption_rng(subseeds)
    return tuple(pool[rng.randrange(len(pool))] for pool in pools)


# ----------------------------------------------------------------------
# The stabilization metric
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StabilizationReport:
    """How long a behavior took to reach a violation-free suffix.

    ``length`` is the number of behavior events examined, ``time`` the
    number of events before the longest clean suffix (0 = clean from
    the start, ``length`` = no clean suffix at all), and ``converged``
    is True iff a non-empty clean suffix exists (trivially True for an
    empty behavior).
    """

    length: int
    time: int
    converged: bool


def stabilization_report(
    behavior: Sequence[Action], t: str = "t", r: str = "r"
) -> StabilizationReport:
    """Measure the longest violation-free suffix of a finite behavior.

    A suffix is *clean* when each ``receive_msg`` in it (i) delivers a
    message some ``send_msg`` in the *full* behavior submitted (no
    ghosts left over from the corrupted start), (ii) delivers no
    message twice within the suffix, and (iii) respects submission
    order within the suffix.  One backward scan finds the first
    breaking event from the right: an event that breaks taints every
    suffix containing it, so everything after the last break is the
    longest clean suffix.
    """
    send_key = (SEND_MSG, (t, r))
    receive_key = (RECEIVE_MSG, (t, r))
    send_order = {}
    for index, action in enumerate(behavior):
        if action.key == send_key:
            send_order.setdefault(action.payload, index)
    delivered = set()
    min_send_index = None
    time = 0
    for position in range(len(behavior) - 1, -1, -1):
        action = behavior[position]
        if action.key != receive_key:
            continue
        message = action.payload
        order = send_order.get(message)
        if (
            order is None  # ghost: never submitted
            or message in delivered  # duplicate within the suffix
            or (min_send_index is not None and order > min_send_index)
        ):
            time = position + 1
            break
        delivered.add(message)
        min_send_index = (
            order
            if min_send_index is None
            else min(min_send_index, order)
        )
    length = len(behavior)
    return StabilizationReport(
        length=length,
        time=time,
        converged=length == 0 or time < length,
    )


def explore_corrupted(
    system: DataLinkSystem, subseeds, config=None, **kwargs
):
    """Explore a composed system from a corrupted initial state.

    The ``explore()`` entry point of the arbitrary-init mode: state
    space reachable from the corruption that
    :func:`corrupt_initial_state` derives for these sub-seeds, with all
    of :func:`~repro.ioa.explorer.explore`'s knobs available.
    """
    from ..ioa.explorer import explore

    return explore(
        system.automaton,
        initial_state=corrupt_initial_state(system, subseeds, config),
        **kwargs,
    )
