"""Runs/sec benchmark emitter for the conformance fuzzer.

Times default fuzz campaigns serially and through the worker pool and
writes the results to ``bench/BENCH_fuzz.json`` so the fuzzing-throughput
trajectory is tracked from PR to PR.  Run via::

    python benchmarks/run_experiments.py --bench-fuzz

or programmatically through :func:`write_fuzz_bench_json`.

Every case is cross-checked while it is timed: the serial and pooled
campaigns must agree field-for-field (violations, corpus, counters), so
a benchmark run is also a determinism test of the parallel merge.  The
report records the *effective* parallelism next to the speedup
(``effective_cpus``, the scheduler-affinity CPU count, which on a
cgroup-limited container is what actually bounds pool scaling -- not
the host-wide ``os.cpu_count``): a 1-CPU container cannot beat serial,
however many workers it forks, so when ``workers > effective_cpus``
the report is annotated ``"oversubscribed": true`` and a warning is
printed, which is how a sub-1.0 speedup number stays readable.
"""

from __future__ import annotations

import json
import os
import sys
import time
from statistics import median
from typing import Dict, Iterable, Tuple

DEFAULT_FUZZ_PATH = os.path.join("bench", "BENCH_fuzz.json")

#: (case key, protocol, channel, runs, shrink)
#: sliding-window runs shrink-free: at this seed one of its violating
#: scripts shrinks for minutes (400 re-executions of near-max_steps
#: runs), which would time the shrinker, not campaign throughput.
DEFAULT_FUZZ_CASES: Tuple[Tuple[str, str, str, int, bool], ...] = (
    ("naive-nonfifo", "naive", "nonfifo", 48, True),
    ("abp-fifo", "alternating_bit", "fifo", 96, True),
    ("sliding-window-nonfifo", "sliding_window", "nonfifo", 48, False),
)

DEFAULT_WORKERS = 4


def effective_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``sched_getaffinity`` sees cgroup/affinity limits (CI runners,
    containers); ``os.cpu_count`` is the fallback where it does not
    exist.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def _campaign_fingerprint(campaign) -> Dict:
    """The outcome fields the determinism contract covers."""
    report = campaign.report().to_dict()
    report["duration_s"] = None
    report["details"].pop("pool", None)
    return {
        "report": report,
        "repros": [v.repro for v in campaign.violations],
        "corpus": [entry.to_dict() for entry in campaign.corpus],
        "subseeds": [run.subseeds for run in campaign.runs],
    }


def _time_campaign(run_campaign, repeats: int):
    """Median wall-clock over ``repeats`` campaigns; returns (s, result)."""
    timings = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run_campaign()
        timings.append(time.perf_counter() - started)
    return median(timings), result


def run_fuzz_bench(
    cases: Iterable[Tuple[str, str, str, int, bool]] = DEFAULT_FUZZ_CASES,
    repeats: int = 3,
    workers: int = DEFAULT_WORKERS,
    seed: int = 11,
) -> Dict:
    """Benchmark pooled vs. serial campaigns on each case."""
    from .fuzzer import fuzz_campaign
    from .harness import FuzzConfig

    effective = effective_cpu_count()
    oversubscribed = workers > effective
    if oversubscribed:
        print(
            f"warning: --bench-fuzz with workers={workers} on "
            f"{effective} effective CPU(s): the pool is oversubscribed "
            f"and cannot beat serial; speedups below reflect overhead, "
            f"not scaling",
            file=sys.stderr,
        )
    report: Dict = {
        "generated_by": "repro.conformance.bench",
        "repeats": repeats,
        "workers": workers,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "effective_cpus": effective,
        "oversubscribed": oversubscribed,
        "cases": {},
    }
    speedups = []
    for key, protocol, channel, runs, shrink in cases:
        config = FuzzConfig(runs=runs, shrink=shrink)

        serial_seconds, serial_result = _time_campaign(
            lambda: fuzz_campaign(protocol, channel, seed, config),
            repeats,
        )
        pool_seconds, pool_result = _time_campaign(
            lambda: fuzz_campaign(
                protocol, channel, seed, config, workers=workers
            ),
            repeats,
        )
        if _campaign_fingerprint(serial_result) != _campaign_fingerprint(
            pool_result
        ):
            raise AssertionError(
                f"{key}: pooled campaign diverged from serial"
            )
        speedup = serial_seconds / pool_seconds
        speedups.append(speedup)
        report["cases"][key] = {
            "protocol": protocol,
            "channel": channel,
            "runs": runs,
            "shrink": shrink,
            "violations": len(serial_result.violations),
            "states_interned": serial_result.states_interned,
            "serial_seconds": round(serial_seconds, 6),
            "serial_runs_per_sec": round(runs / serial_seconds, 1),
            "pool_mode": pool_result.pool.get("mode"),
            "batch_size": pool_result.pool.get("batch_size"),
            "batches": pool_result.pool.get("batches"),
            "pool_seconds": round(pool_seconds, 6),
            "pool_runs_per_sec": round(runs / pool_seconds, 1),
            "speedup": round(speedup, 2),
        }
    report["median_speedup"] = round(median(speedups), 2)
    return report


def write_fuzz_bench_json(
    path: str = DEFAULT_FUZZ_PATH,
    cases: Iterable[Tuple[str, str, str, int, bool]] = DEFAULT_FUZZ_CASES,
    repeats: int = 3,
    workers: int = DEFAULT_WORKERS,
    seed: int = 11,
) -> Dict:
    """Run the fuzz benchmark and write the JSON report to ``path``."""
    report = run_fuzz_bench(
        cases=cases, repeats=repeats, workers=workers, seed=seed
    )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report
