"""Event sinks: where a tracer's records go.

Three built-ins cover the intended uses:

* :class:`MemorySink` -- an in-process ring buffer, for tests and for
  programmatic inspection of a run that just happened;
* :class:`JSONLSink` -- one JSON object per line, the archival and
  replay format (:func:`read_events` reads a file back into the
  identical event sequence);
* :class:`TextSink` -- human-readable lines with span indentation, for
  watching a run live.

A sink is anything with ``emit(event)`` and ``close()``; custom sinks
plug into :class:`~repro.obs.tracer.Tracer` unchanged.
"""

from __future__ import annotations

import io
import json
import sys
from collections import deque
from typing import IO, Iterable, List, Optional, Tuple, Union

from .events import COUNTER, GAUGE, MANIFEST, SPAN_END, SPAN_START, Event


class Sink:
    """Base class (and informal protocol) for event consumers."""

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; further ``emit`` calls are undefined."""


class MemorySink(Sink):
    """Ring buffer of the most recent ``capacity`` events (None = all)."""

    def __init__(self, capacity: Optional[int] = None):
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._buffer.append(event)

    @property
    def events(self) -> Tuple[Event, ...]:
        return tuple(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class JSONLSink(Sink):
    """Writes each event as one JSON line.

    Accepts a path (the file is opened and owned by the sink) or an
    already-open text handle (left open on ``close``).
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._handle = target
            self._owns = False

    def emit(self, event: Event) -> None:
        json.dump(event.to_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns:
            self._handle.close()


class TextSink(Sink):
    """Human-readable rendering, one line per event, spans indented."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self._stream = stream if stream is not None else sys.stderr
        self._depth = 0

    def emit(self, event: Event) -> None:
        if event.kind == SPAN_END and self._depth > 0:
            self._depth -= 1
        indent = "  " * self._depth
        extra = (
            " " + json.dumps(event.fields, sort_keys=True)
            if event.fields
            else ""
        )
        if event.kind == SPAN_START:
            line = f"{indent}> {event.name}{extra}"
            self._depth += 1
        elif event.kind == SPAN_END:
            line = f"{indent}< {event.name} [{event.value:.6f}s]{extra}"
        elif event.kind == COUNTER:
            line = f"{indent}+ {event.name} += {event.value:g}{extra}"
        elif event.kind == GAUGE:
            line = f"{indent}= {event.name} = {event.value:g}{extra}"
        elif event.kind == MANIFEST:
            line = f"{indent}# manifest{extra}"
        else:
            line = f"{indent}. {event.name}{extra}"
        self._stream.write(f"{event.at:10.6f} {line}\n")

    def close(self) -> None:
        self._stream.flush()


def read_events(source: Union[str, IO[str]]) -> Tuple[Event, ...]:
    """Read a JSONL trace back into its event sequence.

    The inverse of :class:`JSONLSink`: for any event stream ``es``,
    writing ``es`` and reading the file yields records equal to ``es``.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return _read_handle(handle)
    return _read_handle(source)


def _read_handle(handle: Iterable[str]) -> Tuple[Event, ...]:
    events: List[Event] = []
    for line in handle:
        line = line.strip()
        if not line:
            continue
        events.append(Event.from_dict(json.loads(line)))
    return tuple(events)


def render_text(events: Iterable[Event]) -> str:
    """Render an event sequence the way :class:`TextSink` would."""
    buffer = io.StringIO()
    sink = TextSink(buffer)
    for event in events:
        sink.emit(event)
    return buffer.getvalue()
