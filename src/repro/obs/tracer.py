"""The process-wide tracer.

A :class:`Tracer` turns instrumentation calls into
:class:`~repro.obs.events.Event` records, fans them out to its sinks,
and keeps running counter totals / last-gauge values so a manifest or
:class:`~repro.obs.report.RunReport` can summarize the run without
replaying the stream.

The module-level current tracer defaults to a **disabled** instance.
Instrumentation sites are written as::

    tracer = current_tracer()
    ...
    if tracer.enabled:
        tracer.count("explore.transitions", fired)

so a tracing-off run pays one attribute check per instrumented region
-- the engines instrument at layer/round granularity, never per state,
which is what keeps the no-op overhead inside the benchmark's noise
floor (see ``tests/obs/test_overhead.py``).

Spans nest via an explicit stack::

    with tracer.span("explore.layer", depth=3, width=128):
        ...

``span`` on a disabled tracer returns a shared no-op context manager,
so it is safe (and cheap) to use unconditionally outside hot loops.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .events import (
    COUNTER,
    GAUGE,
    POINT,
    SPAN_END,
    SPAN_START,
    Event,
)
from .sinks import Sink


class _NoopSpan:
    """Context manager handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Event emitter with pluggable sinks and aggregate totals."""

    def __init__(self, sinks: Sequence[Sink] = (), enabled: bool = True):
        self.enabled = enabled
        self.sinks: List[Sink] = list(sinks)
        self._epoch = time.perf_counter()
        self._next_span = 0
        # (span id, name, start time) innermost-last.
        self._stack: List[Tuple[int, str, float]] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    # -- plumbing -------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def emit(self, event: Event) -> None:
        """Emit a pre-built event (used by the manifest writer)."""
        if self.enabled:
            self._emit(event)

    # -- spans ----------------------------------------------------------

    def start_span(self, name: str, **fields) -> int:
        """Open a span; returns its id.  Prefer :meth:`span`."""
        span_id = self._next_span
        self._next_span += 1
        parent = self._stack[-1][0] if self._stack else None
        started = self._now()
        self._stack.append((span_id, name, started))
        self._emit(
            Event(
                SPAN_START,
                name,
                started,
                span=span_id,
                parent=parent,
                fields=fields,
            )
        )
        return span_id

    def end_span(self, span_id: int, **fields) -> None:
        """Close the innermost span (``span_id`` must match it)."""
        if not self._stack or self._stack[-1][0] != span_id:
            raise RuntimeError(
                f"span {span_id} is not the innermost open span"
            )
        _, name, started = self._stack.pop()
        ended = self._now()
        parent = self._stack[-1][0] if self._stack else None
        self._emit(
            Event(
                SPAN_END,
                name,
                ended,
                value=ended - started,
                span=span_id,
                parent=parent,
                fields=fields,
            )
        )

    def span(self, name: str, **fields):
        """Context manager for a named span; no-op when disabled."""
        if not self.enabled:
            return _NOOP_SPAN
        return self._span_cm(name, fields)

    @contextmanager
    def _span_cm(self, name: str, fields: Dict) -> Iterator[int]:
        span_id = self.start_span(name, **fields)
        try:
            yield span_id
        finally:
            self.end_span(span_id)

    # -- counters / gauges / points ------------------------------------

    def count(self, name: str, n: float = 1, **fields) -> None:
        if not self.enabled or n == 0:
            return
        self.counters[name] = self.counters.get(name, 0) + n
        parent = self._stack[-1][0] if self._stack else None
        self._emit(
            Event(COUNTER, name, self._now(), value=n, parent=parent,
                  fields=fields)
        )

    def gauge(self, name: str, value: float, **fields) -> None:
        if not self.enabled:
            return
        self.gauges[name] = value
        parent = self._stack[-1][0] if self._stack else None
        self._emit(
            Event(GAUGE, name, self._now(), value=value, parent=parent,
                  fields=fields)
        )

    def point(self, name: str, **fields) -> None:
        if not self.enabled:
            return
        parent = self._stack[-1][0] if self._stack else None
        self._emit(
            Event(POINT, name, self._now(), parent=parent, fields=fields)
        )

    # -- event replay ---------------------------------------------------

    def absorb(self, events: Sequence[Event]) -> None:
        """Re-emit events captured by another tracer as if they were ours.

        The fuzz pool runs work in forked workers, each capturing its
        event stream into a :class:`~repro.obs.sinks.MemorySink` under a
        fresh tracer whose span ids start at 0.  Batched pooling ships
        those chunks per *batch* of runs; the master replays each run's
        chunks in run-index order -- a deterministic order -- so the
        merged stream is identical to a serial run's: span ids are
        remapped onto this tracer's counter in arrival order (exactly
        the ids a serial run would have allocated), chunk-top-level
        parents are re-homed onto the currently open span, timestamps
        are re-stamped against this tracer's epoch, and counter/gauge
        totals are folded into the running aggregates so manifests and
        reports see them.  Empty chunks (the common case whenever a
        captured region emitted nothing) return without allocating.
        """
        if not self.enabled or not events:
            return
        mapping: Dict[int, int] = {}
        for event in events:
            span = event.span
            if event.kind == SPAN_START and span is not None:
                mapping[span] = self._next_span
                self._next_span += 1
            new_span = mapping.get(span) if span is not None else None
            if event.parent is not None and event.parent in mapping:
                new_parent: Optional[int] = mapping[event.parent]
            else:
                new_parent = self._stack[-1][0] if self._stack else None
            if event.kind == COUNTER and event.value:
                self.counters[event.name] = (
                    self.counters.get(event.name, 0) + event.value
                )
            elif event.kind == GAUGE and event.value is not None:
                self.gauges[event.name] = event.value
            self._emit(
                Event(
                    event.kind,
                    event.name,
                    self._now(),
                    value=event.value,
                    span=new_span,
                    parent=new_parent,
                    fields=event.fields,
                )
            )

    # -- totals ---------------------------------------------------------

    def snapshot_counters(self) -> Dict[str, float]:
        """Counter totals so far (ints where the math stayed integral)."""
        return {
            name: int(total) if float(total).is_integer() else total
            for name, total in sorted(self.counters.items())
        }

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


#: The disabled default: instrumentation finds this when no one traces.
_DISABLED = Tracer(enabled=False)
_CURRENT: Tracer = _DISABLED


def current_tracer() -> Tracer:
    """The process-wide tracer (disabled unless someone installed one)."""
    return _CURRENT


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` process-wide (None restores the disabled
    default); returns the previously installed tracer."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer if tracer is not None else _DISABLED
    return previous


@contextmanager
def tracing(*sinks: Sink) -> Iterator[Tracer]:
    """Install a fresh enabled tracer for the dynamic extent.

    Restores the previous tracer and closes the sinks on exit::

        with tracing(MemorySink()) as tracer:
            run_scenario(...)
        totals = tracer.snapshot_counters()
    """
    tracer = Tracer(sinks=sinks, enabled=True)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()
