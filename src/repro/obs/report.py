"""The unified run-report envelope.

Every runtime in this repo -- exploration, exhaustive verification,
scenario simulation, the impossibility engines, the lint driver --
historically returned its own result shape, and the CLI printed four
different JSON dialects.  :class:`RunReport` is the one schema they all
map onto: result objects expose ``.report()`` and every CLI subcommand
prints ``report.to_dict()`` under ``--json``::

    {
      "command": "verify",
      "status": "ok",
      "counters": {"explore.states": 11439},
      "duration_s": 0.81,
      "details": {...command-specific...}
    }

Status vocabulary (exit-code mapping in parentheses):

* ``ok`` (0) -- the run did what it set out to do.  For the
  ``refute-*`` engines this means the construction succeeded and the
  certificate validated: *finding* the violation is the job.
* ``violation`` (1) -- a checked property failed: a model-check
  counterexample, a trace-audit failure, a certificate that did not
  validate.
* ``findings`` (1) -- an audit completed and reported findings (lint).
* ``error`` (2) -- the run could not complete (e.g. an impossibility
  engine rejecting a protocol outside the theorem's hypotheses).

``details`` is intentionally open: it carries the command-specific
payload (a certificate dict, a counterexample trace, lint findings)
without the envelope caring.  ``artifacts`` names files the run wrote
(e.g. a ``--trace`` JSONL); it is folded into ``details["artifacts"]``
in the JSON form so the envelope stays exactly five keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

STATUS_OK = "ok"
STATUS_VIOLATION = "violation"
STATUS_FINDINGS = "findings"
STATUS_ERROR = "error"

#: status -> process exit code, shared by every CLI subcommand.
EXIT_CODES = {
    STATUS_OK: 0,
    STATUS_VIOLATION: 1,
    STATUS_FINDINGS: 1,
    STATUS_ERROR: 2,
}


@dataclass
class RunReport:
    """Uniform outcome of one run of any repro command or engine."""

    command: str
    status: str
    counters: Dict[str, float] = field(default_factory=dict)
    duration_s: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def exit_code(self) -> int:
        return EXIT_CODES.get(self.status, 2)

    def to_dict(self) -> Dict[str, object]:
        """The five-key JSON envelope (see module docstring)."""
        details = dict(self.details)
        if self.artifacts:
            details["artifacts"] = dict(self.artifacts)
        return {
            "command": self.command,
            "status": self.status,
            "counters": {
                name: value for name, value in sorted(self.counters.items())
            },
            "duration_s": round(self.duration_s, 6),
            "details": details,
        }
