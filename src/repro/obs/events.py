"""Structured trace events.

One flat record type covers the whole vocabulary -- span start/end,
counter increments, gauges, point annotations, and the closing run
manifest -- so sinks stay format-agnostic and a JSONL stream round-trips
to an identical event sequence (see ``tests/obs/test_sinks.py``).

Timestamps are seconds since the owning tracer's epoch (a
``perf_counter`` origin captured at tracer construction), not wall
clock: they order and measure, they do not date.  ``fields`` values
must be JSON-safe (strings, numbers, booleans, None, and lists/dicts
thereof); instrumentation sites stringify anything richer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

# Event kinds.
SPAN_START = "span_start"
SPAN_END = "span_end"
COUNTER = "counter"
GAUGE = "gauge"
POINT = "point"
MANIFEST = "manifest"

KINDS = (SPAN_START, SPAN_END, COUNTER, GAUGE, POINT, MANIFEST)


@dataclass
class Event:
    """One trace record.

    ``value`` carries the counter increment, the gauge reading, or the
    span duration (on ``span_end``); ``span``/``parent`` link span
    events into a tree.  Equality is field-wise, which is what the
    round-trip tests rely on.
    """

    kind: str
    name: str
    at: float
    value: Optional[float] = None
    span: Optional[int] = None
    parent: Optional[int] = None
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Compact JSON form: optional keys are omitted when unset."""
        record: Dict[str, object] = {
            "kind": self.kind,
            "name": self.name,
            "at": self.at,
        }
        if self.value is not None:
            record["value"] = self.value
        if self.span is not None:
            record["span"] = self.span
        if self.parent is not None:
            record["parent"] = self.parent
        if self.fields:
            record["fields"] = self.fields
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Event":
        kind = record["kind"]
        if kind not in KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        return cls(
            kind=kind,  # type: ignore[arg-type]
            name=record["name"],  # type: ignore[arg-type]
            at=float(record["at"]),  # type: ignore[arg-type]
            value=record.get("value"),  # type: ignore[arg-type]
            span=record.get("span"),  # type: ignore[arg-type]
            parent=record.get("parent"),  # type: ignore[arg-type]
            fields=dict(record.get("fields", {})),  # type: ignore[arg-type]
        )
