"""Run manifests: the closing summary record of a traced run.

A manifest makes a trace self-describing: which command ran, against
which protocol, under which seed and configuration (content-hashed so
two traces are comparable at a glance), how long it took in wall and
CPU time, and what the counter totals were.  It is emitted as the final
``manifest`` event of the JSONL stream, so a single file carries both
the replayable event sequence and its summary.

:func:`trace_run` is the one-stop entry point the CLI's ``--trace``
flags use::

    with trace_run("out.jsonl", command="simulate",
                   protocol="alternating-bit", seed=3,
                   config={"messages": 10, "loss": 0.2}) as tracer:
        run_scenario(system, script, seed=3)

On exit the manifest is appended and the sink closed.  The manifest of
an existing trace is recovered with :meth:`RunManifest.find`.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence

from .events import MANIFEST, Event
from .sinks import JSONLSink, Sink
from .tracer import Tracer, tracing


def config_hash(config: Dict[str, object]) -> str:
    """Stable short hash of a JSON-safe configuration mapping."""
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass
class RunManifest:
    """Summary of one traced run (the final event of its stream)."""

    command: str
    protocol: Optional[str]
    seed: Optional[int]
    config: Dict[str, object]
    config_hash: str
    wall_s: float
    cpu_s: float
    counters: Dict[str, float]
    events: int  # events emitted before the manifest itself
    status: str = "ok"
    extra: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record = {
            "command": self.command,
            "protocol": self.protocol,
            "seed": self.seed,
            "config": self.config,
            "config_hash": self.config_hash,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "counters": self.counters,
            "events": self.events,
            "status": self.status,
        }
        if self.extra:
            record["extra"] = self.extra
        return record

    @classmethod
    def from_event(cls, event: Event) -> "RunManifest":
        if event.kind != MANIFEST:
            raise ValueError(f"not a manifest event: {event.kind!r}")
        fields = dict(event.fields)
        extra = fields.pop("extra", {})
        return cls(extra=extra, **fields)  # type: ignore[arg-type]

    @classmethod
    def find(cls, events: Sequence[Event]) -> Optional["RunManifest"]:
        """The manifest of an event stream, if one was recorded."""
        for event in reversed(events):
            if event.kind == MANIFEST:
                return cls.from_event(event)
        return None


class _EventCountingSink(Sink):
    """Wrapper that counts events so the manifest can report them."""

    def __init__(self, inner: Sink):
        self.inner = inner
        self.emitted = 0

    def emit(self, event: Event) -> None:
        self.emitted += 1
        self.inner.emit(event)

    def close(self) -> None:
        self.inner.close()


@contextmanager
def trace_run(
    target,
    command: str,
    protocol: Optional[str] = None,
    seed: Optional[int] = None,
    config: Optional[Dict[str, object]] = None,
    extra_sinks: Sequence[Sink] = (),
) -> Iterator[Tracer]:
    """Trace the block to ``target`` and close with a manifest.

    ``target`` is a JSONL path (or open handle), or an already-built
    sink.  The manifest's ``status`` is ``"ok"`` unless the block
    raised, in which case it is ``"error"`` (and the exception
    propagates -- the trace still ends with a well-formed manifest).
    """
    if isinstance(target, Sink):
        primary: Sink = target
    else:
        primary = JSONLSink(target)
    counting = _EventCountingSink(primary)
    config = dict(config or {})
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    status = "ok"
    with tracing(counting, *extra_sinks) as tracer:
        try:
            yield tracer
        except BaseException:
            status = "error"
            raise
        finally:
            manifest = RunManifest(
                command=command,
                protocol=protocol,
                seed=seed,
                config=config,
                config_hash=config_hash(config),
                wall_s=time.perf_counter() - wall_started,
                cpu_s=time.process_time() - cpu_started,
                counters=tracer.snapshot_counters(),
                events=counting.emitted,
                status=status,
            )
            tracer.emit(
                Event(
                    MANIFEST,
                    "run",
                    tracer._now(),
                    fields=manifest.to_dict(),
                )
            )
