"""Observability core: structured tracing, counters, and run reports.

This package is the repo's single event vocabulary.  The paper's
arguments live entirely in executions and schedules; the runtimes that
manipulate them (the exploration engine, the fair simulation runner,
the impossibility engines) emit their progress through one process-wide
:class:`Tracer` so any run can be timed, correlated, and replayed from
its event stream.

Zero dependencies, and zero imports from the rest of :mod:`repro`: the
engine/sim/impossibility layers import *us*, never the reverse.

Event model
-----------

* **Spans** -- named intervals (``explore.layer``, ``sim.step``,
  ``refute.round``) with nesting via parent ids and a recorded
  duration.
* **Counters** -- monotonically accumulated totals (states interned,
  transitions fired, packets dropped, crash injections).
* **Gauges** -- point-in-time measurements (frontier width, memo
  hit-rate).
* **Points** -- one-off annotations.
* **Manifest** -- a final summary record (seed, config hash, wall/CPU
  time, counter totals) closing a traced run.

The process-wide tracer defaults to a *disabled* instance whose
``enabled`` flag instrumentation sites check before doing any work, so
tracing-off runs pay one attribute load per instrumented region.
Install sinks with :func:`tracing` (or :func:`trace_run`, which also
emits the manifest)::

    with tracing(JSONLSink("run.jsonl")) as tracer:
        explore(system, invariant=inv)
    events = read_events("run.jsonl")

Run reports
-----------

:class:`RunReport` is the unified result envelope every CLI subcommand
prints under ``--json`` and every result object exposes via a
``.report()`` method: ``{"command", "status", "counters",
"duration_s", "details"}``.
"""

from .events import (
    COUNTER,
    GAUGE,
    MANIFEST,
    POINT,
    SPAN_END,
    SPAN_START,
    Event,
)
from .manifest import RunManifest, config_hash, trace_run
from .report import (
    STATUS_ERROR,
    STATUS_FINDINGS,
    STATUS_OK,
    STATUS_VIOLATION,
    RunReport,
)
from .sinks import JSONLSink, MemorySink, TextSink, read_events
from .tracer import Tracer, current_tracer, set_tracer, tracing

__all__ = [
    "COUNTER",
    "GAUGE",
    "MANIFEST",
    "POINT",
    "SPAN_END",
    "SPAN_START",
    "Event",
    "JSONLSink",
    "MemorySink",
    "RunManifest",
    "RunReport",
    "STATUS_ERROR",
    "STATUS_FINDINGS",
    "STATUS_OK",
    "STATUS_VIOLATION",
    "TextSink",
    "Tracer",
    "config_hash",
    "current_tracer",
    "read_events",
    "set_tracer",
    "trace_run",
    "tracing",
]
