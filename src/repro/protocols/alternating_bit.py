"""The alternating-bit protocol (ABP).

The classic 1-bit sliding-window ARQ protocol: data packets carry a
single alternating bit, acknowledgements echo it.  ABP is

* correct over FIFO physical channels when properly initialized,
* **crashing** and **message-independent** with **bounded headers**
  (four headers) and **1-bounded** -- i.e. it satisfies every hypothesis
  of both impossibility theorems, making it the canonical victim for the
  crash engine (Theorem 7.5, over FIFO channels) and the bounded-header
  engine (Theorem 8.5, over non-FIFO channels).

States quiesce: the transmitter retransmits only while a message is
outstanding, and the receiver acknowledges each received data packet
exactly once (a lost acknowledgement is re-triggered by the
retransmitted data packet), so fair executions over clean channels
terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Tuple

from ..alphabets import Message, Packet
from ..datalink.protocol import (
    DataLinkProtocol,
    ReceiverLogic,
    TransmitterLogic,
)

DATA = "DATA"
ACK = "ACK"


@dataclass(frozen=True)
class AbpTransmitterCore:
    """Transmitter state: FIFO queue of unsent messages + current bit."""

    bit: int = 0
    queue: Tuple[Message, ...] = ()
    awake: bool = False


#: Finite bound on the pending-acknowledgement queue.  Dropping an
#: acknowledgement when the buffer is full is indistinguishable from the
#: ack packet being lost on the channel (the retransmitted data packet
#: re-triggers it), so the bound does not affect correctness -- and it
#: keeps the state space finite for exhaustive model checking.
ACK_QUEUE_LIMIT = 4


@dataclass(frozen=True)
class AbpReceiverCore:
    """Receiver state: expected bit, delivery inbox, pending ack queue."""

    expected: int = 0
    inbox: Tuple[Message, ...] = ()
    pending_acks: Tuple[int, ...] = ()
    awake: bool = False


class AbpTransmitter(TransmitterLogic):
    """ABP transmitting-station logic."""

    def initial_core(self) -> AbpTransmitterCore:
        return AbpTransmitterCore()

    def on_wake(self, core: AbpTransmitterCore) -> AbpTransmitterCore:
        return replace(core, awake=True)

    def on_fail(self, core: AbpTransmitterCore) -> AbpTransmitterCore:
        return replace(core, awake=False)

    def on_send_msg(
        self, core: AbpTransmitterCore, message: Message
    ) -> AbpTransmitterCore:
        return replace(core, queue=core.queue + (message,))

    def on_packet(
        self, core: AbpTransmitterCore, packet: Packet
    ) -> AbpTransmitterCore:
        kind, bit = packet.header
        if kind == ACK and bit == core.bit and core.queue:
            # Current message acknowledged: advance the window.
            return replace(core, bit=core.bit ^ 1, queue=core.queue[1:])
        return core

    def enabled_sends(self, core: AbpTransmitterCore) -> Iterable[Packet]:
        if core.awake and core.queue:
            yield Packet((DATA, core.bit), (core.queue[0],))

    def after_send(
        self, core: AbpTransmitterCore, packet: Packet
    ) -> AbpTransmitterCore:
        return core  # retransmission stays enabled until acknowledged

    def header_space(self) -> FrozenSet:
        return frozenset({(DATA, 0), (DATA, 1)})


class AbpReceiver(ReceiverLogic):
    """ABP receiving-station logic."""

    def initial_core(self) -> AbpReceiverCore:
        return AbpReceiverCore()

    def on_wake(self, core: AbpReceiverCore) -> AbpReceiverCore:
        return replace(core, awake=True)

    def on_fail(self, core: AbpReceiverCore) -> AbpReceiverCore:
        return replace(core, awake=False)

    def on_packet(
        self, core: AbpReceiverCore, packet: Packet
    ) -> AbpReceiverCore:
        kind, bit = packet.header
        if kind != DATA:
            return core
        core = replace(
            core,
            pending_acks=(core.pending_acks + (bit,))[-ACK_QUEUE_LIMIT:],
        )
        if bit == core.expected:
            (message,) = packet.body
            core = replace(
                core,
                expected=core.expected ^ 1,
                inbox=core.inbox + (message,),
            )
        return core

    def enabled_sends(self, core: AbpReceiverCore) -> Iterable[Packet]:
        if core.awake and core.pending_acks:
            yield Packet((ACK, core.pending_acks[0]))

    def after_send(
        self, core: AbpReceiverCore, packet: Packet
    ) -> AbpReceiverCore:
        return replace(core, pending_acks=core.pending_acks[1:])

    def enabled_deliveries(self, core: AbpReceiverCore) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]

    def after_delivery(
        self, core: AbpReceiverCore, message: Message
    ) -> AbpReceiverCore:
        return replace(core, inbox=core.inbox[1:])

    def header_space(self) -> FrozenSet:
        return frozenset({(ACK, 0), (ACK, 1)})


def alternating_bit_protocol() -> DataLinkProtocol:
    """The ABP as a :class:`~repro.datalink.protocol.DataLinkProtocol`."""
    return DataLinkProtocol(
        name="alternating-bit",
        transmitter_factory=AbpTransmitter,
        receiver_factory=AbpReceiver,
        description=(
            "1-bit sliding window ARQ; correct over FIFO channels, "
            "crashing, message-independent, bounded headers"
        ),
        claims={
            "message_independent": True,
            "bounded_headers": True,
            "crashing": True,
            "k_bounded": 1,
            "weakly_correct_over": ("fifo",),
            "tolerates_crashes": False,
            "self_stabilizing": False,
        },
    )
