"""Stenning's protocol and its bounded-header (modulo) weakening.

Stenning's protocol (paper, Section 1) gives every message a distinct,
ever-growing sequence number, so it works over physical channels that
reorder packets arbitrarily -- at the price of *unbounded headers*.
That trade-off is exactly what Theorem 8.5 proves necessary: the header
engine rejects Stenning's protocol up front (its hypotheses do not
apply), while the ``modulo_stenning_protocol(N)`` family -- identical
logic with sequence numbers reduced modulo ``N`` -- has ``2N`` headers
and is defeated by the engine, with pumping effort growing with ``N``.

Stenning's protocol is still **crashing**, so the crash engine defeats
it over FIFO channels (Theorem 7.5 has no header hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Optional, Tuple

from ..alphabets import Message, Packet
from ..datalink.protocol import (
    DataLinkProtocol,
    ReceiverLogic,
    TransmitterLogic,
)

DATA = "DATA"
ACK = "ACK"

#: Finite bound on the pending-acknowledgement queue (see the note in
#: :mod:`repro.protocols.alternating_bit`): overflow equals ack loss.
ACK_QUEUE_LIMIT = 4


@dataclass(frozen=True)
class StenningTransmitterCore:
    """Transmitter: stop-and-wait on the head of the pending queue."""

    seq: int = 0
    pending: Tuple[Message, ...] = ()
    awake: bool = False


@dataclass(frozen=True)
class StenningReceiverCore:
    """Receiver: next expected sequence number + queues."""

    expected: int = 0
    inbox: Tuple[Message, ...] = ()
    pending_acks: Tuple[int, ...] = ()
    awake: bool = False


class StenningTransmitter(TransmitterLogic):
    """Stenning transmitting-station logic.

    ``modulus = 0`` means true Stenning (unbounded sequence numbers);
    a positive modulus yields the bounded-header weakening.
    """

    def __init__(self, modulus: int = 0):
        self.modulus = modulus

    def _wrap(self, seq: int) -> int:
        return seq % self.modulus if self.modulus else seq

    def initial_core(self) -> StenningTransmitterCore:
        return StenningTransmitterCore()

    def on_wake(self, core: StenningTransmitterCore) -> StenningTransmitterCore:
        return replace(core, awake=True)

    def on_fail(self, core: StenningTransmitterCore) -> StenningTransmitterCore:
        return replace(core, awake=False)

    def on_send_msg(
        self, core: StenningTransmitterCore, message: Message
    ) -> StenningTransmitterCore:
        return replace(core, pending=core.pending + (message,))

    def on_packet(
        self, core: StenningTransmitterCore, packet: Packet
    ) -> StenningTransmitterCore:
        kind, seq = packet.header
        if kind == ACK and seq == self._wrap(core.seq) and core.pending:
            return replace(
                core, seq=self._wrap(core.seq + 1), pending=core.pending[1:]
            )
        return core

    def enabled_sends(
        self, core: StenningTransmitterCore
    ) -> Iterable[Packet]:
        if core.awake and core.pending:
            yield Packet((DATA, self._wrap(core.seq)), (core.pending[0],))

    def after_send(
        self, core: StenningTransmitterCore, packet: Packet
    ) -> StenningTransmitterCore:
        return core

    def header_space(self) -> Optional[FrozenSet]:
        if not self.modulus:
            return None  # unbounded headers: true Stenning
        return frozenset((DATA, seq) for seq in range(self.modulus))


class StenningReceiver(ReceiverLogic):
    """Stenning receiving-station logic."""

    def __init__(self, modulus: int = 0):
        self.modulus = modulus

    def _wrap(self, seq: int) -> int:
        return seq % self.modulus if self.modulus else seq

    def initial_core(self) -> StenningReceiverCore:
        return StenningReceiverCore()

    def on_wake(self, core: StenningReceiverCore) -> StenningReceiverCore:
        return replace(core, awake=True)

    def on_fail(self, core: StenningReceiverCore) -> StenningReceiverCore:
        return replace(core, awake=False)

    def on_packet(
        self, core: StenningReceiverCore, packet: Packet
    ) -> StenningReceiverCore:
        kind, seq = packet.header
        if kind != DATA:
            return core
        if seq == self._wrap(core.expected):
            (message,) = packet.body
            core = replace(
                core,
                expected=core.expected + 1,
                inbox=core.inbox + (message,),
            )
        # Acknowledge the sequence number received (once per packet).
        return replace(
            core,
            pending_acks=(core.pending_acks + (seq,))[-ACK_QUEUE_LIMIT:],
        )

    def enabled_sends(self, core: StenningReceiverCore) -> Iterable[Packet]:
        if core.awake and core.pending_acks:
            yield Packet((ACK, core.pending_acks[0]))

    def after_send(
        self, core: StenningReceiverCore, packet: Packet
    ) -> StenningReceiverCore:
        return replace(core, pending_acks=core.pending_acks[1:])

    def enabled_deliveries(
        self, core: StenningReceiverCore
    ) -> Iterable[Message]:
        if core.inbox:
            yield core.inbox[0]

    def after_delivery(
        self, core: StenningReceiverCore, message: Message
    ) -> StenningReceiverCore:
        return replace(core, inbox=core.inbox[1:])

    def header_space(self) -> Optional[FrozenSet]:
        if not self.modulus:
            return None
        return frozenset((ACK, seq) for seq in range(self.modulus))


def stenning_protocol() -> DataLinkProtocol:
    """True Stenning: distinct sequence numbers, unbounded headers.

    Weakly correct over arbitrary non-FIFO physical channels -- the
    positive counterpart of Theorem 8.5.
    """
    return DataLinkProtocol(
        name="stenning",
        transmitter_factory=StenningTransmitter,
        receiver_factory=StenningReceiver,
        description=(
            "stop-and-wait ARQ with unbounded sequence numbers; "
            "tolerates arbitrary reordering, headers grow without bound"
        ),
        claims={
            "message_independent": True,
            "bounded_headers": False,
            "crashing": True,
            "weakly_correct_over": ("fifo", "nonfifo"),
            "tolerates_crashes": False,
            "self_stabilizing": False,
        },
    )


def modulo_stenning_protocol(modulus: int) -> DataLinkProtocol:
    """Stenning with sequence numbers modulo ``N``: bounded headers.

    ``modulo_stenning_protocol(2)`` is operationally the alternating-bit
    protocol.  The family parameterizes the bounded-header engine's
    workload: pumping effort grows with the ``2N`` header classes.
    """
    if modulus < 2:
        raise ValueError("modulus must be at least 2")
    return DataLinkProtocol(
        name=f"modulo-stenning(N={modulus})",
        transmitter_factory=lambda: StenningTransmitter(modulus),
        receiver_factory=lambda: StenningReceiver(modulus),
        description=(
            "Stenning's protocol with sequence numbers reduced modulo N; "
            "bounded headers, so Theorem 8.5 applies"
        ),
        claims={
            "message_independent": True,
            "bounded_headers": True,
            "crashing": True,
            "k_bounded": 1,
            "weakly_correct_over": ("fifo",),
            "tolerates_crashes": False,
            "self_stabilizing": False,
        },
    )
